//! Power-iteration PCA.
//!
//! The paper visualizes seed/activated nodes with t-SNE (Figure 7). t-SNE is
//! stochastic and heavy; for the reproduction we project the aggregated
//! feature space to 2-D with deterministic PCA, which is sufficient to show
//! whether activated nodes *scatter across* or *cluster within* the space —
//! the property Figure 7 argues about. Documented as a substitution in
//! DESIGN.md.

use crate::dense::DenseMatrix;
use crate::ops;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a PCA projection.
#[derive(Clone, Debug)]
pub struct PcaResult {
    /// `n x k` projected coordinates.
    pub projected: DenseMatrix,
    /// `k x d` principal axes (rows are components, unit length).
    pub components: DenseMatrix,
    /// Variance captured by each component (descending).
    pub explained_variance: Vec<f32>,
}

/// Projects `data` onto its top-`k` principal components using power
/// iteration with deflation on the covariance operator (never materializes
/// the `d x d` covariance matrix; each iteration costs two passes over the
/// centered data).
pub fn pca(data: &DenseMatrix, k: usize, iters: usize, seed: u64) -> PcaResult {
    let n = data.rows();
    let d = data.cols();
    let k = k.min(d).max(1);
    // Center the data.
    let means = ops::column_means(data);
    let mut centered = data.clone();
    for i in 0..n {
        let row = centered.row_mut(i);
        for (v, &m) in row.iter_mut().zip(&means) {
            *v -= m;
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut components = DenseMatrix::zeros(k, d);
    let mut explained = Vec::with_capacity(k);
    // Deflated copy of the data; after extracting a component we remove its
    // contribution from every row so the next power iteration finds the next axis.
    let mut work = centered.clone();
    for c in 0..k {
        let mut v: Vec<f32> = (0..d).map(|_| rng.random::<f32>() - 0.5).collect();
        normalize(&mut v);
        let mut eigval = 0.0f32;
        for _ in 0..iters.max(1) {
            // w = X^T (X v) / n  (covariance-vector product in two passes)
            let mut xv = vec![0.0f32; n];
            for (i, xi) in xv.iter_mut().enumerate() {
                *xi = ops::dot(work.row(i), &v);
            }
            let mut w = vec![0.0f32; d];
            for (i, &coef) in xv.iter().enumerate() {
                if coef == 0.0 {
                    continue;
                }
                for (wj, &xj) in w.iter_mut().zip(work.row(i)) {
                    *wj += coef * xj;
                }
            }
            let norm = ops::dot(&w, &w).sqrt();
            if norm <= f32::EPSILON {
                break; // data exhausted (rank < k)
            }
            eigval = norm / n.max(1) as f32;
            for (vj, wj) in v.iter_mut().zip(&w) {
                *vj = wj / norm;
            }
        }
        components.row_mut(c).copy_from_slice(&v);
        explained.push(eigval);
        // Deflate: rows -= (row . v) v
        for i in 0..n {
            let row = work.row_mut(i);
            let proj = ops::dot(row, &v);
            for (rj, &vj) in row.iter_mut().zip(&v) {
                *rj -= proj * vj;
            }
        }
    }
    let projected = ops::matmul_nt(&centered, &components);
    PcaResult {
        projected,
        components,
        explained_variance: explained,
    }
}

fn normalize(v: &mut [f32]) {
    let n = ops::dot(v, v).sqrt();
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_axis() {
        // Points along the line y = 2x with small noise in the orthogonal direction.
        let mut data = Vec::new();
        for i in 0..50 {
            let t = i as f32 * 0.1 - 2.5;
            let noise = ((i * 7919) % 13) as f32 * 0.001;
            data.extend_from_slice(&[t + noise, 2.0 * t - noise]);
        }
        let m = DenseMatrix::from_vec(50, 2, data);
        let res = pca(&m, 1, 50, 1);
        let axis = res.components.row(0);
        // Axis should be parallel to (1, 2)/sqrt(5).
        let expect = [1.0 / 5f32.sqrt(), 2.0 / 5f32.sqrt()];
        let align = (axis[0] * expect[0] + axis[1] * expect[1]).abs();
        assert!(align > 0.999, "axis {axis:?} not aligned, dot={align}");
    }

    #[test]
    fn components_are_orthonormal() {
        let data: Vec<f32> = (0..300).map(|i| ((i * 37 % 23) as f32).sin()).collect();
        let m = DenseMatrix::from_vec(60, 5, data);
        let res = pca(&m, 3, 80, 2);
        for a in 0..3 {
            for b in 0..3 {
                let d = ops::dot(res.components.row(a), res.components.row(b));
                let want = if a == b { 1.0 } else { 0.0 };
                assert!((d - want).abs() < 1e-2, "<c{a},c{b}> = {d}");
            }
        }
    }

    #[test]
    fn explained_variance_descending() {
        let data: Vec<f32> = (0..400).map(|i| ((i % 19) as f32) * 0.3).collect();
        let m = DenseMatrix::from_vec(100, 4, data);
        let res = pca(&m, 3, 60, 3);
        for w in res.explained_variance.windows(2) {
            assert!(w[0] >= w[1] - 1e-4);
        }
    }

    #[test]
    fn projection_shape() {
        let m = DenseMatrix::zeros(10, 6);
        let res = pca(&m, 2, 10, 4);
        assert_eq!(res.projected.shape(), (10, 2));
        assert_eq!(res.components.shape(), (2, 6));
    }
}

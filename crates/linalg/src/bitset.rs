//! A packed u64 bitset for the greedy hot loops.
//!
//! `CoverageState` and `BallDiversity` track "is node `v` covered?" flags
//! for every node. A `Vec<bool>` spends one byte per flag and thrashes the
//! cache at n=1e6; packing 64 flags per word cuts the footprint 8× and the
//! membership test to one shift-and-mask. The API is deliberately tiny —
//! exactly the operations the selection loops need.

/// Fixed-capacity set of `usize` keys in `0..len`, one bit per key.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl Bitset {
    /// An empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// Universe size this set was created with.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Number of set bits (maintained incrementally, O(1)).
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Membership test.
    ///
    /// # Panics
    /// Panics if `i >= len` (same contract as indexing a `Vec<bool>`).
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i`, returning `true` iff it was previously clear — the
    /// shape the "newly activated?" checks want, replacing the separate
    /// test-then-set on `Vec<bool>`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let (word, mask) = (i / 64, 1u64 << (i % 64));
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.ones += fresh as usize;
        fresh
    }

    /// Clears bit `i`, returning `true` iff it was previously set. Used to
    /// undo a scratch marking through a touched-index list — O(touched)
    /// instead of the O(len/64) full [`Bitset::clear`].
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let (word, mask) = (i / 64, 1u64 << (i % 64));
        let was = self.words[word] & mask != 0;
        self.words[word] &= !mask;
        self.ones -= was as usize;
        was
    }

    /// Clears every bit, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reports_freshness_and_counts() {
        let mut s = Bitset::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "re-insert is not fresh");
        assert_eq!(s.count_ones(), 3);
        assert!(s.contains(129));
        assert!(!s.contains(1));
    }

    #[test]
    fn iter_ones_is_sorted_and_complete() {
        let mut s = Bitset::new(200);
        for i in [5usize, 63, 64, 65, 199, 0] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter_ones().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 65, 199]);
    }

    #[test]
    fn remove_undoes_insert_and_tracks_count() {
        let mut s = Bitset::new(128);
        s.insert(7);
        s.insert(127);
        assert!(s.remove(7));
        assert!(!s.remove(7), "double remove reports absent");
        assert!(!s.contains(7));
        assert!(s.contains(127));
        assert_eq!(s.count_ones(), 1);
    }

    #[test]
    fn clear_keeps_capacity_and_resets() {
        let mut s = Bitset::new(100);
        s.insert(99);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(99));
        assert!(s.insert(99));
    }

    #[test]
    fn matches_vec_bool_oracle() {
        // Deterministic pseudo-random insert sequence checked bit-for-bit
        // against the Vec<bool> representation it replaces.
        let n = 1000usize;
        let mut bits = Bitset::new(n);
        let mut oracle = vec![false; n];
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let i = (x % n as u64) as usize;
            let fresh = bits.insert(i);
            assert_eq!(fresh, !oracle[i], "freshness at {i}");
            oracle[i] = true;
        }
        for (i, &want) in oracle.iter().enumerate() {
            assert_eq!(bits.contains(i), want, "membership at {i}");
        }
        assert_eq!(bits.count_ones(), oracle.iter().filter(|&&b| b).count());
        let ones: Vec<usize> = bits.iter_ones().collect();
        let want: Vec<usize> = (0..n).filter(|&i| oracle[i]).collect();
        assert_eq!(ones, want);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        Bitset::new(64).insert(64);
    }
}

//! Row-major dense `f32` matrix.
//!
//! Dimension mismatches are programming errors, so the arithmetic API panics
//! with a descriptive message instead of returning `Result`; fallible
//! construction from untrusted shapes goes through [`DenseMatrix::try_from_vec`].

use serde::{Deserialize, Serialize};

/// A dense row-major `f32` matrix.
///
/// Rows are contiguous, so `row(i)` returns a plain slice, which is what all
/// hot loops in the workspace iterate over.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "DenseMatrix::from_vec: buffer of {} values cannot fill a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Fallible variant of [`DenseMatrix::from_vec`] for untrusted input.
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from row slices; all rows must share a length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                c,
                "DenseMatrix::from_rows: row {i} has length {} != {c}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Flat row-major view of the whole buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable row-major view of the whole buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns a new matrix holding the selected rows, in the given order.
    pub fn select_rows(&self, indices: &[usize]) -> DenseMatrix {
        let mut out = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            out.extend_from_slice(self.row(i));
        }
        DenseMatrix::from_vec(indices.len(), self.cols, out)
    }

    /// Out-of-place transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Horizontally concatenates two matrices with equal row counts.
    pub fn hconcat(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.rows, other.rows,
            "hconcat: row counts differ ({} vs {})",
            self.rows, other.rows
        );
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        DenseMatrix::from_vec(self.rows, cols, data)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

/// Error for [`DenseMatrix::try_from_vec`] shape mismatches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Requested row count.
    pub rows: usize,
    /// Requested column count.
    pub cols: usize,
    /// Provided buffer length.
    pub len: usize,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "buffer of {} values cannot fill a {}x{} matrix",
            self.len, self.rows, self.cols
        )
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_shape_and_zero_values() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn eye_is_identity() {
        let m = DenseMatrix::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn row_views_are_contiguous() {
        let m = DenseMatrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.row(0), &[1., 2., 3.]);
        assert_eq!(m.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = DenseMatrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn select_rows_copies_in_order() {
        let m = DenseMatrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5., 6.]);
        assert_eq!(s.row(1), &[1., 2.]);
    }

    #[test]
    fn hconcat_joins_columns() {
        let a = DenseMatrix::from_vec(2, 1, vec![1., 2.]);
        let b = DenseMatrix::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = a.hconcat(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(1), &[2., 5., 6.]);
    }

    #[test]
    fn try_from_vec_rejects_bad_shape() {
        let err = DenseMatrix::try_from_vec(2, 2, vec![0.0; 3]).unwrap_err();
        assert_eq!(err.len, 3);
        assert!(err.to_string().contains("2x2"));
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_panics_on_bad_shape() {
        let _ = DenseMatrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn map_inplace_applies_function() {
        let mut m = DenseMatrix::from_vec(1, 3, vec![1., -2., 3.]);
        m.map_inplace(|v| v.abs());
        assert_eq!(m.row(0), &[1., 2., 3.]);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = DenseMatrix::zeros(1, 2);
        assert!(!m.has_non_finite());
        m.set(0, 1, f32::NAN);
        assert!(m.has_non_finite());
    }
}

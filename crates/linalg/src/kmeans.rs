//! k-means with k-means++ seeding.
//!
//! Used by the AGE baseline (density arm: distance to the nearest cluster
//! centroid of the current embedding) and by FeatProp-style selection of
//! cluster centers. Deterministic given the seed.

use crate::dense::DenseMatrix;
use crate::distance::sq_euclidean;
use crate::par;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// `k x d` centroid matrix.
    pub centroids: DenseMatrix,
    /// Cluster index per input row.
    pub assignment: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// Runs k-means++ initialization followed by Lloyd iterations.
///
/// # Panics
/// Panics if `k == 0` or the input has no rows.
pub fn kmeans(data: &DenseMatrix, k: usize, max_iter: usize, seed: u64) -> KMeansResult {
    assert!(k > 0, "kmeans: k must be positive");
    assert!(data.rows() > 0, "kmeans: empty input");
    let k = k.min(data.rows());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids = plus_plus_init(data, k, &mut rng);
    let mut assignment = vec![0usize; data.rows()];
    let mut inertia = f64::INFINITY;
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // Assignment step (parallel).
        let assigned = par::par_map(data.rows(), 32, |i| {
            let row = data.row(i);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let d = sq_euclidean(row, centroids.row(c));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            (best, best_d as f64)
        });
        let new_inertia: f64 = assigned.iter().map(|(_, d)| *d).sum();
        for (i, (c, _)) in assigned.iter().enumerate() {
            assignment[i] = *c;
        }
        // Update step.
        let d = data.cols();
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0usize; k];
        for (i, &c) in assignment.iter().enumerate() {
            counts[c] += 1;
            let row = data.row(i);
            for (j, &v) in row.iter().enumerate() {
                sums[c * d + j] += v as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at a random data row to keep k live clusters.
                let pick = rng.random_range(0..data.rows());
                centroids.row_mut(c).copy_from_slice(data.row(pick));
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            let c_row = centroids.row_mut(c);
            for (j, cv) in c_row.iter_mut().enumerate() {
                *cv = (sums[c * d + j] * inv) as f32;
            }
        }
        // Convergence: relative inertia improvement below tolerance.
        if inertia.is_finite() && (inertia - new_inertia).abs() <= 1e-6 * inertia.max(1.0) {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }
    KMeansResult {
        centroids,
        assignment,
        inertia,
        iterations,
    }
}

/// k-means++ seeding: iteratively samples new centers proportional to the
/// squared distance to the nearest already-chosen center.
fn plus_plus_init(data: &DenseMatrix, k: usize, rng: &mut StdRng) -> DenseMatrix {
    let n = data.rows();
    let d = data.cols();
    let mut centers = DenseMatrix::zeros(k, d);
    let first = rng.random_range(0..n);
    centers.row_mut(0).copy_from_slice(data.row(first));
    let mut dist2: Vec<f32> = (0..n)
        .map(|i| sq_euclidean(data.row(i), centers.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = dist2.iter().map(|&v| v as f64).sum();
        let pick = if total <= 0.0 {
            rng.random_range(0..n)
        } else {
            // Inverse-CDF sampling over the squared-distance weights.
            let target = rng.random::<f64>() * total;
            let mut acc = 0.0f64;
            let mut chosen = n - 1;
            for (i, &w) in dist2.iter().enumerate() {
                acc += w as f64;
                if acc >= target {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centers.row_mut(c).copy_from_slice(data.row(pick));
        for (i, d2) in dist2.iter_mut().enumerate() {
            let nd = sq_euclidean(data.row(i), centers.row(c));
            if nd < *d2 {
                *d2 = nd;
            }
        }
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> DenseMatrix {
        // 20 points around (0,0), 20 around (10,10).
        let mut data = Vec::new();
        for i in 0..20 {
            data.extend_from_slice(&[0.0 + (i % 5) as f32 * 0.1, 0.0 + (i / 5) as f32 * 0.1]);
        }
        for i in 0..20 {
            data.extend_from_slice(&[10.0 + (i % 5) as f32 * 0.1, 10.0 + (i / 5) as f32 * 0.1]);
        }
        DenseMatrix::from_vec(40, 2, data)
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blobs();
        let res = kmeans(&data, 2, 50, 7);
        // All points in first blob share a cluster, disjoint from second blob.
        let c0 = res.assignment[0];
        assert!(res.assignment[..20].iter().all(|&c| c == c0));
        assert!(res.assignment[20..].iter().all(|&c| c != c0));
        assert!(res.inertia < 50.0);
    }

    #[test]
    fn k_clamped_to_row_count() {
        let data = DenseMatrix::from_vec(3, 1, vec![0., 1., 2.]);
        let res = kmeans(&data, 10, 10, 1);
        assert_eq!(res.centroids.rows(), 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = two_blobs();
        let a = kmeans(&data, 3, 25, 42);
        let b = kmeans(&data, 3, 25, 42);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let data = DenseMatrix::from_vec(4, 1, vec![0., 2., 4., 6.]);
        let res = kmeans(&data, 1, 20, 3);
        assert!((res.centroids.get(0, 0) - 3.0).abs() < 1e-5);
    }
}

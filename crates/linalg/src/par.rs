//! Scoped-thread parallelism helpers shared by the workspace.
//!
//! Grain is "model-free": almost all of its runtime is spent in
//! embarrassingly parallel row-wise kernels (SpMM, GEMM, pairwise
//! distances). These helpers split a row range into per-thread chunks and
//! run them on crossbeam scoped threads, so callers can borrow stack data
//! without `Arc`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Returns the worker-thread count: the `GRAIN_THREADS` environment variable
/// if set to a positive integer, otherwise the machine's available
/// parallelism (at least 1).
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("GRAIN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a caller-requested worker count: `0` means "auto" (the
/// [`num_threads`] default), any other value is taken verbatim. This is
/// the contract of every `*_with` helper below and of the `threads`
/// parameter on the parallel kernels built on them (`spmm_par`,
/// `propagate_par`, influence rows, ...): callers thread a configuration
/// knob straight through and `0` keeps the environment-driven default.
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        num_threads()
    } else {
        requested
    }
}

/// Runs `f(start, end)` over disjoint chunks of `0..len` on scoped threads.
///
/// `f` must be safe to run concurrently on disjoint ranges. Falls back to a
/// single inline call when `len` is small or only one thread is available,
/// so tiny inputs do not pay thread spawn costs.
pub fn for_each_chunk<F>(len: usize, min_chunk: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    for_each_chunk_with(0, len, min_chunk, f);
}

/// [`for_each_chunk`] with an explicit worker count (`0` = auto).
///
/// Chunk *boundaries* depend on the worker count, but every index is
/// processed by exactly one worker with the same per-index code, so any
/// kernel whose per-index computation is self-contained is bit-identical
/// at every thread count.
pub fn for_each_chunk_with<F>(requested_threads: usize, len: usize, min_chunk: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = resolve_threads(requested_threads)
        .min(len / min_chunk.max(1))
        .max(1);
    if threads <= 1 || len == 0 {
        f(0, len);
        return;
    }
    let chunk = len.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(len);
            if start >= end {
                break;
            }
            let f = &f;
            scope.spawn(move |_| f(start, end));
        }
    })
    .expect("worker thread panicked");
}

/// Parallel work-stealing loop over `0..len` with a shared atomic cursor.
///
/// Better than static chunking when per-item cost is highly skewed (e.g.
/// influence rows of hub nodes). `f(i)` is called exactly once per index.
pub fn for_each_dynamic<F>(len: usize, grain: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = num_threads().min(len.max(1)).max(1);
    if threads <= 1 || len <= grain {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move |_| loop {
                let start = cursor.fetch_add(grain, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let end = (start + grain).min(len);
                for i in start..end {
                    f(i);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Maps `0..len` through `f` into a `Vec`, computing chunks in parallel.
pub fn par_map<T, F>(len: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(0, len, min_chunk, f)
}

/// [`par_map`] with an explicit worker count (`0` = auto). The output is
/// bit-identical at every thread count: element `i` is always `f(i)`.
pub fn par_map_with<T, F>(requested_threads: usize, len: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); len];
    {
        let out_ptr = SendPtr(out.as_mut_ptr());
        for_each_chunk_with(requested_threads, len, min_chunk, |start, end| {
            // SAFETY: each chunk writes a disjoint index range of `out`,
            // and `out` outlives the scoped threads.
            let ptr = out_ptr;
            for i in start..end {
                unsafe { *ptr.0.add(i) = f(i) };
            }
        });
    }
    out
}

/// Raw pointer wrapper asserting cross-thread safety for disjoint writes.
///
/// Shared by the parallel kernels across the workspace (SpMM, influence
/// rows, row normalization): each worker writes a disjoint index range of
/// the pointee, and the pointee outlives the scoped threads. Closures
/// must rebind the wrapper (`let ptr = ptr;`) so edition-2021 disjoint
/// capture moves the `SendPtr` itself rather than its raw-pointer field.
pub struct SendPtr<T>(pub *mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn for_each_chunk_covers_all_indices_once() {
        let sum = AtomicU64::new(0);
        for_each_chunk(1000, 8, |s, e| {
            let mut local = 0u64;
            for i in s..e {
                local += i as u64;
            }
            sum.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn for_each_dynamic_covers_all_indices_once() {
        let hits = (0..257).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        for_each_dynamic(hits.len(), 4, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_map_matches_serial_map() {
        let got = par_map(513, 16, |i| (i * i) as u64);
        let want: Vec<u64> = (0..513).map(|i| (i * i) as u64).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn zero_length_is_fine() {
        for_each_chunk(0, 1, |s, e| assert_eq!(s, e, "no work expected"));
        let v: Vec<u32> = par_map(0, 1, |_| 1);
        assert!(v.is_empty());
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn resolve_threads_passes_explicit_and_defaults_zero() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(0), num_threads());
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let want: Vec<u64> = (0..777).map(|i| (i * 3 + 1) as u64).collect();
        for threads in [1usize, 2, 5, 16] {
            let got = par_map_with(threads, 777, 4, |i| (i * 3 + 1) as u64);
            assert_eq!(got, want, "{threads} threads");
        }
    }
}

//! Dense linear-algebra substrate for the Grain framework.
//!
//! The Grain paper (VLDB 2021) separates feature *propagation* from model
//! *training*; both sides bottom out in dense row-major `f32` matrices.
//! This crate provides that shared substrate:
//!
//! * [`DenseMatrix`] — a row-major matrix with cheap row views,
//! * [`ops`] — (parallel) GEMM variants and elementwise kernels,
//! * [`distance`] — chunked pairwise distances and radius queries used by the
//!   diversity functions of Section 3.3,
//! * [`kmeans`] — k-means++ clustering used by the AGE baseline's density arm,
//! * [`pca`] — power-iteration PCA used for the Figure 7 interpretability
//!   scatter (substitute for t-SNE),
//! * [`par`] — scoped-thread helpers shared by the whole workspace.
//!
//! All kernels are deterministic given a seeded RNG, which the reproduction
//! harness relies on.

pub mod dense;
pub mod distance;
pub mod kmeans;
pub mod ops;
pub mod par;
pub mod pca;
pub mod stats;

pub use dense::DenseMatrix;

//! Dense linear-algebra substrate for the Grain framework.
//!
//! The Grain paper (VLDB 2021) separates feature *propagation* from model
//! *training*; both sides bottom out in dense row-major `f32` matrices.
//! This crate provides that shared substrate:
//!
//! * [`DenseMatrix`] — a row-major matrix with cheap row views,
//! * [`bitset`] — a packed u64 bitset backing the allocation-free greedy
//!   coverage loops,
//! * [`ops`] — (parallel) GEMM variants and elementwise kernels,
//! * [`distance`] — chunked pairwise distances and radius queries used by the
//!   diversity functions of Section 3.3,
//! * [`kmeans`] — k-means++ clustering used by the AGE baseline's density arm,
//! * [`pca`] — power-iteration PCA used for the Figure 7 interpretability
//!   scatter (substitute for t-SNE),
//! * [`par`] — scoped-thread helpers shared by the whole workspace.
//!
//! All kernels are deterministic given a seeded RNG, which the reproduction
//! harness relies on.
//!
//! ```
//! use grain_linalg::{ops, DenseMatrix};
//!
//! let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let product = ops::matmul(&a, &DenseMatrix::eye(2));
//! assert_eq!(product.as_slice(), a.as_slice());
//!
//! // Row-normalization, the step Definition 3.4/3.6 apply before any
//! // distance is measured in the diversity feature space.
//! let mut rows = DenseMatrix::from_rows(&[&[3.0, 4.0], &[0.0, 2.0]]);
//! ops::l2_normalize_rows(&mut rows);
//! assert_eq!(rows.row(0), &[0.6, 0.8]);
//! assert_eq!(ops::row_norms(&rows), vec![1.0, 1.0]);
//! ```

pub mod bitset;
pub mod dense;
pub mod distance;
pub mod kmeans;
pub mod ops;
pub mod par;
pub mod pca;
pub mod stats;

pub use bitset::Bitset;
pub use dense::DenseMatrix;

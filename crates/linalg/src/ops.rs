//! Dense matrix kernels: GEMM variants, elementwise updates, row norms.
//!
//! GEMM uses an `i-k-j` loop order (the inner loop streams over contiguous
//! output/input rows), parallelized across output rows. That is the standard
//! cache-friendly layout for row-major data and is fast enough for the
//! hidden sizes the paper uses (<= a few hundred columns).

use crate::dense::DenseMatrix;
use crate::par;

/// `C = A * B`.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions differ ({}x{} * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = DenseMatrix::zeros(m, n);
    let c_ptr = SendPtr(c.as_mut_slice().as_mut_ptr());
    par::for_each_chunk(m, 16, |start, end| {
        let ptr = c_ptr;
        for i in start..end {
            // SAFETY: rows [start, end) are disjoint across threads.
            let c_row = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(i * n), n) };
            let a_row = a.row(i);
            for (kk, &aik) in a_row.iter().enumerate().take(k) {
                if aik == 0.0 {
                    continue;
                }
                let b_row = b.row(kk);
                for (cj, &bj) in c_row.iter_mut().zip(b_row.iter()) {
                    *cj += aik * bj;
                }
            }
        }
    });
    c
}

/// `C = A^T * B` without materializing the transpose.
///
/// Used by GNN backprop (`dW = H^T * dZ`).
pub fn matmul_tn(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn: row counts differ ({} vs {})",
        a.rows(),
        b.rows()
    );
    let m = a.cols();
    let n = b.cols();
    // Accumulate per-thread partials, then reduce: A^T*B sums over rows of A,
    // which is the parallel axis, so direct row-parallelism would race.
    let threads = par::num_threads().max(1);
    let rows = a.rows();
    let chunk = rows.div_ceil(threads).max(1);
    let mut partials: Vec<DenseMatrix> = Vec::with_capacity(threads);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(rows);
            if start >= end {
                break;
            }
            handles.push(scope.spawn(move |_| {
                let mut local = DenseMatrix::zeros(m, n);
                for r in start..end {
                    let a_row = a.row(r);
                    let b_row = b.row(r);
                    for (i, &ai) in a_row.iter().enumerate() {
                        if ai == 0.0 {
                            continue;
                        }
                        let local_row = local.row_mut(i);
                        for (lj, &bj) in local_row.iter_mut().zip(b_row.iter()) {
                            *lj += ai * bj;
                        }
                    }
                }
                local
            }));
        }
        for h in handles {
            partials.push(h.join().expect("matmul_tn worker panicked"));
        }
    })
    .expect("matmul_tn scope failed");
    let mut c = DenseMatrix::zeros(m, n);
    for p in &partials {
        add_assign(&mut c, p);
    }
    c
}

/// `C = A * B^T` without materializing the transpose.
pub fn matmul_nt(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt: column counts differ ({} vs {})",
        a.cols(),
        b.cols()
    );
    let m = a.rows();
    let n = b.rows();
    let mut c = DenseMatrix::zeros(m, n);
    let c_ptr = SendPtr(c.as_mut_slice().as_mut_ptr());
    par::for_each_chunk(m, 16, |start, end| {
        let ptr = c_ptr;
        for i in start..end {
            // SAFETY: disjoint output rows per thread.
            let c_row = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(i * n), n) };
            let a_row = a.row(i);
            for (j, cj) in c_row.iter_mut().enumerate() {
                *cj = dot(a_row, b.row(j));
            }
        }
    });
    c
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// `a += b` elementwise.
pub fn add_assign(a: &mut DenseMatrix, b: &DenseMatrix) {
    assert_eq!(a.shape(), b.shape(), "add_assign: shapes differ");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += *y;
    }
}

/// `a += alpha * b` elementwise (AXPY).
pub fn axpy(a: &mut DenseMatrix, alpha: f32, b: &DenseMatrix) {
    assert_eq!(a.shape(), b.shape(), "axpy: shapes differ");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += alpha * *y;
    }
}

/// `a *= alpha` elementwise.
pub fn scale(a: &mut DenseMatrix, alpha: f32) {
    for x in a.as_mut_slice() {
        *x *= alpha;
    }
}

/// Elementwise (Hadamard) product `a ⊙ b`.
pub fn hadamard(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.shape(), b.shape(), "hadamard: shapes differ");
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x * y)
        .collect();
    DenseMatrix::from_vec(a.rows(), a.cols(), data)
}

/// L2-normalizes every row in place; zero rows are left untouched.
pub fn l2_normalize_rows(m: &mut DenseMatrix) {
    l2_normalize_rows_par(m, 1);
}

/// L2-normalizes one row slice in place — the exact per-row operation of
/// [`l2_normalize_rows`] (same [`dot`], same division order), exposed so
/// incremental maintenance can re-normalize only dirty rows and stay
/// bit-identical to a full-matrix pass.
pub fn l2_normalize_row(row: &mut [f32]) {
    let norm = dot(row, row).sqrt();
    if norm > 0.0 {
        for v in row {
            *v /= norm;
        }
    }
}

/// [`l2_normalize_rows`] over `threads` workers (`0` = auto); rows are
/// normalized independently, so the result is bit-identical at any
/// thread count.
pub fn l2_normalize_rows_par(m: &mut DenseMatrix, threads: usize) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    let rows = m.rows();
    let ptr = crate::par::SendPtr(m.as_mut_slice().as_mut_ptr());
    crate::par::for_each_chunk_with(threads, rows, 128, |start, end| {
        #[allow(clippy::redundant_locals)]
        let ptr = ptr;
        for i in start..end {
            // SAFETY: each chunk normalizes a disjoint row range of `m`,
            // which outlives the scoped threads.
            let row = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(i * cols), cols) };
            l2_normalize_row(row);
        }
    });
}

/// L1-normalizes every row in place; zero rows are left untouched.
pub fn l1_normalize_rows(m: &mut DenseMatrix) {
    for i in 0..m.rows() {
        let row = m.row_mut(i);
        let norm: f32 = row.iter().map(|v| v.abs()).sum();
        if norm > 0.0 {
            for v in row {
                *v /= norm;
            }
        }
    }
}

/// Per-row L2 norms.
pub fn row_norms(m: &DenseMatrix) -> Vec<f32> {
    (0..m.rows())
        .map(|i| dot(m.row(i), m.row(i)).sqrt())
        .collect()
}

/// Column-wise mean vector.
pub fn column_means(m: &DenseMatrix) -> Vec<f32> {
    let mut means = vec![0.0f64; m.cols()];
    for row in m.iter_rows() {
        for (acc, &v) in means.iter_mut().zip(row) {
            *acc += v as f64;
        }
    }
    let n = m.rows().max(1) as f64;
    means.into_iter().map(|v| (v / n) as f32).collect()
}

/// Raw pointer wrapper asserting cross-thread safety for disjoint writes.
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &DenseMatrix, b: &DenseMatrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_small_known_result() {
        let a = DenseMatrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = DenseMatrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = DenseMatrix::from_vec(3, 3, (0..9).map(|v| v as f32).collect());
        let c = matmul(&a, &DenseMatrix::eye(3));
        assert!(approx_eq(&a, &c, 1e-6));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = DenseMatrix::from_vec(4, 2, (0..8).map(|v| v as f32).collect());
        let b = DenseMatrix::from_vec(4, 3, (0..12).map(|v| (v as f32).sin()).collect());
        let fast = matmul_tn(&a, &b);
        let slow = matmul(&a.transpose(), &b);
        assert!(approx_eq(&fast, &slow, 1e-5));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = DenseMatrix::from_vec(3, 4, (0..12).map(|v| (v as f32).cos()).collect());
        let b = DenseMatrix::from_vec(2, 4, (0..8).map(|v| v as f32 * 0.5).collect());
        let fast = matmul_nt(&a, &b);
        let slow = matmul(&a, &b.transpose());
        assert!(approx_eq(&fast, &slow, 1e-5));
    }

    #[test]
    fn l2_normalize_rows_makes_unit_rows() {
        let mut m = DenseMatrix::from_vec(2, 2, vec![3., 4., 0., 0.]);
        l2_normalize_rows(&mut m);
        assert!((dot(m.row(0), m.row(0)) - 1.0).abs() < 1e-6);
        assert_eq!(m.row(1), &[0., 0.]); // zero row untouched
    }

    #[test]
    fn l2_normalize_rows_is_thread_count_invariant() {
        let data: Vec<f32> = (0..600).map(|i| ((i * 37 % 23) as f32) - 11.0).collect();
        let mut serial = DenseMatrix::from_vec(200, 3, data.clone());
        l2_normalize_rows(&mut serial);
        for threads in [2usize, 7] {
            let mut par = DenseMatrix::from_vec(200, 3, data.clone());
            l2_normalize_rows_par(&mut par, threads);
            assert_eq!(par, serial, "{threads} threads");
        }
    }

    #[test]
    fn l1_normalize_rows_makes_unit_l1() {
        let mut m = DenseMatrix::from_vec(1, 3, vec![1., -1., 2.]);
        l1_normalize_rows(&mut m);
        let l1: f32 = m.row(0).iter().map(|v| v.abs()).sum();
        assert!((l1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn axpy_and_scale_compose() {
        let mut a = DenseMatrix::full(2, 2, 1.0);
        let b = DenseMatrix::full(2, 2, 2.0);
        axpy(&mut a, 0.5, &b);
        scale(&mut a, 2.0);
        assert!(a.as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn column_means_are_exact() {
        let m = DenseMatrix::from_vec(2, 2, vec![1., 10., 3., 30.]);
        assert_eq!(column_means(&m), vec![2., 20.]);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = DenseMatrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = DenseMatrix::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(hadamard(&a, &b).as_slice(), &[4., 10., 18.]);
    }

    #[test]
    fn large_parallel_matmul_matches_serial() {
        // Exercises the threaded path (rows > chunk threshold).
        let n = 97;
        let a = DenseMatrix::from_vec(n, n, (0..n * n).map(|v| ((v % 13) as f32) * 0.1).collect());
        let b = DenseMatrix::from_vec(n, n, (0..n * n).map(|v| ((v % 7) as f32) * 0.2).collect());
        let c = matmul(&a, &b);
        // Spot-check a few entries against a scalar computation.
        for &(i, j) in &[(0, 0), (50, 13), (96, 96)] {
            let mut want = 0.0f32;
            for k in 0..n {
                want += a.get(i, k) * b.get(k, j);
            }
            assert!((c.get(i, j) - want).abs() < 1e-3);
        }
    }
}

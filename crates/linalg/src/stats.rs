//! Small statistics helpers used by the experiment harness
//! (mean/std over repeated runs, percentiles for runtime tables).

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator); `0.0` for fewer than two values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Linear-interpolated percentile `p` in `[0, 100]`; `0.0` for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Pearson correlation coefficient; `0.0` if either side has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Index of the maximum value; `None` for an empty slice. Ties break low.
pub fn argmax(xs: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in xs.iter().enumerate() {
        match best {
            Some((_, bx)) if x <= bx => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935299395).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [-2.0, -4.0, -6.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}

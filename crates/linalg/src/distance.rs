//! Pairwise distances in the aggregated feature space.
//!
//! The Grain diversity functions (Section 3.3) measure distance between
//! *L2-normalized* k-step aggregated feature rows and scale by 1/2 so that
//! distances live in `[0, 1]`:
//!
//! ```text
//! d(u, v) = || x_u/||x_u||  -  x_v/||x_v|| || / 2
//! ```
//!
//! This module provides that metric, chunked all-pairs radius queries (used
//! to build ball-coverage groups `G_u`), and nearest-centroid helpers used by
//! the K-Center-Greedy and AGE baselines.

use crate::dense::DenseMatrix;
use crate::ops;
use crate::par::{self, SendPtr};

/// Rows per cache tile in the O(n²·d) all-pairs kernels. The blocked loop
/// order revisits one v-tile for every u in a worker's block, so the tile
/// (64 rows × d floats) stays in L1/L2 across the whole block instead of
/// streaming the full n×d matrix once per source row. Tiling only reorders
/// *independent* (u, v) distance evaluations — per-u neighbor appends stay
/// v-ascending and `f32::max` is an order-independent reduction — so
/// results are bit-identical to the untiled scan.
const TILE_ROWS: usize = 64;

/// Squared Euclidean distance between two raw rows.
#[inline]
pub fn sq_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two raw rows.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    sq_euclidean(a, b).sqrt()
}

/// The paper's normalized feature-space metric: rows must already be
/// L2-normalized; result is `||a - b|| / 2`, in `[0, 1]`.
#[inline]
pub fn grain_distance(a: &[f32], b: &[f32]) -> f32 {
    euclidean(a, b) * 0.5
}

/// Returns a copy of `m` with L2-normalized rows, the input representation
/// for all diversity computations.
pub fn normalized_embedding(m: &DenseMatrix) -> DenseMatrix {
    normalized_embedding_par(m, 1)
}

/// [`normalized_embedding`] over `threads` workers (`0` = auto); rows
/// normalize independently, so results are bit-identical at any thread
/// count.
pub fn normalized_embedding_par(m: &DenseMatrix, threads: usize) -> DenseMatrix {
    let mut out = m.clone();
    ops::l2_normalize_rows_par(&mut out, threads);
    out
}

/// All-pairs radius query on L2-normalized rows under [`grain_distance`].
///
/// Returns, for every row `u`, the sorted list of rows `v` (including `u`
/// itself) with `grain_distance(u, v) <= r`. Computed in parallel with a
/// squared-threshold comparison so no square roots are taken in the inner
/// loop.
pub fn radius_neighbors(normed: &DenseMatrix, r: f32) -> Vec<Vec<u32>> {
    radius_neighbors_par(normed, r, 0)
}

/// [`radius_neighbors`] over `threads` workers (`0` = auto). Each row's
/// neighbor list is owned by exactly one worker and the cache-blocked scan
/// (see `TILE_ROWS`) visits v-tiles in ascending order, so the result is
/// bit-identical to a naive row-major scan at any thread count.
pub fn radius_neighbors_par(normed: &DenseMatrix, r: f32, threads: usize) -> Vec<Vec<u32>> {
    let n = normed.rows();
    // grain_distance <= r  <=>  sq_euclidean <= (2r)^2
    let thresh = (2.0 * r) * (2.0 * r);
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    {
        let out_ptr = SendPtr(out.as_mut_ptr());
        par::for_each_chunk_with(threads, n, 8, |start, end| {
            // SAFETY: each worker writes only the `out` entries of its own
            // disjoint u-range, and `out` outlives the scoped threads.
            let ptr = out_ptr;
            for tile_start in (0..n).step_by(TILE_ROWS) {
                let tile_end = (tile_start + TILE_ROWS).min(n);
                for u in start..end {
                    let row_u = normed.row(u);
                    let out_u = unsafe { &mut *ptr.0.add(u) };
                    for v in tile_start..tile_end {
                        if sq_euclidean(row_u, normed.row(v)) <= thresh {
                            out_u.push(v as u32);
                        }
                    }
                }
            }
        });
    }
    out
}

/// For every row of `points`, the minimum [`grain_distance`] to any row of
/// `centers` (both L2-normalized). Returns `f32::INFINITY` when `centers`
/// is empty.
pub fn min_distance_to_set(points: &DenseMatrix, centers: &DenseMatrix) -> Vec<f32> {
    let n = points.rows();
    par::par_map(n, 16, |u| {
        let row = points.row(u);
        let mut best = f32::INFINITY;
        for c in 0..centers.rows() {
            let d = sq_euclidean(row, centers.row(c));
            if d < best {
                best = d;
            }
        }
        if best.is_finite() {
            best.sqrt() * 0.5
        } else {
            best
        }
    })
}

/// Maximum pairwise [`grain_distance`] over the rows (the `d_max` constant of
/// the NN-diversity function, Definition 3.4). Exact for small inputs and
/// estimated from a deterministic sample of anchor rows for large inputs,
/// which is an upper-bound-preserving choice because `d_max <= 1` under the
/// normalized metric anyway.
pub fn max_pairwise_distance(normed: &DenseMatrix, exact_limit: usize) -> f32 {
    max_pairwise_distance_par(normed, exact_limit, 0)
}

/// [`max_pairwise_distance`] over `threads` workers (`0` = auto).
///
/// Each source row's maximum is owned by one worker and scanned with the
/// cache-blocked tile loop (see `TILE_ROWS`); `f32::max` over exact
/// squared distances is an order-independent reduction (no rounding is
/// introduced by reassociation), so the result is bit-identical at any
/// thread count and to the untiled scan.
pub fn max_pairwise_distance_par(normed: &DenseMatrix, exact_limit: usize, threads: usize) -> f32 {
    let n = normed.rows();
    if n <= 1 {
        return 0.0;
    }
    let best_sq = if n <= exact_limit {
        // Exact upper-triangle scan: source row u against every v > u.
        let partial = max_sq_tiled(normed, threads, 16, n, |i| i, true);
        partial.into_iter().fold(0.0f32, f32::max)
    } else {
        // Deterministic stride sample of anchors; each anchor scans all rows.
        let anchors = exact_limit.max(16).min(n);
        let stride = (n / anchors).max(1);
        let anchor_rows: Vec<usize> = (0..n).step_by(stride).collect();
        let partial = max_sq_tiled(
            normed,
            threads,
            1,
            anchor_rows.len(),
            |i| anchor_rows[i],
            false,
        );
        partial.into_iter().fold(0.0f32, f32::max)
    };
    best_sq.sqrt() * 0.5
}

/// Cache-blocked per-source max of squared distances. Source `i` of
/// `0..sources` is row `source_of(i)`; with `upper_triangle` set, only
/// targets `v > source_of(i)` are scanned (every unordered pair once).
/// Each source's running max is owned by one worker, so the tiled loop
/// order changes nothing observable — max is order-independent.
fn max_sq_tiled(
    normed: &DenseMatrix,
    threads: usize,
    min_chunk: usize,
    sources: usize,
    source_of: impl Fn(usize) -> usize + Sync,
    upper_triangle: bool,
) -> Vec<f32> {
    let n = normed.rows();
    let mut best = vec![0.0f32; sources];
    {
        let best_ptr = SendPtr(best.as_mut_ptr());
        par::for_each_chunk_with(threads, sources, min_chunk, |start, end| {
            // SAFETY: each worker writes only its disjoint source range of
            // `best`, which outlives the scoped threads.
            let ptr = best_ptr;
            for tile_start in (0..n).step_by(TILE_ROWS) {
                let tile_end = (tile_start + TILE_ROWS).min(n);
                for i in start..end {
                    let u = source_of(i);
                    let lo = if upper_triangle {
                        tile_start.max(u + 1)
                    } else {
                        tile_start
                    };
                    if lo >= tile_end {
                        continue;
                    }
                    let row = normed.row(u);
                    let slot = unsafe { &mut *ptr.0.add(i) };
                    let mut local = *slot;
                    for v in lo..tile_end {
                        let d = sq_euclidean(row, normed.row(v));
                        if d > local {
                            local = d;
                        }
                    }
                    *slot = local;
                }
            }
        });
    }
    best
}

/// Index of the nearest row of `centers` for every row of `points`
/// (squared Euclidean on raw rows, as used by k-means assignment).
pub fn nearest_center(points: &DenseMatrix, centers: &DenseMatrix) -> Vec<usize> {
    assert!(centers.rows() > 0, "nearest_center: empty center set");
    par::par_map(points.rows(), 16, |u| {
        let row = points.row(u);
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for c in 0..centers.rows() {
            let d = sq_euclidean(row, centers.row(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grain_distance_is_bounded_by_one_on_unit_rows() {
        // Antipodal unit vectors reach exactly 1.
        let a = [1.0f32, 0.0];
        let b = [-1.0f32, 0.0];
        assert!((grain_distance(&a, &b) - 1.0).abs() < 1e-6);
        assert_eq!(grain_distance(&a, &a), 0.0);
    }

    #[test]
    fn radius_neighbors_includes_self_and_symmetric() {
        let mut m = DenseMatrix::from_vec(3, 2, vec![1., 0., 0.99, 0.14, -1., 0.]);
        ops::l2_normalize_rows(&mut m);
        let nb = radius_neighbors(&m, 0.1);
        assert!(nb[0].contains(&0));
        // 0 and 1 are close, 2 is far.
        assert_eq!(nb[0].contains(&1), nb[1].contains(&0));
        assert!(!nb[0].contains(&2));
    }

    #[test]
    fn radius_zero_covers_only_identical_rows() {
        let mut m = DenseMatrix::from_vec(3, 2, vec![1., 0., 1., 0., 0., 1.]);
        ops::l2_normalize_rows(&mut m);
        let nb = radius_neighbors(&m, 0.0);
        assert_eq!(nb[0], vec![0, 1]); // duplicate rows coincide
        assert_eq!(nb[2], vec![2]);
    }

    #[test]
    fn min_distance_to_set_empty_centers_is_infinite() {
        let p = DenseMatrix::from_vec(2, 2, vec![1., 0., 0., 1.]);
        let c = DenseMatrix::zeros(0, 2);
        let d = min_distance_to_set(&p, &c);
        assert!(d.iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn max_pairwise_distance_exact_small() {
        let mut m = DenseMatrix::from_vec(3, 2, vec![1., 0., 0., 1., -1., 0.]);
        ops::l2_normalize_rows(&mut m);
        let d = max_pairwise_distance(&m, 100);
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn max_pairwise_distance_sampled_is_lower_bound() {
        let n = 500;
        let data: Vec<f32> = (0..n * 2).map(|i| ((i * 31 % 17) as f32) - 8.0).collect();
        let mut m = DenseMatrix::from_vec(n, 2, data);
        ops::l2_normalize_rows(&mut m);
        let exact = max_pairwise_distance(&m, usize::MAX);
        let sampled = max_pairwise_distance(&m, 64);
        assert!(sampled <= exact + 1e-6);
        assert!(sampled > 0.0);
    }

    #[test]
    fn parallel_distance_kernels_are_thread_count_invariant() {
        let n = 300;
        let data: Vec<f32> = (0..n * 3).map(|i| ((i * 29 % 19) as f32) - 9.0).collect();
        let m = DenseMatrix::from_vec(n, 3, data);
        let normed = normalized_embedding(&m);
        let balls = radius_neighbors(&normed, 0.2);
        let dmax_exact = max_pairwise_distance(&normed, usize::MAX);
        let dmax_sampled = max_pairwise_distance(&normed, 64);
        for threads in [1usize, 2, 8] {
            assert_eq!(normalized_embedding_par(&m, threads), normed, "{threads}");
            assert_eq!(
                radius_neighbors_par(&normed, 0.2, threads),
                balls,
                "{threads}"
            );
            assert_eq!(
                max_pairwise_distance_par(&normed, usize::MAX, threads).to_bits(),
                dmax_exact.to_bits(),
                "{threads}"
            );
            assert_eq!(
                max_pairwise_distance_par(&normed, 64, threads).to_bits(),
                dmax_sampled.to_bits(),
                "{threads}"
            );
        }
    }

    #[test]
    fn tiled_kernels_match_naive_reference_scan() {
        // The cache-blocked tile loop must be observably identical to the
        // plain row-major scan it replaced, bit for bit.
        let n = 257; // deliberately not a multiple of the tile size
        let data: Vec<f32> = (0..n * 5).map(|i| ((i * 37 % 23) as f32) - 11.0).collect();
        let m = DenseMatrix::from_vec(n, 5, data);
        let normed = normalized_embedding(&m);

        let r = 0.15f32;
        let thresh = (2.0 * r) * (2.0 * r);
        let naive_balls: Vec<Vec<u32>> = (0..n)
            .map(|u| {
                (0..n)
                    .filter(|&v| sq_euclidean(normed.row(u), normed.row(v)) <= thresh)
                    .map(|v| v as u32)
                    .collect()
            })
            .collect();
        assert_eq!(radius_neighbors(&normed, r), naive_balls);

        let mut naive_best = 0.0f32;
        for u in 0..n {
            for v in (u + 1)..n {
                naive_best = naive_best.max(sq_euclidean(normed.row(u), normed.row(v)));
            }
        }
        let naive_dmax = naive_best.sqrt() * 0.5;
        assert_eq!(
            max_pairwise_distance(&normed, usize::MAX).to_bits(),
            naive_dmax.to_bits()
        );
    }

    #[test]
    fn nearest_center_picks_closest() {
        let p = DenseMatrix::from_vec(2, 1, vec![0.1, 0.9]);
        let c = DenseMatrix::from_vec(2, 1, vec![0.0, 1.0]);
        assert_eq!(nearest_center(&p, &c), vec![0, 1]);
    }
}

//! Pairwise distances in the aggregated feature space.
//!
//! The Grain diversity functions (Section 3.3) measure distance between
//! *L2-normalized* k-step aggregated feature rows and scale by 1/2 so that
//! distances live in `[0, 1]`:
//!
//! ```text
//! d(u, v) = || x_u/||x_u||  -  x_v/||x_v|| || / 2
//! ```
//!
//! This module provides that metric, chunked all-pairs radius queries (used
//! to build ball-coverage groups `G_u`), and nearest-centroid helpers used by
//! the K-Center-Greedy and AGE baselines.

use crate::dense::DenseMatrix;
use crate::ops;
use crate::par;

/// Squared Euclidean distance between two raw rows.
#[inline]
pub fn sq_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two raw rows.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    sq_euclidean(a, b).sqrt()
}

/// The paper's normalized feature-space metric: rows must already be
/// L2-normalized; result is `||a - b|| / 2`, in `[0, 1]`.
#[inline]
pub fn grain_distance(a: &[f32], b: &[f32]) -> f32 {
    euclidean(a, b) * 0.5
}

/// Returns a copy of `m` with L2-normalized rows, the input representation
/// for all diversity computations.
pub fn normalized_embedding(m: &DenseMatrix) -> DenseMatrix {
    normalized_embedding_par(m, 1)
}

/// [`normalized_embedding`] over `threads` workers (`0` = auto); rows
/// normalize independently, so results are bit-identical at any thread
/// count.
pub fn normalized_embedding_par(m: &DenseMatrix, threads: usize) -> DenseMatrix {
    let mut out = m.clone();
    ops::l2_normalize_rows_par(&mut out, threads);
    out
}

/// All-pairs radius query on L2-normalized rows under [`grain_distance`].
///
/// Returns, for every row `u`, the sorted list of rows `v` (including `u`
/// itself) with `grain_distance(u, v) <= r`. Computed in parallel with a
/// squared-threshold comparison so no square roots are taken in the inner
/// loop.
pub fn radius_neighbors(normed: &DenseMatrix, r: f32) -> Vec<Vec<u32>> {
    radius_neighbors_par(normed, r, 0)
}

/// [`radius_neighbors`] over `threads` workers (`0` = auto). Each row's
/// neighbor list is computed independently by one worker, so the result
/// is bit-identical at any thread count.
pub fn radius_neighbors_par(normed: &DenseMatrix, r: f32, threads: usize) -> Vec<Vec<u32>> {
    let n = normed.rows();
    // grain_distance <= r  <=>  sq_euclidean <= (2r)^2
    let thresh = (2.0 * r) * (2.0 * r);
    par::par_map_with(threads, n, 8, |u| {
        let row_u = normed.row(u);
        let mut out = Vec::new();
        for v in 0..n {
            if sq_euclidean(row_u, normed.row(v)) <= thresh {
                out.push(v as u32);
            }
        }
        out
    })
}

/// For every row of `points`, the minimum [`grain_distance`] to any row of
/// `centers` (both L2-normalized). Returns `f32::INFINITY` when `centers`
/// is empty.
pub fn min_distance_to_set(points: &DenseMatrix, centers: &DenseMatrix) -> Vec<f32> {
    let n = points.rows();
    par::par_map(n, 16, |u| {
        let row = points.row(u);
        let mut best = f32::INFINITY;
        for c in 0..centers.rows() {
            let d = sq_euclidean(row, centers.row(c));
            if d < best {
                best = d;
            }
        }
        if best.is_finite() {
            best.sqrt() * 0.5
        } else {
            best
        }
    })
}

/// Maximum pairwise [`grain_distance`] over the rows (the `d_max` constant of
/// the NN-diversity function, Definition 3.4). Exact for small inputs and
/// estimated from a deterministic sample of anchor rows for large inputs,
/// which is an upper-bound-preserving choice because `d_max <= 1` under the
/// normalized metric anyway.
pub fn max_pairwise_distance(normed: &DenseMatrix, exact_limit: usize) -> f32 {
    max_pairwise_distance_par(normed, exact_limit, 0)
}

/// [`max_pairwise_distance`] over `threads` workers (`0` = auto).
///
/// Each worker reduces a disjoint range of source rows to a local
/// maximum; `f32::max` over exact squared distances is an
/// order-independent reduction (no rounding is introduced by
/// reassociation), so the result is bit-identical at any thread count.
pub fn max_pairwise_distance_par(normed: &DenseMatrix, exact_limit: usize, threads: usize) -> f32 {
    let n = normed.rows();
    if n <= 1 {
        return 0.0;
    }
    let best_sq = if n <= exact_limit {
        let partial = par::par_map_with(threads, n, 16, |u| {
            let row = normed.row(u);
            let mut best = 0.0f32;
            for v in (u + 1)..n {
                let d = sq_euclidean(row, normed.row(v));
                if d > best {
                    best = d;
                }
            }
            best
        });
        partial.into_iter().fold(0.0f32, f32::max)
    } else {
        // Deterministic stride sample of anchors; each anchor scans all rows.
        let anchors = exact_limit.max(16).min(n);
        let stride = (n / anchors).max(1);
        let anchor_rows: Vec<usize> = (0..n).step_by(stride).collect();
        let partial = par::par_map_with(threads, anchor_rows.len(), 1, |i| {
            let row = normed.row(anchor_rows[i]);
            let mut best = 0.0f32;
            for v in 0..n {
                let d = sq_euclidean(row, normed.row(v));
                if d > best {
                    best = d;
                }
            }
            best
        });
        partial.into_iter().fold(0.0f32, f32::max)
    };
    best_sq.sqrt() * 0.5
}

/// Index of the nearest row of `centers` for every row of `points`
/// (squared Euclidean on raw rows, as used by k-means assignment).
pub fn nearest_center(points: &DenseMatrix, centers: &DenseMatrix) -> Vec<usize> {
    assert!(centers.rows() > 0, "nearest_center: empty center set");
    par::par_map(points.rows(), 16, |u| {
        let row = points.row(u);
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for c in 0..centers.rows() {
            let d = sq_euclidean(row, centers.row(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grain_distance_is_bounded_by_one_on_unit_rows() {
        // Antipodal unit vectors reach exactly 1.
        let a = [1.0f32, 0.0];
        let b = [-1.0f32, 0.0];
        assert!((grain_distance(&a, &b) - 1.0).abs() < 1e-6);
        assert_eq!(grain_distance(&a, &a), 0.0);
    }

    #[test]
    fn radius_neighbors_includes_self_and_symmetric() {
        let mut m = DenseMatrix::from_vec(3, 2, vec![1., 0., 0.99, 0.14, -1., 0.]);
        ops::l2_normalize_rows(&mut m);
        let nb = radius_neighbors(&m, 0.1);
        assert!(nb[0].contains(&0));
        // 0 and 1 are close, 2 is far.
        assert_eq!(nb[0].contains(&1), nb[1].contains(&0));
        assert!(!nb[0].contains(&2));
    }

    #[test]
    fn radius_zero_covers_only_identical_rows() {
        let mut m = DenseMatrix::from_vec(3, 2, vec![1., 0., 1., 0., 0., 1.]);
        ops::l2_normalize_rows(&mut m);
        let nb = radius_neighbors(&m, 0.0);
        assert_eq!(nb[0], vec![0, 1]); // duplicate rows coincide
        assert_eq!(nb[2], vec![2]);
    }

    #[test]
    fn min_distance_to_set_empty_centers_is_infinite() {
        let p = DenseMatrix::from_vec(2, 2, vec![1., 0., 0., 1.]);
        let c = DenseMatrix::zeros(0, 2);
        let d = min_distance_to_set(&p, &c);
        assert!(d.iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn max_pairwise_distance_exact_small() {
        let mut m = DenseMatrix::from_vec(3, 2, vec![1., 0., 0., 1., -1., 0.]);
        ops::l2_normalize_rows(&mut m);
        let d = max_pairwise_distance(&m, 100);
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn max_pairwise_distance_sampled_is_lower_bound() {
        let n = 500;
        let data: Vec<f32> = (0..n * 2).map(|i| ((i * 31 % 17) as f32) - 8.0).collect();
        let mut m = DenseMatrix::from_vec(n, 2, data);
        ops::l2_normalize_rows(&mut m);
        let exact = max_pairwise_distance(&m, usize::MAX);
        let sampled = max_pairwise_distance(&m, 64);
        assert!(sampled <= exact + 1e-6);
        assert!(sampled > 0.0);
    }

    #[test]
    fn parallel_distance_kernels_are_thread_count_invariant() {
        let n = 300;
        let data: Vec<f32> = (0..n * 3).map(|i| ((i * 29 % 19) as f32) - 9.0).collect();
        let m = DenseMatrix::from_vec(n, 3, data);
        let normed = normalized_embedding(&m);
        let balls = radius_neighbors(&normed, 0.2);
        let dmax_exact = max_pairwise_distance(&normed, usize::MAX);
        let dmax_sampled = max_pairwise_distance(&normed, 64);
        for threads in [1usize, 2, 8] {
            assert_eq!(normalized_embedding_par(&m, threads), normed, "{threads}");
            assert_eq!(
                radius_neighbors_par(&normed, 0.2, threads),
                balls,
                "{threads}"
            );
            assert_eq!(
                max_pairwise_distance_par(&normed, usize::MAX, threads).to_bits(),
                dmax_exact.to_bits(),
                "{threads}"
            );
            assert_eq!(
                max_pairwise_distance_par(&normed, 64, threads).to_bits(),
                dmax_sampled.to_bits(),
                "{threads}"
            );
        }
    }

    #[test]
    fn nearest_center_picks_closest() {
        let p = DenseMatrix::from_vec(2, 1, vec![0.1, 0.9]);
        let c = DenseMatrix::from_vec(2, 1, vec![0.0, 1.0]);
        assert_eq!(nearest_center(&p, &c), vec![0, 1]);
    }
}

//! Property-based tests for the dense-matrix kernels.

use grain_linalg::{ops, DenseMatrix};
use proptest::prelude::*;

/// Strategy: a small matrix with bounded values.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data))
}

fn approx_eq(a: &DenseMatrix, b: &DenseMatrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn matmul_distributes_over_addition(a in matrix(4, 3), b in matrix(3, 5), c in matrix(3, 5)) {
        // A(B + C) == AB + AC
        let mut bc = b.clone();
        ops::add_assign(&mut bc, &c);
        let lhs = ops::matmul(&a, &bc);
        let mut rhs = ops::matmul(&a, &b);
        ops::add_assign(&mut rhs, &ops::matmul(&a, &c));
        prop_assert!(approx_eq(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn matmul_associates(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let lhs = ops::matmul(&ops::matmul(&a, &b), &c);
        let rhs = ops::matmul(&a, &ops::matmul(&b, &c));
        prop_assert!(approx_eq(&lhs, &rhs, 1e-2));
    }

    #[test]
    fn transpose_is_involution(a in matrix(5, 7)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn tn_and_nt_agree_with_explicit_transpose(a in matrix(6, 3), b in matrix(6, 4)) {
        let tn = ops::matmul_tn(&a, &b);
        let explicit = ops::matmul(&a.transpose(), &b);
        prop_assert!(approx_eq(&tn, &explicit, 1e-3));
        // matmul_nt(X, Y) = X Yᵀ with X: 3x6, Y: 4x6 -> 3x4.
        let x = a.transpose();
        let y = b.transpose();
        let nt = ops::matmul_nt(&x, &y);
        let explicit2 = ops::matmul(&x, &y.transpose());
        prop_assert!(approx_eq(&nt, &explicit2, 1e-3));
    }

    #[test]
    fn l2_normalized_rows_are_unit_or_zero(a in matrix(6, 4)) {
        let mut m = a;
        ops::l2_normalize_rows(&mut m);
        for i in 0..m.rows() {
            let n = ops::dot(m.row(i), m.row(i)).sqrt();
            prop_assert!(n < 1e-6 || (n - 1.0).abs() < 1e-4, "row norm {}", n);
        }
    }

    #[test]
    fn row_select_preserves_content(a in matrix(6, 3), idx in proptest::collection::vec(0usize..6, 1..6)) {
        let s = a.select_rows(&idx);
        for (out_row, &src) in idx.iter().enumerate() {
            prop_assert_eq!(s.row(out_row), a.row(src));
        }
    }

    #[test]
    fn frobenius_norm_scales_linearly(a in matrix(4, 4), alpha in 0.1f32..5.0) {
        let mut scaled = a.clone();
        ops::scale(&mut scaled, alpha);
        let lhs = scaled.frobenius_norm();
        let rhs = alpha * a.frobenius_norm();
        prop_assert!((lhs - rhs).abs() <= 1e-3 * (1.0 + rhs.abs()));
    }
}

//! Property-based tests for the graph substrate.

use grain_graph::generators::{self, SbmConfig};
use grain_graph::{algo, transition_matrix, triangle, CsrMatrix, Graph, TransitionKind};
use proptest::prelude::*;

/// Strategy: a random edge list over `n` nodes.
fn edges(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn graph_adjacency_is_always_symmetric(es in edges(20, 60)) {
        let g = Graph::from_edges(20, &es);
        prop_assert!(g.adjacency().is_symmetric(1e-6));
        // Degree sum equals twice the edge count.
        let deg_sum: usize = g.degrees().iter().sum();
        prop_assert_eq!(deg_sum, 2 * g.num_edges());
    }

    #[test]
    fn csr_round_trips_through_triplets(es in edges(15, 40)) {
        let g = Graph::from_edges(15, &es);
        let a = g.adjacency();
        let triplets: Vec<(u32, u32, f32)> = a.iter_triplets().collect();
        let rebuilt = CsrMatrix::from_triplets(15, 15, &triplets, false);
        prop_assert_eq!(a, &rebuilt);
    }

    #[test]
    fn random_walk_transition_is_row_stochastic(es in edges(18, 50)) {
        let g = Graph::from_edges(18, &es);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        for s in t.row_sums() {
            prop_assert!((s - 1.0).abs() < 1e-5, "row sum {}", s);
        }
    }

    #[test]
    fn symmetric_transition_spectral_radius_bounded(es in edges(16, 40)) {
        // Power iteration of T_sym on any vector must not blow up
        // (eigenvalues lie in [-1, 1]).
        let g = Graph::from_edges(16, &es);
        let t = transition_matrix(&g, TransitionKind::Symmetric, true);
        let mut v = vec![1.0f32; 16];
        for _ in 0..20 {
            v = t.spmv(&v);
        }
        prop_assert!(v.iter().all(|x| x.abs() <= 16.0 + 1e-3));
    }

    #[test]
    fn pagerank_is_a_distribution(es in edges(20, 60)) {
        let g = Graph::from_edges(20, &es);
        let pr = algo::pagerank(&g, 0.85, 60, 1e-10);
        let total: f64 = pr.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        prop_assert!(pr.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn bfs_distances_satisfy_triangle_step(es in edges(15, 45)) {
        // Neighbors differ by at most 1 in BFS distance from any source.
        let g = Graph::from_edges(15, &es);
        let d = algo::bfs_distances(&g, 0);
        for v in 0..15 {
            if d[v] == u32::MAX {
                continue;
            }
            for &u in g.neighbors(v) {
                prop_assert!(d[u as usize] != u32::MAX);
                prop_assert!(d[u as usize] + 1 >= d[v] && d[v] + 1 >= d[u as usize]);
            }
        }
    }

    #[test]
    fn triangle_adjacency_is_symmetric(es in edges(14, 40)) {
        let g = Graph::from_edges(14, &es);
        let at = triangle::triangle_adjacency(&g);
        prop_assert!(at.is_symmetric(1e-6));
    }

    #[test]
    fn components_partition_the_graph(es in edges(18, 30)) {
        let g = Graph::from_edges(18, &es);
        let comp = algo::connected_components(&g);
        // Every edge joins same-component endpoints.
        for v in 0..18 {
            for &u in g.neighbors(v) {
                prop_assert_eq!(comp[v], comp[u as usize]);
            }
        }
        prop_assert_eq!(comp.len(), 18);
    }

    #[test]
    fn sbm_block_sizes_respected(sizes in proptest::collection::vec(3usize..12, 2..4), seed in 0u64..100) {
        let cfg = SbmConfig {
            block_sizes: sizes.clone(),
            mean_degree_in: 3.0,
            mean_degree_out: 0.5,
            degree_exponent: 0.0,
        };
        let (g, labels) = generators::degree_corrected_sbm(&cfg, seed);
        prop_assert_eq!(g.num_nodes(), sizes.iter().sum::<usize>());
        for (c, &sz) in sizes.iter().enumerate() {
            let count = labels.iter().filter(|&&l| l == c as u32).count();
            prop_assert_eq!(count, sz);
        }
    }

    #[test]
    fn edge_list_io_round_trips(es in edges(12, 30)) {
        let g = Graph::from_edges(12, &es);
        let mut buf = Vec::new();
        grain_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = grain_graph::io::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(g.adjacency(), g2.adjacency());
    }
}

//! Per-edge triangle counting.
//!
//! The Triangle-induced Adjacency kernel of Table 1 (from SIGN) weights each
//! edge by the number of triangles it participates in: `A_T[u][v] = #{w :
//! (u,v), (u,w), (v,w) ∈ E}`. Because CSR rows keep sorted neighbor lists,
//! the count for an edge is a sorted-list intersection, giving the classic
//! `O(Σ_e (deg(u) + deg(v)))` algorithm, parallelized over nodes.

use crate::csr::CsrMatrix;
use crate::graph::Graph;
use grain_linalg::par;

/// Number of common neighbors of two sorted neighbor lists.
#[inline]
pub fn sorted_intersection_count(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Builds the triangle-induced adjacency matrix `A_T`.
///
/// Entry `(u, v)` holds the number of triangles through edge `(u, v)`;
/// edges in no triangle vanish. Additionally every node receives a unit
/// self-loop so that rows never become empty (a zero row would make the
/// `D_T^{-1} A_T` transition undefined for that node; the self-loop keeps
/// the walk lazily in place instead, see DESIGN.md).
pub fn triangle_adjacency(g: &Graph) -> CsrMatrix {
    let n = g.num_nodes();
    let rows: Vec<Vec<(u32, f32)>> = par::par_map(n, 16, |u| {
        let nu = g.neighbors(u);
        let mut row = Vec::with_capacity(nu.len() + 1);
        for &v in nu {
            let c = sorted_intersection_count(nu, g.neighbors(v as usize));
            if c > 0 {
                row.push((v, c as f32));
            }
        }
        row.push((u as u32, 1.0));
        row.sort_unstable_by_key(|&(c, _)| c);
        row
    });
    let mut triplets = Vec::with_capacity(rows.iter().map(Vec::len).sum());
    for (u, row) in rows.iter().enumerate() {
        for &(v, w) in row {
            triplets.push((u as u32, v, w));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets, false)
}

/// Total triangle count of the graph.
pub fn count_triangles(g: &Graph) -> u64 {
    let n = g.num_nodes();
    let per_node: Vec<u64> = par::par_map(n, 16, |u| {
        let nu = g.neighbors(u);
        let mut c = 0u64;
        for &v in nu {
            if (v as usize) > u {
                // Only count each triangle once via its smallest vertex order:
                // common neighbors w > v of the ordered pair (u, v).
                let nv = g.neighbors(v as usize);
                let mut i = 0;
                let mut j = 0;
                while i < nu.len() && j < nv.len() {
                    match nu[i].cmp(&nv[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            if nu[i] > v {
                                c += 1;
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
        c
    });
    per_node.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_graph() -> Graph {
        // Triangle 0-1-2 plus pendant 3.
        Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn intersection_count_basics() {
        assert_eq!(sorted_intersection_count(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(sorted_intersection_count(&[], &[1]), 0);
        assert_eq!(sorted_intersection_count(&[1, 2], &[1, 2]), 2);
    }

    #[test]
    fn triangle_edges_get_counted() {
        let at = triangle_adjacency(&triangle_graph());
        // Edge (0,1) lies in one triangle.
        assert_eq!(at.get(0, 1), 1.0);
        assert_eq!(at.get(1, 2), 1.0);
        // Pendant edge (2,3) lies in none -> dropped.
        assert_eq!(at.get(2, 3), 0.0);
        // Self-loops present everywhere.
        for v in 0..4 {
            assert_eq!(at.get(v, v as u32), 1.0);
        }
    }

    #[test]
    fn total_triangle_count() {
        assert_eq!(count_triangles(&triangle_graph()), 1);
        // K4 has 4 triangles.
        let k4 = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count_triangles(&k4), 4);
    }

    #[test]
    fn triangle_free_graph_keeps_only_self_loops() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let at = triangle_adjacency(&path);
        assert_eq!(count_triangles(&path), 0);
        assert_eq!(at.nnz(), 4); // 4 self-loops only
    }

    #[test]
    fn multi_triangle_edge_weight() {
        // Edge (0,1) shared by triangles with 2 and 3.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)]);
        let at = triangle_adjacency(&g);
        assert_eq!(at.get(0, 1), 2.0);
        assert_eq!(count_triangles(&g), 2);
    }
}

//! Edge-list text I/O.
//!
//! The harness persists generated graphs so experiment binaries can share
//! them; the format is the ubiquitous whitespace-separated edge list with
//! an optional third weight column and `#` comments.

use crate::graph::Graph;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors raised when parsing an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and content.
    Parse { line: usize, content: String },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "edge list I/O error: {e}"),
            EdgeListError::Parse { line, content } => {
                write!(f, "edge list parse error on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            EdgeListError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Writes `graph` as `u v w` lines (each undirected edge once, `u <= v`).
pub fn write_edge_list(graph: &Graph, w: impl Write) -> std::io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "# nodes {}", graph.num_nodes())?;
    for u in 0..graph.num_nodes() {
        let (idx, vals) = (graph.neighbors(u), graph.neighbor_weights(u));
        for (&v, &wt) in idx.iter().zip(vals) {
            if (u as u32) <= v {
                writeln!(out, "{u} {v} {wt}")?;
            }
        }
    }
    out.flush()
}

/// Reads an edge list produced by [`write_edge_list`] (or any `u v [w]`
/// file). The node count is the max endpoint + 1 unless a `# nodes N`
/// header raises it.
pub fn read_edge_list(r: impl Read) -> Result<Graph, EdgeListError> {
    let reader = BufReader::new(r);
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();
    let mut declared_nodes = 0usize;
    let mut max_node = 0u32;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() == Some("nodes") {
                if let Some(n) = parts.next().and_then(|t| t.parse::<usize>().ok()) {
                    declared_nodes = declared_nodes.max(n);
                }
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_err = || EdgeListError::Parse {
            line: i + 1,
            content: trimmed.to_string(),
        };
        let u: u32 = parts
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let v: u32 = parts
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let w: f32 = match parts.next() {
            Some(t) => t.parse().map_err(|_| parse_err())?,
            None => 1.0,
        };
        max_node = max_node.max(u).max(v);
        edges.push((u, v, w));
    }
    let n = declared_nodes.max(if edges.is_empty() {
        0
    } else {
        max_node as usize + 1
    });
    Ok(Graph::from_weighted_edges(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_preserves_structure() {
        let g = generators::erdos_renyi_gnm(40, 80, 11);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.adjacency(), g2.adjacency());
    }

    #[test]
    fn reads_headerless_lists() {
        let text = "0 1\n1 2 2.5\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbor_weights(2), &[2.5]);
    }

    #[test]
    fn header_raises_node_count() {
        let text = "# nodes 10\n0 1\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    fn parse_error_carries_line_number() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            EdgeListError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# hello\n\n0 1\n# trailing\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }
}

//! Sparse graph substrate for the Grain framework.
//!
//! Everything in the Grain paper operates on an undirected attributed graph
//! `G = (V, E)`; this crate supplies that substrate built from scratch:
//!
//! * [`csr::CsrMatrix`] — compressed sparse row matrix with `f32` weights,
//!   the storage format for adjacency and transition matrices,
//! * [`graph::Graph`] — an undirected graph facade over CSR adjacency,
//! * [`transition`] — the generalized transition matrices of Table 1
//!   (random-walk, symmetric, triangle-induced),
//! * [`triangle`] — per-edge triangle counting for the Triangle-IA kernel,
//! * [`generators`] — seeded random-graph models (Erdős–Rényi,
//!   Barabási–Albert, degree-corrected stochastic block model) used to
//!   synthesize the evaluation corpora,
//! * [`algo`] — BFS, connected components, PageRank (AGE's centrality arm),
//! * [`io`] — edge-list text round-trips.

pub mod algo;
pub mod builder;
pub mod csr;
pub mod generators;
pub mod graph;
pub mod io;
pub mod transition;
pub mod triangle;

pub use csr::CsrMatrix;
pub use graph::Graph;
pub use transition::{transition_matrix, TransitionKind};

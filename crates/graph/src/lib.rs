//! Sparse graph substrate for the Grain framework.
//!
//! Everything in the Grain paper operates on an undirected attributed graph
//! `G = (V, E)`; this crate supplies that substrate built from scratch:
//!
//! * [`csr::CsrMatrix`] — compressed sparse row matrix with `f32` weights,
//!   the storage format for adjacency and transition matrices,
//! * [`graph::Graph`] — an undirected graph facade over CSR adjacency,
//! * [`transition`] — the generalized transition matrices of Table 1
//!   (random-walk, symmetric, triangle-induced),
//! * [`triangle`] — per-edge triangle counting for the Triangle-IA kernel,
//! * [`generators`] — seeded random-graph models (Erdős–Rényi,
//!   Barabási–Albert, degree-corrected stochastic block model) used to
//!   synthesize the evaluation corpora,
//! * [`algo`] — BFS, connected components, PageRank (AGE's centrality arm),
//! * [`edit`] — validated structural edits (row-spliced edge
//!   insert/delete) and k-hop dirty-set expansion for live corpora,
//! * [`io`] — edge-list text round-trips.
//!
//! ```
//! use grain_graph::{generators, transition_matrix, TransitionKind};
//!
//! // A seeded G(n, m) graph: the substrate every pipeline stage reads.
//! let g = generators::erdos_renyi_gnm(100, 300, 7);
//! assert_eq!((g.num_nodes(), g.num_edges()), (100, 300));
//!
//! // The Table 1 random-walk transition matrix over Ã = A + I: every
//! // row is a probability distribution over the node's neighborhood.
//! let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
//! let (neighbors, weights) = t.row(0);
//! assert_eq!(neighbors.len(), g.degree(0) + 1); // + the self-loop
//! let mass: f32 = weights.iter().sum();
//! assert!((mass - 1.0).abs() < 1e-5);
//! ```

pub mod algo;
pub mod builder;
pub mod csr;
pub mod edit;
pub mod generators;
pub mod graph;
pub mod io;
pub mod transition;
pub mod triangle;

pub use csr::CsrMatrix;
pub use edit::{apply_edge_edits, k_hop_ball, EditError};
pub use graph::Graph;
pub use transition::{transition_matrix, transition_rows, TransitionKind};

//! Generalized transition matrices (Table 1 of the paper).
//!
//! The decoupled propagation of Eq. (6) runs `X^(k) = f(X^(k-1), T, X^(0))`
//! for a *generalized transition matrix* `T`:
//!
//! * `T_rw  = D̃^{-1} Ã` — random-walk (row-stochastic),
//! * `T_sym = D̃^{-1/2} Ã D̃^{-1/2}` — the GCN normalization,
//! * `T_tr  = D_T^{-1} A_T` — triangle-induced adjacency (SIGN),
//!
//! where `Ã = A + I` by default. Isolated nodes keep a pure self-loop so
//! every matrix stays well defined.

use crate::csr::CsrMatrix;
use crate::graph::Graph;
use crate::triangle;
use serde::{Deserialize, Serialize};

/// Which transition matrix to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransitionKind {
    /// Row-stochastic random walk `D̃^{-1} Ã`.
    RandomWalk,
    /// Symmetric GCN normalization `D̃^{-1/2} Ã D̃^{-1/2}`.
    Symmetric,
    /// Triangle-induced `D_T^{-1} A_T`.
    TriangleInduced,
}

impl TransitionKind {
    /// Human-readable name used by the harness output.
    pub fn name(self) -> &'static str {
        match self {
            TransitionKind::RandomWalk => "random-walk",
            TransitionKind::Symmetric => "symmetric",
            TransitionKind::TriangleInduced => "triangle-ia",
        }
    }
}

/// Builds the requested transition matrix.
///
/// `add_self_loops` selects `Ã = A + I` (the GNN convention) versus raw `A`;
/// the triangle variant always carries unit self-loops (see
/// [`triangle::triangle_adjacency`]).
pub fn transition_matrix(g: &Graph, kind: TransitionKind, add_self_loops: bool) -> CsrMatrix {
    match kind {
        TransitionKind::RandomWalk => {
            let a = base_adjacency(g, add_self_loops);
            row_normalize(a)
        }
        TransitionKind::Symmetric => {
            let mut a = base_adjacency(g, add_self_loops);
            let sums = a.row_sums();
            let inv_sqrt: Vec<f32> = sums
                .iter()
                .map(|&s| if s > 0.0 { 1.0 / s.sqrt() } else { 0.0 })
                .collect();
            a.scale_rows(&inv_sqrt);
            a.scale_cols(&inv_sqrt);
            a
        }
        TransitionKind::TriangleInduced => {
            let at = triangle::triangle_adjacency(g);
            row_normalize(at)
        }
    }
}

fn base_adjacency(g: &Graph, add_self_loops: bool) -> CsrMatrix {
    if add_self_loops {
        g.adjacency_with_self_loops()
    } else {
        g.adjacency().clone()
    }
}

/// Divides every row by its sum; zero rows stay zero.
pub fn row_normalize(mut m: CsrMatrix) -> CsrMatrix {
    let sums = m.row_sums();
    let inv: Vec<f32> = sums
        .iter()
        .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
        .collect();
    m.scale_rows(&inv);
    m
}

/// The rows of [`transition_matrix`] restricted to `rows` (strictly
/// ascending node ids), computed with the **exact float operations** of
/// the full build — same merged self-loop position, same left-fold row
/// sums, same reciprocal-then-multiply scaling. The streaming path
/// splices these into a stale transition via
/// [`CsrMatrix::with_replaced_rows`], turning an `O(nnz)` rebuild into a
/// memcpy plus `O(dirty)` row work while staying bit-identical to a cold
/// [`transition_matrix`] over the mutated graph.
///
/// # Panics
/// Panics for [`TransitionKind::TriangleInduced`] (triangle counts have
/// no row-local form — one edge edit can dirty every row) and on
/// out-of-range node ids.
pub fn transition_rows(
    g: &Graph,
    kind: TransitionKind,
    add_self_loops: bool,
    rows: &[u32],
) -> Vec<(usize, Vec<u32>, Vec<f32>)> {
    assert!(
        kind != TransitionKind::TriangleInduced,
        "triangle-induced transitions have no row-local form"
    );
    rows.iter()
        .map(|&r| {
            let r = r as usize;
            let (cols, mut vals) = looped_row(g, r, add_self_loops);
            match kind {
                TransitionKind::RandomWalk => {
                    // Mirrors `row_normalize`: left-fold sum, reciprocal,
                    // then in-place multiply.
                    let s: f32 = vals.iter().sum();
                    let inv = if s > 0.0 { 1.0 / s } else { 0.0 };
                    for v in &mut vals {
                        *v *= inv;
                    }
                }
                TransitionKind::Symmetric => {
                    // Mirrors scale_rows followed by scale_cols: two
                    // sequential multiplies, never a fused product.
                    let f_r = inv_sqrt_degree(g, r, add_self_loops);
                    for (v, &c) in vals.iter_mut().zip(cols.iter()) {
                        *v *= f_r;
                        *v *= inv_sqrt_degree(g, c as usize, add_self_loops);
                    }
                }
                TransitionKind::TriangleInduced => unreachable!(),
            }
            (r, cols, vals)
        })
        .collect()
}

/// Node `v`'s adjacency row with the unit self-loop merged at its sorted
/// position — row `v` of [`Graph::adjacency_with_self_loops`] without
/// materializing the matrix.
fn looped_row(g: &Graph, v: usize, add_self_loops: bool) -> (Vec<u32>, Vec<f32>) {
    let (cols, vals) = g.adjacency().row(v);
    if !add_self_loops {
        return (cols.to_vec(), vals.to_vec());
    }
    let pos = cols.partition_point(|&c| (c as usize) < v);
    let mut c2 = Vec::with_capacity(cols.len() + 1);
    let mut v2 = Vec::with_capacity(vals.len() + 1);
    c2.extend_from_slice(&cols[..pos]);
    v2.extend_from_slice(&vals[..pos]);
    c2.push(v as u32);
    v2.push(1.0);
    c2.extend_from_slice(&cols[pos..]);
    v2.extend_from_slice(&vals[pos..]);
    (c2, v2)
}

/// `D̃^{-1/2}` entry for node `v`: the same left-fold sum over the merged
/// row that `CsrMatrix::row_sums` performs on the looped matrix, then the
/// same `1.0 / s.sqrt()`.
fn inv_sqrt_degree(g: &Graph, v: usize, add_self_loops: bool) -> f32 {
    let (cols, vals) = g.adjacency().row(v);
    let s = if add_self_loops {
        let pos = cols.partition_point(|&c| (c as usize) < v);
        let mut s = 0.0f32;
        for &w in &vals[..pos] {
            s += w;
        }
        s += 1.0;
        for &w in &vals[pos..] {
            s += w;
        }
        s
    } else {
        vals.iter().sum()
    };
    if s > 0.0 {
        1.0 / s.sqrt()
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn random_walk_rows_are_stochastic() {
        let t = transition_matrix(&path3(), TransitionKind::RandomWalk, true);
        for s in t.row_sums() {
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Node 1 has neighbors {0, 1, 2} with self-loop: each prob 1/3.
        assert!((t.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn symmetric_matrix_is_symmetric() {
        let t = transition_matrix(&path3(), TransitionKind::Symmetric, true);
        assert!(t.is_symmetric(1e-6));
        // Known value: t[0][1] = 1/sqrt(d0~ * d1~) = 1/sqrt(2*3).
        assert!((t.get(0, 1) - 1.0 / (6.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn triangle_transition_rows_stochastic() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let t = transition_matrix(&g, TransitionKind::TriangleInduced, true);
        for s in t.row_sums() {
            assert!((s - 1.0).abs() < 1e-6, "row sum {s}");
        }
        // Pendant node 3 only has its self-loop.
        assert_eq!(t.get(3, 3), 1.0);
    }

    #[test]
    fn isolated_node_keeps_self_loop_walk() {
        let g = Graph::from_edges(2, &[]);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 1), 1.0);
    }

    #[test]
    fn no_self_loop_variant_omits_diagonal() {
        let t = transition_matrix(&path3(), TransitionKind::RandomWalk, false);
        assert_eq!(t.get(1, 1), 0.0);
        assert_eq!(t.get(1, 0), 0.5);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TransitionKind::RandomWalk.name(), "random-walk");
        assert_eq!(TransitionKind::Symmetric.name(), "symmetric");
        assert_eq!(TransitionKind::TriangleInduced.name(), "triangle-ia");
    }

    /// Deterministic scruffy graph: ring + LCG chords, some isolated tail
    /// nodes so zero-degree rows are exercised.
    fn scruffy(n: usize, seed: u64) -> Graph {
        let mut edges = Vec::new();
        for v in 0..n.saturating_sub(4) {
            edges.push((v as u32, ((v + 1) % (n - 4)) as u32));
        }
        let mut state = seed | 1;
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (state >> 33) as usize % n;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (state >> 33) as usize % n;
            if a != b {
                edges.push((a as u32, b as u32));
            }
        }
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn transition_rows_bit_match_full_build() {
        let g = scruffy(64, 7);
        let rows: Vec<u32> = vec![0, 3, 17, 40, 60, 61, 62, 63];
        for kind in [TransitionKind::RandomWalk, TransitionKind::Symmetric] {
            for loops in [true, false] {
                let full = transition_matrix(&g, kind, loops);
                for (r, cols, vals) in transition_rows(&g, kind, loops, &rows) {
                    let (fc, fv) = full.row(r);
                    assert_eq!(cols.as_slice(), fc, "{kind:?} loops={loops} row {r} cols");
                    assert_eq!(
                        vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        fv.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "{kind:?} loops={loops} row {r} values"
                    );
                }
            }
        }
    }

    #[test]
    fn spliced_rows_reproduce_cold_build_after_edit() {
        use crate::edit::{apply_edge_edits, k_hop_ball};

        let old = scruffy(48, 11);
        let (new_g, endpoints) = apply_edge_edits(&old, &[(2, 47, 1.0)], &[(0, 1)]).unwrap();
        for kind in [TransitionKind::RandomWalk, TransitionKind::Symmetric] {
            // Symmetric normalization couples a row to its neighbors'
            // degrees, so the dirty set is the 1-hop ball; random walk only
            // touches the edited rows themselves.
            let dirty = match kind {
                TransitionKind::Symmetric => k_hop_ball(&new_g, &endpoints, 1),
                _ => endpoints.clone(),
            };
            let stale = transition_matrix(&old, kind, true);
            let spliced = stale.with_replaced_rows(&transition_rows(&new_g, kind, true, &dirty));
            let cold = transition_matrix(&new_g, kind, true);
            assert_eq!(spliced, cold, "{kind:?} splice != cold rebuild");
        }
    }

    #[test]
    #[should_panic(expected = "no row-local form")]
    fn transition_rows_reject_triangle() {
        transition_rows(&path3(), TransitionKind::TriangleInduced, true, &[0]);
    }
}

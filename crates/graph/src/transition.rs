//! Generalized transition matrices (Table 1 of the paper).
//!
//! The decoupled propagation of Eq. (6) runs `X^(k) = f(X^(k-1), T, X^(0))`
//! for a *generalized transition matrix* `T`:
//!
//! * `T_rw  = D̃^{-1} Ã` — random-walk (row-stochastic),
//! * `T_sym = D̃^{-1/2} Ã D̃^{-1/2}` — the GCN normalization,
//! * `T_tr  = D_T^{-1} A_T` — triangle-induced adjacency (SIGN),
//!
//! where `Ã = A + I` by default. Isolated nodes keep a pure self-loop so
//! every matrix stays well defined.

use crate::csr::CsrMatrix;
use crate::graph::Graph;
use crate::triangle;
use serde::{Deserialize, Serialize};

/// Which transition matrix to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransitionKind {
    /// Row-stochastic random walk `D̃^{-1} Ã`.
    RandomWalk,
    /// Symmetric GCN normalization `D̃^{-1/2} Ã D̃^{-1/2}`.
    Symmetric,
    /// Triangle-induced `D_T^{-1} A_T`.
    TriangleInduced,
}

impl TransitionKind {
    /// Human-readable name used by the harness output.
    pub fn name(self) -> &'static str {
        match self {
            TransitionKind::RandomWalk => "random-walk",
            TransitionKind::Symmetric => "symmetric",
            TransitionKind::TriangleInduced => "triangle-ia",
        }
    }
}

/// Builds the requested transition matrix.
///
/// `add_self_loops` selects `Ã = A + I` (the GNN convention) versus raw `A`;
/// the triangle variant always carries unit self-loops (see
/// [`triangle::triangle_adjacency`]).
pub fn transition_matrix(g: &Graph, kind: TransitionKind, add_self_loops: bool) -> CsrMatrix {
    match kind {
        TransitionKind::RandomWalk => {
            let a = base_adjacency(g, add_self_loops);
            row_normalize(a)
        }
        TransitionKind::Symmetric => {
            let mut a = base_adjacency(g, add_self_loops);
            let sums = a.row_sums();
            let inv_sqrt: Vec<f32> = sums
                .iter()
                .map(|&s| if s > 0.0 { 1.0 / s.sqrt() } else { 0.0 })
                .collect();
            a.scale_rows(&inv_sqrt);
            a.scale_cols(&inv_sqrt);
            a
        }
        TransitionKind::TriangleInduced => {
            let at = triangle::triangle_adjacency(g);
            row_normalize(at)
        }
    }
}

fn base_adjacency(g: &Graph, add_self_loops: bool) -> CsrMatrix {
    if add_self_loops {
        g.adjacency_with_self_loops()
    } else {
        g.adjacency().clone()
    }
}

/// Divides every row by its sum; zero rows stay zero.
pub fn row_normalize(mut m: CsrMatrix) -> CsrMatrix {
    let sums = m.row_sums();
    let inv: Vec<f32> = sums
        .iter()
        .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
        .collect();
    m.scale_rows(&inv);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn random_walk_rows_are_stochastic() {
        let t = transition_matrix(&path3(), TransitionKind::RandomWalk, true);
        for s in t.row_sums() {
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Node 1 has neighbors {0, 1, 2} with self-loop: each prob 1/3.
        assert!((t.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn symmetric_matrix_is_symmetric() {
        let t = transition_matrix(&path3(), TransitionKind::Symmetric, true);
        assert!(t.is_symmetric(1e-6));
        // Known value: t[0][1] = 1/sqrt(d0~ * d1~) = 1/sqrt(2*3).
        assert!((t.get(0, 1) - 1.0 / (6.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn triangle_transition_rows_stochastic() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let t = transition_matrix(&g, TransitionKind::TriangleInduced, true);
        for s in t.row_sums() {
            assert!((s - 1.0).abs() < 1e-6, "row sum {s}");
        }
        // Pendant node 3 only has its self-loop.
        assert_eq!(t.get(3, 3), 1.0);
    }

    #[test]
    fn isolated_node_keeps_self_loop_walk() {
        let g = Graph::from_edges(2, &[]);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 1), 1.0);
    }

    #[test]
    fn no_self_loop_variant_omits_diagonal() {
        let t = transition_matrix(&path3(), TransitionKind::RandomWalk, false);
        assert_eq!(t.get(1, 1), 0.0);
        assert_eq!(t.get(1, 0), 0.5);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TransitionKind::RandomWalk.name(), "random-walk");
        assert_eq!(TransitionKind::Symmetric.name(), "symmetric");
        assert_eq!(TransitionKind::TriangleInduced.name(), "triangle-ia");
    }
}

//! Structural graph edits for live corpora.
//!
//! [`apply_edge_edits`] turns a validated batch of edge deletions and
//! insertions into a **new** [`Graph`] by splicing only the endpoint rows
//! of the adjacency CSR ([`crate::csr::CsrMatrix::with_replaced_rows`]), leaving
//! every untouched row byte-identical — the graph-layer half of the
//! incremental-maintenance contract: the spliced graph must equal a cold
//! [`Graph::from_weighted_edges`] build of the mutated edge list bit for
//! bit. [`k_hop_ball`] is the dirty-set expansion primitive: a k-layer
//! propagation model only perturbs rows within the k-hop neighborhood of
//! the touched endpoints, so artifact repair is output-proportional.
//!
//! Semantics are strict so silent corpus drift is impossible: deletes
//! apply before inserts (delete + reinsert of one edge in a single batch
//! is a weight update), deleting a missing edge or inserting an existing
//! one is a typed [`EditError`], and weights must be finite and positive.

use crate::graph::Graph;
use std::collections::BTreeMap;
use std::fmt;

/// Why an edit batch was rejected. The graph is never modified on error.
#[derive(Clone, Debug, PartialEq)]
pub enum EditError {
    /// An edit names a node outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Node count of the graph being edited.
        num_nodes: usize,
    },
    /// An insert names `u == v`; the adjacency never stores self-loops.
    SelfLoop {
        /// The node of the attempted self-loop.
        node: u32,
    },
    /// An insert names an edge that already exists (and is not deleted in
    /// the same batch).
    EdgeExists {
        /// Endpoint.
        u: u32,
        /// Endpoint.
        v: u32,
    },
    /// A delete names an edge that does not exist.
    EdgeMissing {
        /// Endpoint.
        u: u32,
        /// Endpoint.
        v: u32,
    },
    /// An insert carries a non-finite or non-positive weight.
    BadWeight {
        /// Endpoint.
        u: u32,
        /// Endpoint.
        v: u32,
        /// The rejected weight.
        weight: f32,
    },
    /// The same undirected edge appears twice in the inserts, or twice in
    /// the deletes.
    DuplicateEdit {
        /// Endpoint.
        u: u32,
        /// Endpoint.
        v: u32,
    },
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (graph has {num_nodes} nodes)")
            }
            EditError::SelfLoop { node } => {
                write!(f, "self-loop insert on node {node} (adjacency stores none)")
            }
            EditError::EdgeExists { u, v } => write!(f, "edge ({u}, {v}) already exists"),
            EditError::EdgeMissing { u, v } => write!(f, "edge ({u}, {v}) does not exist"),
            EditError::BadWeight { u, v, weight } => {
                write!(
                    f,
                    "edge ({u}, {v}) has invalid weight {weight} (must be finite and > 0)"
                )
            }
            EditError::DuplicateEdit { u, v } => {
                write!(f, "edge ({u}, {v}) appears twice in one edit batch")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// The unordered key of an undirected edge.
fn undirected(u: u32, v: u32) -> (u32, u32) {
    (u.min(v), u.max(v))
}

/// Applies a batch of edge deletions and insertions, returning the edited
/// graph and the sorted, deduplicated list of **touched endpoints** (the
/// seed set for dirty-set expansion).
///
/// Deletes are applied before inserts, so a delete + insert of the same
/// edge in one batch is a weight update. Validation is total before any
/// row is built: on `Err` the input graph is untouched and no allocation
/// beyond the edit maps has happened.
///
/// The returned graph is **bit-identical** to a cold
/// [`Graph::from_weighted_edges`] build of the mutated edge list
/// (property-tested), because a spliced row carries the same strictly
/// ascending column order a cold CSR build produces and untouched rows
/// are memcpy'd verbatim.
pub fn apply_edge_edits(
    graph: &Graph,
    inserts: &[(u32, u32, f32)],
    deletes: &[(u32, u32)],
) -> Result<(Graph, Vec<u32>), EditError> {
    let n = graph.num_nodes();
    let in_range = |node: u32| -> Result<(), EditError> {
        if (node as usize) < n {
            Ok(())
        } else {
            Err(EditError::NodeOutOfRange { node, num_nodes: n })
        }
    };
    // Per-row edit plan: row -> (cols to delete, cols to insert with
    // weights). BTreeMaps keep every traversal deterministic.
    let mut delete_cols: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    let mut insert_cols: BTreeMap<u32, Vec<(u32, f32)>> = BTreeMap::new();
    let mut seen_deletes: Vec<(u32, u32)> = Vec::with_capacity(deletes.len());
    for &(u, v) in deletes {
        in_range(u)?;
        in_range(v)?;
        let key = undirected(u, v);
        if seen_deletes.contains(&key) {
            return Err(EditError::DuplicateEdit { u, v });
        }
        seen_deletes.push(key);
        if !graph.has_edge(u as usize, v) {
            return Err(EditError::EdgeMissing { u, v });
        }
        delete_cols.entry(u).or_default().push(v);
        delete_cols.entry(v).or_default().push(u);
    }
    let mut seen_inserts: Vec<(u32, u32)> = Vec::with_capacity(inserts.len());
    for &(u, v, w) in inserts {
        in_range(u)?;
        in_range(v)?;
        if u == v {
            return Err(EditError::SelfLoop { node: u });
        }
        if !(w.is_finite() && w > 0.0) {
            return Err(EditError::BadWeight { u, v, weight: w });
        }
        let key = undirected(u, v);
        if seen_inserts.contains(&key) {
            return Err(EditError::DuplicateEdit { u, v });
        }
        seen_inserts.push(key);
        // Exists after deletes: an edge present in the graph is insertable
        // only if this batch also deletes it (weight update).
        if graph.has_edge(u as usize, v) && !seen_deletes.contains(&key) {
            return Err(EditError::EdgeExists { u, v });
        }
        insert_cols.entry(u).or_default().push((v, w));
        insert_cols.entry(v).or_default().push((u, w));
    }
    // Touched endpoint set, sorted unique.
    let mut endpoints: Vec<u32> = delete_cols
        .keys()
        .chain(insert_cols.keys())
        .copied()
        .collect();
    endpoints.sort_unstable();
    endpoints.dedup();
    if endpoints.is_empty() {
        return Ok((graph.clone(), endpoints));
    }
    // Build each touched row by a sorted merge of (old row minus deleted
    // columns) with the inserted columns.
    let adj = graph.adjacency();
    let mut replacements: Vec<(usize, Vec<u32>, Vec<f32>)> = Vec::with_capacity(endpoints.len());
    for &r in &endpoints {
        let mut dels = delete_cols.remove(&r).unwrap_or_default();
        dels.sort_unstable();
        let mut ins = insert_cols.remove(&r).unwrap_or_default();
        ins.sort_unstable_by_key(|&(c, _)| c);
        let (old_cols, old_vals) = adj.row(r as usize);
        let mut cols = Vec::with_capacity(old_cols.len() + ins.len());
        let mut vals = Vec::with_capacity(old_cols.len() + ins.len());
        let mut ii = 0usize;
        for (i, &c) in old_cols.iter().enumerate() {
            while ii < ins.len() && ins[ii].0 < c {
                cols.push(ins[ii].0);
                vals.push(ins[ii].1);
                ii += 1;
            }
            if dels.binary_search(&c).is_ok() {
                // Deleted; a same-batch reinsert of this column lands from
                // `ins` (sorted merge handles either side of `c`).
                if ii < ins.len() && ins[ii].0 == c {
                    cols.push(ins[ii].0);
                    vals.push(ins[ii].1);
                    ii += 1;
                }
                continue;
            }
            debug_assert!(ii >= ins.len() || ins[ii].0 != c, "insert over live edge");
            cols.push(c);
            vals.push(old_vals[i]);
        }
        while ii < ins.len() {
            cols.push(ins[ii].0);
            vals.push(ins[ii].1);
            ii += 1;
        }
        replacements.push((r as usize, cols, vals));
    }
    let edited = adj.with_replaced_rows(&replacements);
    Ok((Graph::from_adjacency_trusted(edited), endpoints))
}

/// The closed k-hop ball around `seeds`: every node reachable from a seed
/// in at most `k` edge hops, seeds included, sorted ascending.
///
/// This is the dirty-set expansion of incremental maintenance: with a
/// k-step propagation kernel, `X^(k)` row `r` depends only on nodes
/// within `k` hops of `r`, so rows outside the ball of the touched
/// endpoints are untouched by an edit.
pub fn k_hop_ball(graph: &Graph, seeds: &[u32], k: usize) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut in_ball = vec![false; n];
    let mut frontier: Vec<u32> = Vec::new();
    for &s in seeds {
        assert!((s as usize) < n, "seed {s} out of range ({n} nodes)");
        if !in_ball[s as usize] {
            in_ball[s as usize] = true;
            frontier.push(s);
        }
    }
    let mut next: Vec<u32> = Vec::new();
    for _ in 0..k {
        if frontier.is_empty() {
            break;
        }
        next.clear();
        for &v in &frontier {
            for &u in graph.neighbors(v as usize) {
                if !in_ball[u as usize] {
                    in_ball[u as usize] = true;
                    next.push(u);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    (0..n as u32).filter(|&v| in_ball[v as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn path(n: usize) -> Graph {
        Graph::from_edges(
            n,
            &(0..n as u32 - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn insert_and_delete_match_cold_rebuild() {
        let g = Graph::from_weighted_edges(5, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5)]);
        let (edited, endpoints) = apply_edge_edits(&g, &[(0, 4, 0.5)], &[(1, 2)]).unwrap();
        let cold = Graph::from_weighted_edges(5, [(0, 1, 1.0), (2, 3, 1.5), (0, 4, 0.5)]);
        assert_eq!(edited.adjacency(), cold.adjacency());
        assert_eq!(endpoints, vec![0, 1, 2, 4]);
    }

    #[test]
    fn delete_then_reinsert_is_a_weight_update() {
        let g = Graph::from_weighted_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]);
        let (edited, _) = apply_edge_edits(&g, &[(0, 1, 5.0)], &[(0, 1)]).unwrap();
        let cold = Graph::from_weighted_edges(3, [(0, 1, 5.0), (1, 2, 1.0)]);
        assert_eq!(edited.adjacency(), cold.adjacency());
    }

    #[test]
    fn random_edits_match_cold_rebuild() {
        let g = generators::erdos_renyi_gnm(60, 180, 7);
        // Delete the lexicographically first 5 edges, insert 5 fresh ones.
        let mut existing: Vec<(u32, u32, f32)> = Vec::new();
        for u in 0..60usize {
            for (&v, &w) in g.neighbors(u).iter().zip(g.neighbor_weights(u)) {
                if (u as u32) < v {
                    existing.push((u as u32, v, w));
                }
            }
        }
        let deletes: Vec<(u32, u32)> = existing[..5].iter().map(|&(u, v, _)| (u, v)).collect();
        let mut inserts = Vec::new();
        let mut u = 0u32;
        while inserts.len() < 5 {
            let v = (u * 17 + 31) % 60;
            if u != v
                && !g.has_edge(u as usize, v)
                && !inserts
                    .iter()
                    .any(|&(a, b, _)| undirected(a, b) == undirected(u, v))
            {
                inserts.push((u, v, 0.25 + inserts.len() as f32));
            }
            u += 1;
        }
        let (edited, endpoints) = apply_edge_edits(&g, &inserts, &deletes).unwrap();
        let mut survivors: Vec<(u32, u32, f32)> = existing[5..].to_vec();
        survivors.extend(inserts.iter().copied());
        let cold = Graph::from_weighted_edges(60, survivors);
        assert_eq!(edited.adjacency(), cold.adjacency());
        assert!(endpoints.windows(2).all(|w| w[0] < w[1]), "sorted unique");
    }

    #[test]
    fn strict_validation_errors() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        assert_eq!(
            apply_edge_edits(&g, &[(0, 1, 1.0)], &[]).unwrap_err(),
            EditError::EdgeExists { u: 0, v: 1 }
        );
        assert_eq!(
            apply_edge_edits(&g, &[], &[(1, 2)]).unwrap_err(),
            EditError::EdgeMissing { u: 1, v: 2 }
        );
        assert_eq!(
            apply_edge_edits(&g, &[(2, 2, 1.0)], &[]).unwrap_err(),
            EditError::SelfLoop { node: 2 }
        );
        assert_eq!(
            apply_edge_edits(&g, &[(0, 9, 1.0)], &[]).unwrap_err(),
            EditError::NodeOutOfRange {
                node: 9,
                num_nodes: 3
            }
        );
        assert_eq!(
            apply_edge_edits(&g, &[(0, 2, -1.0)], &[]).unwrap_err(),
            EditError::BadWeight {
                u: 0,
                v: 2,
                weight: -1.0
            }
        );
        assert_eq!(
            apply_edge_edits(&g, &[(0, 2, 1.0), (2, 0, 1.0)], &[]).unwrap_err(),
            EditError::DuplicateEdit { u: 2, v: 0 }
        );
        assert_eq!(
            apply_edge_edits(&g, &[], &[(0, 1), (1, 0)]).unwrap_err(),
            EditError::DuplicateEdit { u: 1, v: 0 }
        );
    }

    #[test]
    fn empty_batch_is_identity() {
        let g = path(4);
        let (edited, endpoints) = apply_edge_edits(&g, &[], &[]).unwrap();
        assert_eq!(edited.adjacency(), g.adjacency());
        assert!(endpoints.is_empty());
    }

    #[test]
    fn ball_expands_hop_by_hop() {
        let g = path(6); // 0-1-2-3-4-5
        assert_eq!(k_hop_ball(&g, &[2], 0), vec![2]);
        assert_eq!(k_hop_ball(&g, &[2], 1), vec![1, 2, 3]);
        assert_eq!(k_hop_ball(&g, &[2], 2), vec![0, 1, 2, 3, 4]);
        assert_eq!(k_hop_ball(&g, &[0, 5], 1), vec![0, 1, 4, 5]);
        assert_eq!(k_hop_ball(&g, &[], 3), Vec::<u32>::new());
        // Saturation: a huge k covers the component and stops early.
        assert_eq!(k_hop_ball(&g, &[0], 100).len(), 6);
    }
}

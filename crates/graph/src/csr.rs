//! Compressed sparse row matrix with `f32` weights.
//!
//! Column indices are stored as `u32` (graphs here stay well under 4 B
//! nodes), halving index memory versus `usize` — relevant for the
//! papers100M-style scaling experiments. Rows keep their column indices
//! sorted, which the triangle-counting intersection relies on.

use grain_linalg::par::{self, SendPtr};
use grain_linalg::DenseMatrix;
use serde::{Deserialize, Serialize};

/// Sparse row-major matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Empty matrix with the given shape.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds from (row, col, value) triplets.
    ///
    /// Triplets may arrive unsorted and may contain duplicates; duplicate
    /// entries are summed. Zero values are kept only if `keep_zeros` — the
    /// adjacency path drops them.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(u32, u32, f32)],
        keep_zeros: bool,
    ) -> Self {
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            assert!(
                (r as usize) < rows,
                "triplet row {r} out of bounds ({rows} rows)"
            );
            counts[r as usize + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut order = counts.clone();
        let mut col_idx = vec![0u32; triplets.len()];
        let mut values = vec![0f32; triplets.len()];
        for &(r, c, v) in triplets {
            assert!(
                (c as usize) < cols,
                "triplet col {c} out of bounds ({cols} cols)"
            );
            let slot = order[r as usize];
            order[r as usize] += 1;
            col_idx[slot] = c;
            values[slot] = v;
        }
        // Sort within each row and merge duplicates.
        let mut out_row_ptr = Vec::with_capacity(rows + 1);
        let mut out_cols = Vec::with_capacity(triplets.len());
        let mut out_vals = Vec::with_capacity(triplets.len());
        out_row_ptr.push(0);
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for r in 0..rows {
            scratch.clear();
            for i in counts[r]..counts[r + 1] {
                scratch.push((col_idx[i], values[i]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                if v != 0.0 || keep_zeros {
                    out_cols.push(c);
                    out_vals.push(v);
                }
                i = j;
            }
            out_row_ptr.push(out_cols.len());
        }
        Self {
            rows,
            cols,
            row_ptr: out_row_ptr,
            col_idx: out_cols,
            values: out_vals,
        }
    }

    /// Builds directly from CSR arrays (rows must be sorted by column).
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent or any row is unsorted.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length mismatch");
        assert_eq!(col_idx.len(), values.len(), "col/value length mismatch");
        assert_eq!(
            *row_ptr.last().unwrap_or(&0),
            col_idx.len(),
            "row_ptr tail mismatch"
        );
        for r in 0..rows {
            let s = row_ptr[r];
            let e = row_ptr[r + 1];
            assert!(
                s <= e && e <= col_idx.len(),
                "row_ptr not monotone at row {r}"
            );
            for w in col_idx[s..e].windows(2) {
                assert!(w[0] < w[1], "row {r} has unsorted or duplicate columns");
            }
            if let Some(&last) = col_idx[s..e].last() {
                assert!((last as usize) < cols, "column out of bounds in row {r}");
            }
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices of row `r` (sorted ascending).
    #[inline]
    pub fn row_indices(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r`, parallel to [`CsrMatrix::row_indices`].
    #[inline]
    pub fn row_values(&self, r: usize) -> &[f32] {
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// `(indices, values)` pair for row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        (self.row_indices(r), self.row_values(r))
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Looks up entry `(r, c)` by binary search.
    pub fn get(&self, r: usize, c: u32) -> f32 {
        let idx = self.row_indices(r);
        match idx.binary_search(&c) {
            Ok(pos) => self.row_values(r)[pos],
            Err(_) => 0.0,
        }
    }

    /// Sum of values per row.
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|r| self.row_values(r).iter().sum())
            .collect()
    }

    /// Multiplies each row `r` by `factors[r]` in place.
    pub fn scale_rows(&mut self, factors: &[f32]) {
        assert_eq!(
            factors.len(),
            self.rows,
            "scale_rows: factor count mismatch"
        );
        for (r, &f) in factors.iter().enumerate() {
            for v in &mut self.values[self.row_ptr[r]..self.row_ptr[r + 1]] {
                *v *= f;
            }
        }
    }

    /// Multiplies each column `c` by `factors[c]` in place.
    pub fn scale_cols(&mut self, factors: &[f32]) {
        assert_eq!(
            factors.len(),
            self.cols,
            "scale_cols: factor count mismatch"
        );
        for (c, v) in self.col_idx.iter().zip(self.values.iter_mut()) {
            *v *= factors[*c as usize];
        }
    }

    /// Out-of-place transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            for (i, &c) in self.row_indices(r).iter().enumerate() {
                let slot = cursor[c as usize];
                cursor[c as usize] += 1;
                col_idx[slot] = r as u32;
                values[slot] = self.row_values(r)[i];
            }
        }
        row_ptr.rotate_right(0); // counts already is the final row_ptr prefix
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Sparse × dense product `self * rhs`, parallel over output rows.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn spmm(&self, rhs: &DenseMatrix) -> DenseMatrix {
        self.spmm_par(rhs, 0)
    }

    /// [`CsrMatrix::spmm`] over `threads` workers (`0` = auto). Each
    /// output row is accumulated by exactly one worker in the same
    /// left-to-right entry order, so the product is bit-identical at any
    /// thread count.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn spmm_par(&self, rhs: &DenseMatrix, threads: usize) -> DenseMatrix {
        assert_eq!(
            self.cols,
            rhs.rows(),
            "spmm: inner dimensions differ ({}x{} * {}x{})",
            self.rows,
            self.cols,
            rhs.rows(),
            rhs.cols()
        );
        let n = rhs.cols();
        let mut out = DenseMatrix::zeros(self.rows, n);
        let ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
        par::for_each_chunk_with(threads, self.rows, 64, |start, end| {
            // Rebind so the closure captures the SendPtr wrapper, not its
            // raw-pointer field (edition-2021 disjoint capture).
            #[allow(clippy::redundant_locals)]
            let ptr = ptr;
            for r in start..end {
                // SAFETY: output rows are disjoint per thread chunk.
                let out_row = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(r * n), n) };
                let (idx, vals) = self.row(r);
                for (&c, &w) in idx.iter().zip(vals) {
                    if w == 0.0 {
                        continue;
                    }
                    for (o, &x) in out_row.iter_mut().zip(rhs.row(c as usize)) {
                        *o += w * x;
                    }
                }
            }
        });
        out
    }

    /// Sparse × dense-vector product `self * x`.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols, x.len(), "spmv: dimension mismatch");
        par::par_map(self.rows, 256, |r| {
            let (idx, vals) = self.row(r);
            idx.iter().zip(vals).map(|(&c, &w)| w * x[c as usize]).sum()
        })
    }

    /// Iterator over `(row, col, value)` of all stored entries.
    pub fn iter_triplets(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            self.row_indices(r)
                .iter()
                .zip(self.row_values(r))
                .map(move |(&c, &v)| (r as u32, c, v))
        })
    }

    /// Out-of-place row splice: a copy of `self` with the listed rows
    /// replaced wholesale and every other row memcpy'd over unchanged —
    /// the structural primitive behind incremental artifact repair, where
    /// a graph delta dirties a handful of rows and the clean majority
    /// must carry over bit-identically.
    ///
    /// `replacements` must be sorted by strictly ascending row index;
    /// each replacement row's columns must be strictly ascending and in
    /// bounds (the invariants [`CsrMatrix::from_raw`] checks, asserted
    /// here per replacement row only, so the splice stays O(nnz) with no
    /// full revalidation).
    ///
    /// # Panics
    /// Panics on unsorted/duplicate replacement rows, out-of-range row
    /// indices, unsorted replacement columns, or column indices `>=
    /// self.cols()`.
    pub fn with_replaced_rows(&self, replacements: &[(usize, Vec<u32>, Vec<f32>)]) -> CsrMatrix {
        for w in replacements.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "with_replaced_rows: replacement rows must be strictly ascending"
            );
        }
        let replaced_nnz: usize = replacements.iter().map(|(_, c, _)| c.len()).sum();
        let old_replaced_nnz: usize = replacements.iter().map(|&(r, _, _)| self.row_nnz(r)).sum();
        let new_nnz = self.nnz() - old_replaced_nnz + replaced_nnz;
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(new_nnz);
        let mut values = Vec::with_capacity(new_nnz);
        row_ptr.push(0);
        let mut next = 0usize; // cursor into `replacements`
        let mut clean_from = 0usize; // first row of the pending clean run
        let flush_clean =
            |from: usize, upto: usize, col_idx: &mut Vec<u32>, values: &mut Vec<f32>| {
                // Copy rows [from, upto) in one contiguous memcpy.
                let s = self.row_ptr[from];
                let e = self.row_ptr[upto];
                col_idx.extend_from_slice(&self.col_idx[s..e]);
                values.extend_from_slice(&self.values[s..e]);
            };
        for r in 0..self.rows {
            if next < replacements.len() && replacements[next].0 == r {
                flush_clean(clean_from, r, &mut col_idx, &mut values);
                let (_, cols, vals) = &replacements[next];
                assert_eq!(
                    cols.len(),
                    vals.len(),
                    "with_replaced_rows: col/value length mismatch in row {r}"
                );
                for w in cols.windows(2) {
                    assert!(
                        w[0] < w[1],
                        "with_replaced_rows: row {r} has unsorted or duplicate columns"
                    );
                }
                if let Some(&last) = cols.last() {
                    assert!(
                        (last as usize) < self.cols,
                        "with_replaced_rows: column out of bounds in row {r}"
                    );
                }
                col_idx.extend_from_slice(cols);
                values.extend_from_slice(vals);
                clean_from = r + 1;
                next += 1;
            }
            // Clean rows are flushed lazily in runs; just record the
            // boundary once the row's entries (old or new) are in.
            if next > 0 && replacements[next - 1].0 == r {
                row_ptr.push(col_idx.len());
            } else {
                row_ptr.push(col_idx.len() + (self.row_ptr[r + 1] - self.row_ptr[clean_from]));
            }
        }
        assert_eq!(
            next,
            replacements.len(),
            "with_replaced_rows: replacement row index out of range"
        );
        flush_clean(clean_from, self.rows, &mut col_idx, &mut values);
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// True if the matrix equals its transpose (within `tol` per entry).
    pub fn is_symmetric(&self, tol: f32) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            return false;
        }
        self.values
            .iter()
            .zip(&t.values)
            .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [[0, 1, 2],
        //  [3, 0, 0],
        //  [0, 4, 0]]
        CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 1, 1.), (0, 2, 2.), (1, 0, 3.), (2, 1, 4.)],
            false,
        )
    }

    #[test]
    fn from_triplets_sorts_and_sums_duplicates() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 1.), (0, 0, 5.), (0, 2, 2.)], false);
        assert_eq!(m.row_indices(0), &[0, 2]);
        assert_eq!(m.row_values(0), &[5., 3.]);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn zero_sum_duplicates_dropped_unless_kept() {
        let t = [(0u32, 1u32, 1.0f32), (0, 1, -1.0)];
        let dropped = CsrMatrix::from_triplets(1, 2, &t, false);
        assert_eq!(dropped.nnz(), 0);
        let kept = CsrMatrix::from_triplets(1, 2, &t, true);
        assert_eq!(kept.nnz(), 1);
        assert_eq!(kept.row_values(0), &[0.0]);
    }

    #[test]
    fn get_by_binary_search() {
        let m = small();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = small();
        let t = m.transpose();
        assert_eq!(t.get(1, 0), 1.0);
        assert_eq!(t.get(0, 1), 3.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = small();
        let x = DenseMatrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let y = m.spmm(&x);
        // Row 0: 1*[3,4] + 2*[5,6] = [13, 16]
        assert_eq!(y.row(0), &[13., 16.]);
        assert_eq!(y.row(1), &[3., 6.]);
        assert_eq!(y.row(2), &[12., 16.]);
    }

    #[test]
    fn spmm_is_thread_count_invariant() {
        let triplets: Vec<(u32, u32, f32)> = (0..600u32)
            .map(|i| (i % 120, (i * 7) % 120, ((i % 13) as f32) * 0.3 - 1.0))
            .collect();
        let m = CsrMatrix::from_triplets(120, 120, &triplets, false);
        let x = DenseMatrix::from_vec(
            120,
            5,
            (0..600).map(|i| ((i * 31 % 17) as f32) * 0.1).collect(),
        );
        let serial = m.spmm_par(&x, 1);
        for threads in [2usize, 3, 8] {
            assert_eq!(m.spmm_par(&x, threads), serial, "{threads} threads");
        }
    }

    #[test]
    fn spmv_matches_spmm_single_column() {
        let m = small();
        let x = vec![1., 2., 3.];
        let y = m.spmv(&x);
        assert_eq!(y, vec![8., 3., 8.]);
    }

    #[test]
    fn row_sums_and_scaling() {
        let mut m = small();
        assert_eq!(m.row_sums(), vec![3., 3., 4.]);
        m.scale_rows(&[1., 0.5, 0.25]);
        assert_eq!(m.row_sums(), vec![3., 1.5, 1.]);
        m.scale_cols(&[0., 1., 1.]);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn symmetric_detection() {
        let sym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.), (1, 0, 2.)], false);
        assert!(sym.is_symmetric(0.0));
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.)], false);
        assert!(!asym.is_symmetric(0.0));
    }

    #[test]
    fn iter_triplets_yields_all_entries() {
        let m = small();
        let ts: Vec<_> = m.iter_triplets().collect();
        assert_eq!(ts.len(), 4);
        assert!(ts.contains(&(2, 1, 4.0)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplet_bounds_checked() {
        let _ = CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.)], false);
    }

    #[test]
    fn from_raw_validates() {
        let m = CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 2.0]);
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "unsorted")]
    fn from_raw_rejects_unsorted_rows() {
        let _ = CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]);
    }

    #[test]
    fn row_splice_matches_rebuild() {
        let m = small();
        // Replace row 0 (shrink) and row 2 (grow), keep row 1.
        let spliced = m.with_replaced_rows(&[
            (0, vec![1], vec![9.0]),
            (2, vec![0, 1, 2], vec![1.0, 2.0, 3.0]),
        ]);
        let rebuilt = CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 1, 9.), (1, 0, 3.), (2, 0, 1.), (2, 1, 2.), (2, 2, 3.)],
            false,
        );
        assert_eq!(spliced, rebuilt);
        // The original is untouched.
        assert_eq!(m, small());
    }

    #[test]
    fn row_splice_handles_empty_and_full_replacement_sets() {
        let m = small();
        assert_eq!(m.with_replaced_rows(&[]), m);
        let cleared = m.with_replaced_rows(&[
            (0, vec![], vec![]),
            (1, vec![], vec![]),
            (2, vec![], vec![]),
        ]);
        assert_eq!(cleared.nnz(), 0);
        assert_eq!(cleared.rows(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn row_splice_rejects_unsorted_replacements() {
        let m = small();
        let _ = m.with_replaced_rows(&[(2, vec![], vec![]), (0, vec![], vec![])]);
    }

    #[test]
    #[should_panic(expected = "unsorted or duplicate columns")]
    fn row_splice_rejects_unsorted_replacement_columns() {
        let m = small();
        let _ = m.with_replaced_rows(&[(1, vec![2, 0], vec![1.0, 2.0])]);
    }
}

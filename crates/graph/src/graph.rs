//! Undirected graph facade over CSR adjacency.

use crate::csr::CsrMatrix;
use serde::{Deserialize, Serialize};

/// An undirected, optionally weighted graph.
///
/// The adjacency matrix is stored symmetrically (every edge appears in both
/// endpoint rows). Self-loops are not stored here; kernels that need the
/// `A + I` form of GCN (Eq. 4) add them on the fly via
/// [`Graph::adjacency_with_self_loops`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    adj: CsrMatrix,
}

impl Graph {
    /// Builds from an undirected edge list.
    ///
    /// Duplicate edges collapse to weight-summed single edges; self-loops are
    /// dropped; `(u, v)` and `(v, u)` describe the same edge and may both be
    /// present.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        Self::from_weighted_edges(n, edges.iter().map(|&(u, v)| (u, v, 1.0)))
    }

    /// Builds from a weighted undirected edge list.
    pub fn from_weighted_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32, f32)>) -> Self {
        let mut triplets = Vec::new();
        for (u, v, w) in edges {
            if u == v {
                continue;
            }
            triplets.push((u, v, w));
            triplets.push((v, u, w));
        }
        // from_triplets sums duplicates; a doubled (u,v) input therefore
        // yields a doubled weight, matching multigraph semantics collapsed
        // onto a weighted simple graph.
        Self {
            adj: CsrMatrix::from_triplets(n, n, &triplets, false),
        }
    }

    /// Wraps an existing symmetric adjacency matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square or not symmetric.
    pub fn from_adjacency(adj: CsrMatrix) -> Self {
        assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
        assert!(adj.is_symmetric(1e-6), "adjacency must be symmetric");
        Self { adj }
    }

    /// Wraps an adjacency matrix the caller guarantees to be square and
    /// symmetric — the hot-path variant of [`Graph::from_adjacency`] for
    /// structural edits that preserve symmetry by construction (both
    /// endpoint rows are always spliced together), where the O(nnz log)
    /// symmetry re-check would dominate an otherwise output-proportional
    /// update. Symmetry is still checked in debug builds.
    pub(crate) fn from_adjacency_trusted(adj: CsrMatrix) -> Self {
        debug_assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
        debug_assert!(adj.is_symmetric(1e-6), "adjacency must be symmetric");
        Self { adj }
    }

    /// Node count.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.rows()
    }

    /// Undirected edge count (stored entries / 2).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.nnz() / 2
    }

    /// Neighbor ids of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        self.adj.row_indices(v)
    }

    /// Edge weights parallel to [`Graph::neighbors`].
    #[inline]
    pub fn neighbor_weights(&self, v: usize) -> &[f32] {
        self.adj.row_values(v)
    }

    /// Unweighted degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj.row_nnz(v)
    }

    /// Unweighted degrees of all nodes.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_nodes()).map(|v| self.degree(v)).collect()
    }

    /// Weighted degree (row sum) of every node.
    pub fn weighted_degrees(&self) -> Vec<f32> {
        self.adj.row_sums()
    }

    /// True if `u` and `v` share an edge.
    pub fn has_edge(&self, u: usize, v: u32) -> bool {
        self.adj.row_indices(u).binary_search(&v).is_ok()
    }

    /// Borrow of the raw adjacency matrix.
    #[inline]
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adj
    }

    /// The `Ã = A + I` matrix used by GCN-style propagation.
    pub fn adjacency_with_self_loops(&self) -> CsrMatrix {
        let n = self.num_nodes();
        let mut triplets: Vec<(u32, u32, f32)> = self.adj.iter_triplets().collect();
        triplets.reserve(n);
        for v in 0..n {
            triplets.push((v as u32, v as u32, 1.0));
        }
        CsrMatrix::from_triplets(n, n, &triplets, false)
    }

    /// Mean unweighted degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.adj.nnz() as f64 / self.num_nodes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_symmetric_and_deduped() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 3)]);
        assert_eq!(g.num_nodes(), 4);
        // (0,1)+(1,0) merge into one edge of weight 2; self-loop dropped.
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(3, 3));
        assert_eq!(g.neighbor_weights(0), &[2.0]);
    }

    #[test]
    fn degrees_count_neighbors() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degrees(), vec![3, 1, 1, 1]);
        assert_eq!(g.mean_degree(), 1.5);
    }

    #[test]
    fn self_loop_matrix_adds_identity() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let a = g.adjacency_with_self_loops();
        for v in 0..3 {
            assert_eq!(a.get(v, v as u32), 1.0);
        }
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    fn from_adjacency_accepts_symmetric() {
        let adj = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.), (1, 0, 1.)], false);
        let g = Graph::from_adjacency(adj);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_adjacency_rejects_asymmetric() {
        let adj = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.)], false);
        let _ = Graph::from_adjacency(adj);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }
}

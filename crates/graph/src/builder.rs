//! Incremental graph builder.
//!
//! Generators and loaders accumulate edges one at a time; the builder
//! dedupes/symmetrizes once at the end instead of paying per-insert costs.

use crate::graph::Graph;

/// Accumulates undirected edges and produces a [`Graph`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32, f32)>,
}

impl GraphBuilder {
    /// Builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Self {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Adds an undirected unit-weight edge. Self-loops are ignored.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        self.add_weighted_edge(u, v, 1.0);
    }

    /// Adds an undirected weighted edge. Self-loops are ignored.
    pub fn add_weighted_edge(&mut self, u: u32, v: u32, w: f32) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        if u == v {
            return;
        }
        self.edges.push((u, v, w));
    }

    /// True if `(u, v)` was already inserted (linear scan; use only in tests
    /// or small builders — generators dedupe via hashing instead).
    pub fn contains_edge(&self, u: u32, v: u32) -> bool {
        self.edges
            .iter()
            .any(|&(a, b, _)| (a == u && b == v) || (a == v && b == u))
    }

    /// Number of inserted (pre-dedup) edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges were inserted.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalizes into a [`Graph`] (duplicates collapse, weights sum).
    pub fn build(self) -> Graph {
        Graph::from_weighted_edges(self.n, self.edges)
    }

    /// Finalizes, collapsing duplicate edges to weight 1 instead of summing.
    ///
    /// Random generators can emit the same pair twice; simple-graph
    /// semantics want one unit edge in that case.
    pub fn build_simple(mut self) -> Graph {
        for e in &mut self.edges {
            if e.0 > e.1 {
                std::mem::swap(&mut e.0, &mut e.1);
            }
        }
        self.edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        self.edges.dedup_by_key(|&mut (u, v, _)| (u, v));
        for e in &mut self.edges {
            e.2 = 1.0;
        }
        Graph::from_weighted_edges(self.n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sums_duplicate_weights() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbor_weights(0), &[2.0]);
    }

    #[test]
    fn build_simple_collapses_to_unit_weight() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(1, 2);
        let g = b.build_simple();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbor_weights(0), &[1.0]);
    }

    #[test]
    fn self_loops_ignored() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1);
        assert!(b.is_empty());
    }

    #[test]
    fn contains_edge_checks_both_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 0);
        assert!(b.contains_edge(0, 2));
        assert!(!b.contains_edge(0, 1));
    }
}

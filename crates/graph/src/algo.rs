//! Classic graph algorithms used across the framework.
//!
//! * [`pagerank`] feeds the AGE baseline's centrality arm and the Sec-3.4
//!   walk-mass candidate pruning,
//! * [`connected_components`] / [`bfs_distances`] support dataset sanity
//!   checks and tests,
//! * [`k_hop_neighborhood`] bounds influence-row supports.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Damped PageRank by power iteration on the undirected graph.
///
/// Returns scores summing to 1. Dangling (isolated) nodes redistribute
/// uniformly. Converges when the L1 change drops below `tol` or after
/// `max_iter` rounds.
pub fn pagerank(g: &Graph, damping: f64, max_iter: usize, tol: f64) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    let degrees = g.degrees();
    for _ in 0..max_iter {
        next.fill(0.0);
        let mut dangling = 0.0;
        for v in 0..n {
            if degrees[v] == 0 {
                dangling += rank[v];
                continue;
            }
            let share = rank[v] / degrees[v] as f64;
            for &u in g.neighbors(v) {
                next[u as usize] += share;
            }
        }
        let base = (1.0 - damping) * uniform + damping * dangling * uniform;
        let mut delta = 0.0;
        for v in 0..n {
            let new = base + damping * next[v];
            delta += (new - rank[v]).abs();
            rank[v] = new;
        }
        if delta < tol {
            break;
        }
    }
    rank
}

/// Connected-component id per node (ids are 0-based, ordered by discovery).
pub fn connected_components(g: &Graph) -> Vec<u32> {
    let n = g.num_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut next_id = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        comp[start] = next_id;
        queue.push_back(start as u32);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v as usize) {
                if comp[u as usize] == u32::MAX {
                    comp[u as usize] = next_id;
                    queue.push_back(u);
                }
            }
        }
        next_id += 1;
    }
    comp
}

/// Number of connected components.
pub fn num_components(g: &Graph) -> usize {
    connected_components(g)
        .into_iter()
        .max()
        .map_or(0, |m| m as usize + 1)
}

/// BFS hop distances from `source`; unreachable nodes get `u32::MAX`.
pub fn bfs_distances(g: &Graph, source: usize) -> Vec<u32> {
    let n = g.num_nodes();
    let mut dist = vec![u32::MAX; n];
    dist[source] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source as u32);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &u in g.neighbors(v as usize) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// All nodes within `k` hops of `source` (including `source`), sorted.
pub fn k_hop_neighborhood(g: &Graph, source: usize, k: usize) -> Vec<u32> {
    let mut seen = std::collections::HashSet::new();
    seen.insert(source as u32);
    let mut frontier = vec![source as u32];
    for _ in 0..k {
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in g.neighbors(v as usize) {
                if seen.insert(u) {
                    next.push(u);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    let mut out: Vec<u32> = seen.into_iter().collect();
    out.sort_unstable();
    out
}

/// Degree histogram capped at `max_bucket` (last bucket aggregates the tail).
pub fn degree_histogram(g: &Graph, max_bucket: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_bucket + 1];
    for d in g.degrees() {
        hist[d.min(max_bucket)] += 1;
    }
    hist
}

/// Local clustering coefficient of `v`: closed wedges / possible wedges.
pub fn local_clustering_coefficient(g: &Graph, v: usize) -> f64 {
    let neighbors = g.neighbors(v);
    let d = neighbors.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in neighbors.iter().enumerate() {
        for &b in &neighbors[i + 1..] {
            if g.has_edge(a as usize, b) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Mean local clustering coefficient over all nodes.
pub fn average_clustering_coefficient(g: &Graph) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    (0..n)
        .map(|v| local_clustering_coefficient(g, v))
        .sum::<f64>()
        / n as f64
}

/// Induced subgraph on `nodes` (sorted, deduplicated internally).
///
/// Returns the subgraph plus the mapping `new_id -> old_id`; edges between
/// selected nodes survive with their weights.
pub fn induced_subgraph(g: &Graph, nodes: &[u32]) -> (Graph, Vec<u32>) {
    let mut keep: Vec<u32> = nodes.to_vec();
    keep.sort_unstable();
    keep.dedup();
    let mut old_to_new = vec![u32::MAX; g.num_nodes()];
    for (new, &old) in keep.iter().enumerate() {
        assert!((old as usize) < g.num_nodes(), "node {old} out of range");
        old_to_new[old as usize] = new as u32;
    }
    let mut edges = Vec::new();
    for (new_u, &old_u) in keep.iter().enumerate() {
        let weights = g.neighbor_weights(old_u as usize);
        for (&old_v, &w) in g.neighbors(old_u as usize).iter().zip(weights) {
            let new_v = old_to_new[old_v as usize];
            if new_v != u32::MAX && (new_u as u32) < new_v {
                edges.push((new_u as u32, new_v, w));
            }
        }
    }
    (Graph::from_weighted_edges(keep.len(), edges), keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs() {
        let star = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let pr = pagerank(&star, 0.85, 100, 1e-10);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(pr[0] > pr[1] * 2.0, "hub should dominate: {pr:?}");
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let cyc = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pr = pagerank(&cyc, 0.85, 100, 1e-12);
        for &p in &pr {
            assert!((p - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn pagerank_handles_isolated_nodes() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let pr = pagerank(&g, 0.85, 100, 1e-10);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(pr[2] > 0.0);
    }

    #[test]
    fn components_split_and_count() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let comp = connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_eq!(num_components(&g), 3);
    }

    #[test]
    fn bfs_distances_on_path() {
        let d = bfs_distances(&path4(), 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn k_hop_neighborhood_grows_with_k() {
        let g = path4();
        assert_eq!(k_hop_neighborhood(&g, 0, 0), vec![0]);
        assert_eq!(k_hop_neighborhood(&g, 0, 1), vec![0, 1]);
        assert_eq!(k_hop_neighborhood(&g, 0, 2), vec![0, 1, 2]);
        assert_eq!(k_hop_neighborhood(&g, 0, 9), vec![0, 1, 2, 3]);
    }

    #[test]
    fn degree_histogram_caps_tail() {
        let star = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let hist = degree_histogram(&star, 2);
        assert_eq!(hist, vec![0, 4, 1]); // four leaves, hub capped into bucket 2
    }

    #[test]
    fn clustering_coefficient_of_triangle_and_star() {
        let tri = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(local_clustering_coefficient(&tri, 0), 1.0);
        assert_eq!(average_clustering_coefficient(&tri), 1.0);
        let star = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(local_clustering_coefficient(&star, 0), 0.0);
        assert_eq!(local_clustering_coefficient(&star, 1), 0.0); // degree 1
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        // Square 0-1-2-3 plus diagonal 0-2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let (sub, mapping) = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(mapping, vec![0, 1, 2]);
        assert_eq!(sub.num_nodes(), 3);
        // Edges (0,1), (1,2), (0,2) survive; (2,3) and (3,0) drop.
        assert_eq!(sub.num_edges(), 3);
    }

    #[test]
    fn induced_subgraph_relabels_nodes() {
        let g = Graph::from_edges(5, &[(1, 4), (4, 2)]);
        let (sub, mapping) = induced_subgraph(&g, &[4, 1]);
        assert_eq!(mapping, vec![1, 4]);
        assert_eq!(sub.num_edges(), 1);
        assert!(sub.has_edge(0, 1)); // old (1,4) -> new (0,1)
    }

    #[test]
    fn induced_subgraph_dedupes_input() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let (sub, mapping) = induced_subgraph(&g, &[1, 1, 0]);
        assert_eq!(mapping.len(), 2);
        assert_eq!(sub.num_edges(), 1);
    }
}

//! Seeded random-graph generators.
//!
//! The Grain evaluation corpora are citation and social networks that are
//! unavailable here, so the reproduction synthesizes structurally similar
//! graphs (see DESIGN.md). Three generator families cover the needs:
//!
//! * [`erdos_renyi_gnm`] / [`erdos_renyi_gnp`] — baseline null models for
//!   tests and property checks,
//! * [`barabasi_albert`] — power-law degree graphs for influence-pruning
//!   tests,
//! * [`degree_corrected_sbm`] — the workhorse: homophilous communities with
//!   heterogeneous degrees, the structural skeleton of citation/social
//!   networks.
//!
//! All generators are deterministic functions of their seed.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct random edges.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Graph {
    assert!(
        n >= 2 || m == 0,
        "G(n,m) needs at least two nodes for edges"
    );
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    while chosen.len() < m {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build_simple()
}

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`. Quadratic in `n`; intended for tests.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.random::<f64>() < p {
                b.add_edge(u, v);
            }
        }
    }
    b.build_simple()
}

/// Barabási–Albert preferential attachment: each new node attaches `m`
/// edges to existing nodes with probability proportional to their degree.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "BA needs m >= 1");
    assert!(n > m, "BA needs n > m");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m);
    // `targets` holds one entry per edge endpoint; uniform sampling from it
    // realizes degree-proportional attachment.
    let mut targets: Vec<u32> = (0..m as u32).collect();
    for new in m..n {
        let new = new as u32;
        // Small Vec keeps insertion order deterministic (HashSet iteration
        // order would leak RandomState into the generated graph).
        let mut picked: Vec<u32> = Vec::with_capacity(m);
        while picked.len() < m {
            let t = targets[rng.random_range(0..targets.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            b.add_edge(new, t);
            targets.push(new);
            targets.push(t);
        }
    }
    b.build_simple()
}

/// Configuration for the degree-corrected stochastic block model.
#[derive(Clone, Debug)]
pub struct SbmConfig {
    /// Nodes per community.
    pub block_sizes: Vec<usize>,
    /// Expected intra-community degree per node.
    pub mean_degree_in: f64,
    /// Expected inter-community degree per node.
    pub mean_degree_out: f64,
    /// Pareto shape of the per-node degree propensity (larger = more
    /// homogeneous; `0.0` disables degree correction).
    pub degree_exponent: f64,
}

impl SbmConfig {
    /// Total node count across the blocks.
    pub fn num_nodes(&self) -> usize {
        self.block_sizes.iter().sum()
    }
}

/// Degree-corrected planted-partition model.
///
/// Returns the graph and the community label of every node. Intra-community
/// edges are sampled endpoint-wise proportional to per-node propensities;
/// inter-community edges connect uniformly-propensity-weighted endpoints of
/// distinct blocks. Expected degrees match the config in aggregate.
///
/// Node ids are randomly permuted so that id order carries no information
/// about community membership (downstream tie-breaking by node id must not
/// leak class structure).
pub fn degree_corrected_sbm(cfg: &SbmConfig, seed: u64) -> (Graph, Vec<u32>) {
    let n = cfg.num_nodes();
    assert!(n > 1, "SBM needs at least two nodes");
    assert!(!cfg.block_sizes.is_empty(), "SBM needs at least one block");
    let mut rng = StdRng::seed_from_u64(seed);
    // Community labels in block order, then scrambled through a random
    // id permutation: position i in block order becomes node perm[i].
    let mut perm: Vec<u32> = (0..n as u32).collect();
    {
        use rand::seq::SliceRandom;
        perm.shuffle(&mut rng);
    }
    let mut labels = vec![0u32; n];
    {
        let mut pos = 0usize;
        for (c, &sz) in cfg.block_sizes.iter().enumerate() {
            for _ in 0..sz {
                labels[perm[pos] as usize] = c as u32;
                pos += 1;
            }
        }
    }
    // Degree propensities: Pareto(1, alpha) when alpha > 0, else uniform 1.
    let prop: Vec<f64> = (0..n)
        .map(|_| {
            if cfg.degree_exponent > 0.0 {
                let u: f64 = rng.random::<f64>().max(1e-12);
                u.powf(-1.0 / cfg.degree_exponent).min(50.0)
            } else {
                1.0
            }
        })
        .collect();
    // Per-block cumulative propensity tables for weighted endpoint draws.
    let mut block_nodes: Vec<Vec<u32>> = vec![Vec::new(); cfg.block_sizes.len()];
    for (v, &c) in labels.iter().enumerate() {
        block_nodes[c as usize].push(v as u32);
    }
    let block_tables: Vec<CumTable> = block_nodes
        .iter()
        .map(|nodes| CumTable::new(nodes, &prop))
        .collect();
    let all_nodes: Vec<u32> = (0..n as u32).collect();
    let global_table = CumTable::new(&all_nodes, &prop);

    let mut b = GraphBuilder::with_capacity(
        n,
        ((cfg.mean_degree_in + cfg.mean_degree_out) * n as f64 / 2.0) as usize + 16,
    );
    // Intra-community edges.
    for (bi, nodes) in block_nodes.iter().enumerate() {
        if nodes.len() < 2 {
            continue;
        }
        let m_in = (cfg.mean_degree_in * nodes.len() as f64 / 2.0).round() as usize;
        let table = &block_tables[bi];
        for _ in 0..m_in {
            let u = table.sample(&mut rng);
            let v = table.sample(&mut rng);
            if u != v {
                b.add_edge(u, v);
            }
        }
    }
    // Inter-community edges.
    let m_out = (cfg.mean_degree_out * n as f64 / 2.0).round() as usize;
    if cfg.block_sizes.len() > 1 {
        let mut placed = 0;
        let mut attempts = 0;
        while placed < m_out && attempts < m_out * 20 {
            attempts += 1;
            let u = global_table.sample(&mut rng);
            let v = global_table.sample(&mut rng);
            if u != v && labels[u as usize] != labels[v as usize] {
                b.add_edge(u, v);
                placed += 1;
            }
        }
    }
    (b.build_simple(), labels)
}

/// Cumulative-weight table for O(log n) weighted sampling without
/// replacement bookkeeping.
struct CumTable {
    nodes: Vec<u32>,
    cum: Vec<f64>,
    total: f64,
}

impl CumTable {
    fn new(nodes: &[u32], weights: &[f64]) -> Self {
        let mut cum = Vec::with_capacity(nodes.len());
        let mut acc = 0.0;
        for &v in nodes {
            acc += weights[v as usize];
            cum.push(acc);
        }
        Self {
            nodes: nodes.to_vec(),
            cum,
            total: acc,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> u32 {
        debug_assert!(!self.nodes.is_empty());
        let target = rng.random::<f64>() * self.total;
        let pos = self.cum.partition_point(|&c| c < target);
        self.nodes[pos.min(self.nodes.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = erdos_renyi_gnm(50, 100, 1);
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 100);
    }

    #[test]
    fn gnm_clamps_to_complete_graph() {
        let g = erdos_renyi_gnm(4, 1000, 2);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let g = erdos_renyi_gnp(100, 0.1, 3);
        let expect = 0.1 * (100.0 * 99.0 / 2.0);
        let got = g.num_edges() as f64;
        assert!(
            (got - expect).abs() < expect * 0.35,
            "got {got}, expected ~{expect}"
        );
    }

    #[test]
    fn ba_every_new_node_has_degree_at_least_m() {
        let g = barabasi_albert(200, 3, 4);
        for v in 3..200 {
            assert!(g.degree(v) >= 3, "node {v} degree {}", g.degree(v));
        }
    }

    #[test]
    fn ba_produces_hubs() {
        let g = barabasi_albert(500, 2, 5);
        let max_deg = g.degrees().into_iter().max().unwrap();
        assert!(max_deg > 20, "expected hub formation, max degree {max_deg}");
    }

    #[test]
    fn sbm_is_homophilous() {
        let cfg = SbmConfig {
            block_sizes: vec![150, 150, 150],
            mean_degree_in: 8.0,
            mean_degree_out: 1.0,
            degree_exponent: 0.0,
        };
        let (g, labels) = degree_corrected_sbm(&cfg, 6);
        assert_eq!(g.num_nodes(), 450);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for u in 0..g.num_nodes() {
            for &v in g.neighbors(u) {
                if labels[u] == labels[v as usize] {
                    intra += 1;
                } else {
                    inter += 1;
                }
            }
        }
        assert!(intra > 4 * inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn sbm_mean_degree_close_to_config() {
        let cfg = SbmConfig {
            block_sizes: vec![300, 300],
            mean_degree_in: 6.0,
            mean_degree_out: 2.0,
            degree_exponent: 0.0,
        };
        let (g, _) = degree_corrected_sbm(&cfg, 7);
        let mean = g.mean_degree();
        // Dedup of duplicate samples shaves a little off the target.
        assert!(mean > 5.5 && mean < 8.5, "mean degree {mean}");
    }

    #[test]
    fn sbm_degree_correction_creates_skew() {
        let base = SbmConfig {
            block_sizes: vec![400],
            mean_degree_in: 10.0,
            mean_degree_out: 0.0,
            degree_exponent: 0.0,
        };
        let skewed = SbmConfig {
            degree_exponent: 1.5,
            ..base.clone()
        };
        let (g0, _) = degree_corrected_sbm(&base, 8);
        let (g1, _) = degree_corrected_sbm(&skewed, 8);
        let max0 = g0.degrees().into_iter().max().unwrap();
        let max1 = g1.degrees().into_iter().max().unwrap();
        assert!(max1 > max0, "skewed max {max1} <= uniform max {max0}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = erdos_renyi_gnm(60, 120, 42);
        let b = erdos_renyi_gnm(60, 120, 42);
        assert_eq!(a.adjacency(), b.adjacency());
        let c = barabasi_albert(60, 2, 42);
        let d = barabasi_albert(60, 2, 42);
        assert_eq!(c.adjacency(), d.adjacency());
    }
}

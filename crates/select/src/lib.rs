//! Node-selection framework: Grain adapters plus every baseline of the
//! paper's evaluation (§4.1).
//!
//! * [`context::SelectionContext`] — one dataset + seed + cached smoothed
//!   embedding, shared by all selectors,
//! * [`traits::NodeSelector`] — the common interface (oracle-free methods
//!   ignore labels; learning-based ones retrain a model every round),
//! * baselines: [`random`], [`degree`], [`kcenter`] (K-Center-Greedy of
//!   Sener & Savarese), [`age`] (Cai et al.), [`anrmab`] (Gao et al.,
//!   EXP3 bandit over the AGE arms),
//! * [`coreset`] — max-entropy and forgetting-events core-set criteria
//!   (§2.1), which assume a fully labeled pool,
//! * [`grain_adapters`] — Grain (ball-D), Grain (NN-D) and the Table 3
//!   ablations behind the same trait,
//! * [`models`] — the downstream-model factory used both inside
//!   learning-based selectors and by the evaluation harness.
//!
//! ```
//! use grain_select::random::RandomSelector;
//! use grain_select::{NodeSelector, SelectionContext};
//!
//! let dataset = grain_data::synthetic::papers_like(300, 11);
//! let ctx = SelectionContext::new(&dataset, 7);
//!
//! // Every baseline answers through the one trait, so the harness can
//! // line Grain up against it without special cases.
//! let mut selector = RandomSelector::new(7);
//! let picked = selector.select(&ctx, 10);
//! assert_eq!(picked.len(), 10);
//! assert!(picked.iter().all(|v| dataset.split.train.contains(v)));
//! ```

pub mod age;
pub mod anrmab;
pub mod context;
pub mod coreset;
pub mod degree;
pub mod featprop;
pub mod grain_adapters;
pub mod kcenter;
pub mod models;
pub mod random;
pub mod traits;

pub use context::SelectionContext;
pub use models::ModelKind;
pub use traits::NodeSelector;

/// Convenience: every active-learning method of Figure 4 / Table 2, in the
/// paper's presentation order.
pub fn standard_lineup(seed: u64) -> Vec<Box<dyn NodeSelector>> {
    vec![
        Box::new(random::RandomSelector::new(seed)),
        Box::new(degree::DegreeSelector::new()),
        Box::new(age::AgeSelector::new(ModelKind::default(), seed)),
        Box::new(anrmab::AnrmabSelector::new(ModelKind::default(), seed)),
        Box::new(kcenter::KCenterGreedySelector::new(seed)),
        Box::new(grain_adapters::GrainBallSelector::with_defaults()),
        Box::new(grain_adapters::GrainNnSelector::with_defaults()),
    ]
}

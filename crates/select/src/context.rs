//! Shared selection context.

use grain_data::Dataset;
use grain_linalg::DenseMatrix;
use grain_prop::{propagate, Kernel};

/// One dataset + seed + cached propagated embedding.
///
/// All selectors see the same context; *oracle-free* methods (Grain,
/// Random, Degree, KCG) never read `dataset.labels`, while learning-based
/// methods (AGE, ANRMAB) query them only for nodes they have already
/// "sent to the oracle" — mirroring the paper's protocol where oracle
/// labels are assumed correct (A.4).
pub struct SelectionContext<'a> {
    /// The dataset under selection.
    pub dataset: &'a Dataset,
    /// Seed for any stochastic selector decisions.
    pub seed: u64,
    /// Cached 2-step random-walk smoothed features (the representation AGE
    /// density and KCG distances operate on, per FeatProp/AGE practice).
    smoothed: DenseMatrix,
}

impl<'a> SelectionContext<'a> {
    /// Builds the context, propagating features once.
    pub fn new(dataset: &'a Dataset, seed: u64) -> Self {
        let smoothed = propagate(
            &dataset.graph,
            Kernel::RandomWalk { k: 2 },
            &dataset.features,
        );
        Self {
            dataset,
            seed,
            smoothed,
        }
    }

    /// The candidate pool (the train partition).
    pub fn candidates(&self) -> &[u32] {
        &self.dataset.split.train
    }

    /// The cached 2-step smoothed embedding.
    pub fn smoothed(&self) -> &DenseMatrix {
        &self.smoothed
    }

    /// Oracle access: the ground-truth label of a node the selector has
    /// decided to query. Kept explicit so call sites are auditable.
    pub fn oracle_label(&self, node: u32) -> u32 {
        self.dataset.labels[node as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_data::synthetic::papers_like;

    #[test]
    fn context_exposes_pool_and_embedding() {
        let ds = papers_like(400, 1);
        let ctx = SelectionContext::new(&ds, 7);
        assert_eq!(ctx.candidates(), ds.split.train.as_slice());
        assert_eq!(ctx.smoothed().shape(), (400, ds.feature_dim()));
        assert_eq!(ctx.oracle_label(0), ds.labels[0]);
    }
}

//! Shared selection context.
//!
//! One dataset + seed + the *shared* smoothed embedding every selector
//! distances on. The context no longer propagates features privately:
//! `X^(k)` comes from a [`SelectionEngine`]'s propagation cache — either
//! an engine the context builds itself ([`SelectionContext::new`]) or a
//! pooled engine handed down from a
//! [`grain_core::service::GrainService`]
//! ([`SelectionContext::from_engine`]). Either way, Grain and every
//! baseline read the identical `X^(k)` artifact from one store.

use grain_core::{GrainConfig, SelectionEngine};
use grain_data::Dataset;
use grain_graph::Graph;
use grain_linalg::DenseMatrix;
use std::cell::{RefCell, RefMut};
use std::sync::Arc;

/// One dataset + seed + shared smoothed embedding + a warm engine.
///
/// All selectors see the same context; *oracle-free* methods (Grain,
/// Random, Degree, KCG) never read `dataset.labels`, while learning-based
/// methods (AGE, ANRMAB) query them only for nodes they have already
/// "sent to the oracle" — mirroring the paper's protocol where oracle
/// labels are assumed correct (A.4).
pub struct SelectionContext<'a> {
    /// The dataset under selection.
    pub dataset: &'a Dataset,
    /// Seed for any stochastic selector decisions.
    pub seed: u64,
    /// `X^(k)` under the context engine's kernel, shared with the engine's
    /// propagation cache (the representation AGE density and KCG distances
    /// operate on, per FeatProp/AGE practice).
    smoothed: Arc<DenseMatrix>,
    /// The warm engine backing this context. Grain adapters select through
    /// it; its artifact caches are the context's artifact store.
    engine: RefCell<SelectionEngine>,
}

impl<'a> SelectionContext<'a> {
    /// Builds the context with its own engine over the dataset (corpus is
    /// cloned into shared handles once; `X^(k)` is propagated once, in the
    /// engine's cache).
    ///
    /// # Panics
    /// Panics if `dataset.features` does not have one row per node.
    pub fn new(dataset: &'a Dataset, seed: u64) -> Self {
        let engine = SelectionEngine::over(
            GrainConfig::default(),
            dataset.graph.clone(),
            dataset.features.clone(),
        )
        .expect("dataset features must match its graph");
        Self::over_engine(dataset, seed, engine)
    }

    /// Wraps an engine the caller built (e.g. over preexisting `Arc`
    /// handles); the context owns it and draws `X^(k)` from its cache.
    pub fn over_engine(dataset: &'a Dataset, seed: u64, mut engine: SelectionEngine) -> Self {
        assert_eq!(
            engine.graph().num_nodes(),
            dataset.num_nodes(),
            "engine corpus must match the dataset"
        );
        let smoothed = engine.propagated();
        Self {
            dataset,
            seed,
            smoothed,
            engine: RefCell::new(engine),
        }
    }

    /// Context over a *pooled* engine (checked out of a
    /// [`grain_core::service::GrainService`] for the duration of this
    /// call): the smoothed embedding is the pooled engine's `X^(k)`
    /// artifact — the same allocation, no copy — so baselines running
    /// under this context compare bit-identically against Grain requests
    /// the service answers from that engine. The context's own engine
    /// shares the corpus handles and is seeded with the pooled `X^(k)`,
    /// so plain `select`/`select_sweep` calls routed through it never
    /// re-propagate (deeper artifacts — influence rows, the activation
    /// index — are still built privately on first Grain use; hand the
    /// pooled engine to
    /// [`crate::traits::NodeSelector::select_sweep_with`] to share those
    /// too).
    pub fn from_engine(dataset: &'a Dataset, seed: u64, engine: &mut SelectionEngine) -> Self {
        assert_eq!(
            engine.graph().num_nodes(),
            dataset.num_nodes(),
            "engine corpus must match the dataset"
        );
        let smoothed = engine.propagated();
        let mut own =
            SelectionEngine::over(*engine.config(), engine.graph_arc(), engine.features_arc())
                .expect("source engine config was validated");
        own.seed_propagated(Arc::clone(&smoothed));
        Self {
            dataset,
            seed,
            smoothed,
            engine: RefCell::new(own),
        }
    }

    /// The candidate pool (the train partition).
    pub fn candidates(&self) -> &[u32] {
        &self.dataset.split.train
    }

    /// The shared smoothed embedding.
    pub fn smoothed(&self) -> &DenseMatrix {
        &self.smoothed
    }

    /// Shared handle to the smoothed embedding (the engine cache's
    /// allocation).
    pub fn smoothed_arc(&self) -> Arc<DenseMatrix> {
        Arc::clone(&self.smoothed)
    }

    /// Shared handle to the context's graph.
    pub fn graph_arc(&self) -> Arc<Graph> {
        self.engine.borrow().graph_arc()
    }

    /// Shared handle to the context's raw feature matrix.
    pub fn features_arc(&self) -> Arc<DenseMatrix> {
        self.engine.borrow().features_arc()
    }

    /// Mutable access to the context's engine (Grain adapters select
    /// through it; every selector in a lineup shares its artifact caches).
    ///
    /// # Panics
    /// Panics if the engine is already borrowed — don't call this from
    /// inside [`crate::traits::NodeSelector::select_sweep_with`], which
    /// already holds an engine.
    pub fn engine(&self) -> RefMut<'_, SelectionEngine> {
        self.engine.borrow_mut()
    }

    /// Oracle access: the ground-truth label of a node the selector has
    /// decided to query. Kept explicit so call sites are auditable.
    pub fn oracle_label(&self, node: u32) -> u32 {
        self.dataset.labels[node as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_data::synthetic::papers_like;

    #[test]
    fn context_exposes_pool_and_embedding() {
        let ds = papers_like(400, 1);
        let ctx = SelectionContext::new(&ds, 7);
        assert_eq!(ctx.candidates(), ds.split.train.as_slice());
        assert_eq!(ctx.smoothed().shape(), (400, ds.feature_dim()));
        assert_eq!(ctx.oracle_label(0), ds.labels[0]);
    }

    #[test]
    fn smoothed_is_the_engine_cache_artifact() {
        // The ROADMAP open item: the context must not propagate privately.
        let ds = papers_like(300, 2);
        let ctx = SelectionContext::new(&ds, 1);
        let engine_view = ctx.engine().propagated();
        assert!(
            Arc::ptr_eq(&ctx.smoothed_arc(), &engine_view),
            "context smoothing must be the engine's X^(k) allocation"
        );
    }

    #[test]
    fn from_engine_shares_the_pooled_artifact() {
        let ds = papers_like(250, 3);
        let mut pooled = SelectionEngine::over(
            GrainConfig::default(),
            ds.graph.clone(),
            ds.features.clone(),
        )
        .unwrap();
        let pooled_view = pooled.propagated();
        let ctx = SelectionContext::from_engine(&ds, 4, &mut pooled);
        assert!(
            Arc::ptr_eq(&ctx.smoothed_arc(), &pooled_view),
            "baselines must read the pooled engine's X^(k), not a copy"
        );
        // And the context's own engine shares the corpus handles.
        assert!(Arc::ptr_eq(&ctx.graph_arc(), &pooled.graph_arc()));
        assert!(Arc::ptr_eq(&ctx.features_arc(), &pooled.features_arc()));
        // The context engine is seeded with the pooled X^(k): routing a
        // select through it re-propagates nothing and shares the pooled
        // allocation.
        let shadow_view = ctx.engine().propagated();
        assert!(Arc::ptr_eq(&shadow_view, &pooled_view));
        assert_eq!(ctx.engine().stats().propagation_builds, 0);
    }

    #[test]
    fn smoothed_matches_direct_propagation() {
        // Value-level check: the engine path computes the same X^(k) the
        // old private `propagate` call produced.
        let ds = papers_like(200, 5);
        let ctx = SelectionContext::new(&ds, 1);
        let direct = grain_prop::propagate(
            &ds.graph,
            grain_prop::Kernel::RandomWalk { k: 2 },
            &ds.features,
        );
        assert_eq!(ctx.smoothed(), &direct);
    }
}

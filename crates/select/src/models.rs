//! Downstream-model factory.
//!
//! Both the learning-based selectors (which retrain a model each round)
//! and the evaluation harness (which trains a model on the final selected
//! set) need to instantiate models by kind; this enum centralizes that.
//! The paper trains a 2-layer GCN everywhere except ogbn-papers100M,
//! where it switches to SGC for memory reasons (§4.3) — the same
//! escape hatch this factory provides.

use grain_data::Dataset;
use grain_gnn::appnp::AppnpModel;
use grain_gnn::gcn::GcnModel;
use grain_gnn::mvgrl::MvgrlSimModel;
use grain_gnn::sgc::SgcModel;
use grain_gnn::Model;
use serde::{Deserialize, Serialize};

/// Which downstream model to build.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Coupled 2-layer GCN (Eq. 4).
    Gcn {
        /// Hidden width.
        hidden: usize,
    },
    /// SGC with `k`-step smoothing.
    Sgc {
        /// Smoothing depth.
        k: usize,
    },
    /// APPNP with `k` PPR iterations at teleport `alpha`.
    Appnp {
        /// Hidden width.
        hidden: usize,
        /// PPR iterations.
        k: usize,
        /// Teleport probability.
        alpha: f32,
    },
    /// MVGRL-sim (two-view frozen embedding + linear head).
    MvgrlSim {
        /// View depth.
        k: usize,
        /// PPR teleport for the diffusion view.
        alpha: f32,
    },
}

impl Default for ModelKind {
    /// The paper's default evaluation model: 2-layer GCN. Hidden width 64
    /// (scaled from 128 for the lower-dimensional synthetic features).
    fn default() -> Self {
        ModelKind::Gcn { hidden: 64 }
    }
}

impl ModelKind {
    /// Instantiates the model bound to `dataset`.
    pub fn build(&self, dataset: &Dataset, seed: u64) -> Box<dyn Model> {
        match *self {
            ModelKind::Gcn { hidden } => Box::new(GcnModel::new(
                &dataset.graph,
                &dataset.features,
                dataset.num_classes,
                hidden,
                seed,
            )),
            ModelKind::Sgc { k } => Box::new(SgcModel::new(
                &dataset.graph,
                &dataset.features,
                dataset.num_classes,
                k,
                seed,
            )),
            ModelKind::Appnp { hidden, k, alpha } => Box::new(AppnpModel::new(
                &dataset.graph,
                &dataset.features,
                dataset.num_classes,
                hidden,
                k,
                alpha,
                seed,
            )),
            ModelKind::MvgrlSim { k, alpha } => Box::new(MvgrlSimModel::new(
                &dataset.graph,
                &dataset.features,
                dataset.num_classes,
                k,
                alpha,
                seed,
            )),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Gcn { .. } => "gcn",
            ModelKind::Sgc { .. } => "sgc",
            ModelKind::Appnp { .. } => "appnp",
            ModelKind::MvgrlSim { .. } => "mvgrl-sim",
        }
    }

    /// The Table 4 lineup (SGC, APPNP, GCN, MVGRL).
    pub fn table4_lineup() -> Vec<ModelKind> {
        vec![
            ModelKind::Sgc { k: 2 },
            ModelKind::Appnp {
                hidden: 64,
                k: 5,
                alpha: 0.1,
            },
            ModelKind::Gcn { hidden: 64 },
            ModelKind::MvgrlSim { k: 2, alpha: 0.1 },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_data::synthetic::papers_like;
    use grain_gnn::TrainConfig;

    #[test]
    fn factory_builds_all_kinds() {
        let ds = papers_like(300, 1);
        for kind in ModelKind::table4_lineup() {
            let model = kind.build(&ds, 3);
            let p = model.predict();
            assert_eq!(p.shape(), (300, ds.num_classes), "kind {}", kind.name());
        }
    }

    #[test]
    fn built_models_train() {
        let ds = papers_like(200, 2);
        let mut model = ModelKind::Sgc { k: 2 }.build(&ds, 1);
        let train: Vec<u32> = ds.split.train.iter().take(32).copied().collect();
        let rep = model.train(&ds.labels, &train, &[], &TrainConfig::fast());
        assert!(rep.epochs_run > 0);
        assert!(rep.final_loss.is_finite());
    }

    #[test]
    fn default_is_gcn() {
        assert_eq!(ModelKind::default().name(), "gcn");
    }
}

//! AGE (Cai et al. 2017): Active learning for Graph Embedding.
//!
//! AGE scores every unlabeled node by a time-sensitive linear combination
//! of three percentile-ranked arms:
//!
//! * **uncertainty** — entropy of the current model's prediction,
//! * **density** — inverse distance to the nearest k-means centroid of the
//!   node embedding,
//! * **centrality** — PageRank.
//!
//! Early rounds lean on the model-free arms (density/centrality); as the
//! model sees more labels, weight shifts to uncertainty. The model is
//! retrained every round — this is exactly the per-round training cost
//! that Grain's model-free design eliminates (Figure 6).
//!
//! Faithfulness notes: the original samples its weights from time-biased
//! beta distributions; we use the deterministic schedule
//! `w_u = t/(T-1)`, `w_d = w_c = (1-w_u)/2`, which captures the same
//! early-exploration → late-uncertainty shift without nondeterminism.
//! Density is computed on the smoothed input features (FeatProp practice)
//! instead of the hidden layer, keeping the arm stable across rounds.

use crate::context::SelectionContext;
use crate::models::ModelKind;
use crate::traits::NodeSelector;
use grain_gnn::metrics::row_entropy;
use grain_gnn::TrainConfig;
use grain_linalg::{distance, kmeans, DenseMatrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The three AGE arms as per-node percentile ranks in `[0, 1]`.
pub(crate) struct ArmRanks {
    /// Density percentile (higher = denser region).
    pub density: Vec<f64>,
    /// Centrality percentile (higher = more central).
    pub centrality: Vec<f64>,
}

impl ArmRanks {
    /// Computes the two model-free arms once per selection run.
    pub(crate) fn model_free(ctx: &SelectionContext<'_>) -> Self {
        let ds = ctx.dataset;
        // Density: 1 / (1 + distance to nearest k-means centroid).
        let km = kmeans::kmeans(ctx.smoothed(), ds.num_classes, 25, ctx.seed ^ 0xa9e);
        let n = ds.num_nodes();
        let mut density_score = vec![0.0f64; n];
        for (v, (score, &c)) in density_score.iter_mut().zip(&km.assignment).enumerate() {
            let d = distance::euclidean(ctx.smoothed().row(v), km.centroids.row(c));
            *score = 1.0 / (1.0 + d as f64);
        }
        let centrality_score = grain_graph::algo::pagerank(&ds.graph, 0.85, 50, 1e-9);
        Self {
            density: percentile_ranks(&density_score),
            centrality: percentile_ranks(&centrality_score),
        }
    }
}

/// Converts raw scores into percentile ranks in `[0, 1]` (ties averaged by
/// first-occurrence order, which is deterministic).
pub(crate) fn percentile_ranks(scores: &[f64]) -> Vec<f64> {
    let n = scores.len();
    if n <= 1 {
        return vec![1.0; n];
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    let mut ranks = vec![0.0; n];
    for (pos, &i) in order.iter().enumerate() {
        ranks[i] = pos as f64 / (n - 1) as f64;
    }
    ranks
}

/// Per-node entropy percentile of the current predictions.
pub(crate) fn entropy_ranks(probs: &DenseMatrix) -> Vec<f64> {
    let scores: Vec<f64> = (0..probs.rows())
        .map(|i| row_entropy(probs.row(i)))
        .collect();
    percentile_ranks(&scores)
}

/// Label-balanced initial pool: `per_class` random candidates per class
/// (the protocol of A.4: "two nodes are randomly selected for each class").
pub(crate) fn balanced_initial_pool(
    ctx: &SelectionContext<'_>,
    per_class: usize,
    seed: u64,
) -> Vec<u32> {
    let ds = ctx.dataset;
    let mut by_class: Vec<Vec<u32>> = vec![Vec::new(); ds.num_classes];
    for &v in ctx.candidates() {
        by_class[ds.labels[v as usize] as usize].push(v);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = Vec::with_capacity(per_class * ds.num_classes);
    for nodes in &mut by_class {
        nodes.shuffle(&mut rng);
        pool.extend(nodes.iter().take(per_class));
    }
    pool.sort_unstable();
    pool
}

/// AGE selector.
pub struct AgeSelector {
    model_kind: ModelKind,
    seed: u64,
    train_cfg: TrainConfig,
}

impl AgeSelector {
    /// AGE retraining `model_kind` each round.
    #[must_use]
    pub fn new(model_kind: ModelKind, seed: u64) -> Self {
        Self {
            model_kind,
            seed,
            train_cfg: TrainConfig::fast(),
        }
    }

    /// Overrides the per-round training configuration.
    #[must_use]
    pub fn with_train_config(mut self, cfg: TrainConfig) -> Self {
        self.train_cfg = cfg;
        self
    }
}

impl NodeSelector for AgeSelector {
    fn name(&self) -> &'static str {
        "age"
    }

    fn is_learning_based(&self) -> bool {
        true
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32> {
        let ds = ctx.dataset;
        let budget = budget.min(ctx.candidates().len());
        let arms = ArmRanks::model_free(ctx);
        let mut labeled = balanced_initial_pool(ctx, 2, self.seed ^ ctx.seed);
        labeled.truncate(budget);
        let mut model = self.model_kind.build(ds, self.seed);
        let per_round = ds.num_classes.max(1);
        let total_rounds = budget
            .saturating_sub(labeled.len())
            .div_ceil(per_round)
            .max(1);
        let mut round = 0usize;
        while labeled.len() < budget {
            model.reset(self.seed.wrapping_add(round as u64));
            let mut cfg = self.train_cfg;
            cfg.seed = self.seed.wrapping_add(round as u64);
            model.train(&ds.labels, &labeled, &ds.split.val, &cfg);
            let probs = model.predict();
            let entropy = entropy_ranks(&probs);
            // Time-sensitive weights: uncertainty grows with rounds.
            let progress = if total_rounds <= 1 {
                1.0
            } else {
                round as f64 / (total_rounds - 1) as f64
            };
            // Cap the uncertainty weight: AGE shifts toward uncertainty but
            // never abandons density/centrality entirely (pure-entropy picks
            // degenerate boundary sets under a weak inner model).
            let w_u = 0.7 * progress;
            let w_dc = (1.0 - w_u) / 2.0;
            let labeled_set: std::collections::HashSet<u32> = labeled.iter().copied().collect();
            let mut scored: Vec<(u32, f64)> = ctx
                .candidates()
                .iter()
                .filter(|v| !labeled_set.contains(v))
                .map(|&v| {
                    let i = v as usize;
                    let s = w_u * entropy[i] + w_dc * arms.density[i] + w_dc * arms.centrality[i];
                    (v, s)
                })
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let take = per_round.min(budget - labeled.len());
            labeled.extend(scored.iter().take(take).map(|&(v, _)| v));
            round += 1;
        }
        labeled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_selection;
    use grain_data::synthetic::papers_like;

    #[test]
    fn percentile_ranks_span_unit_interval() {
        let r = percentile_ranks(&[3.0, 1.0, 2.0]);
        assert_eq!(r, vec![1.0, 0.0, 0.5]);
    }

    #[test]
    fn balanced_pool_covers_classes() {
        let ds = papers_like(600, 9);
        let ctx = SelectionContext::new(&ds, 3);
        let pool = balanced_initial_pool(&ctx, 2, 1);
        let mut per_class = vec![0usize; ds.num_classes];
        for &v in &pool {
            per_class[ds.labels[v as usize] as usize] += 1;
        }
        assert!(per_class.iter().all(|&c| c <= 2));
        assert!(per_class.iter().filter(|&&c| c == 2).count() >= ds.num_classes / 2);
    }

    #[test]
    fn age_selects_budget_nodes() {
        let ds = papers_like(400, 10);
        let ctx = SelectionContext::new(&ds, 4);
        let mut sel = AgeSelector::new(ModelKind::Sgc { k: 2 }, 2).with_train_config(TrainConfig {
            epochs: 15,
            patience: None,
            ..Default::default()
        });
        let budget = 2 * ds.num_classes + 5;
        let picked = sel.select(&ctx, budget);
        assert_eq!(picked.len(), budget);
        validate_selection(&picked, ctx.candidates(), budget).unwrap();
        assert!(sel.is_learning_based());
    }
}

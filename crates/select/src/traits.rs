//! The selector interface.

use crate::context::SelectionContext;
use grain_core::SelectionEngine;

/// A node-selection strategy (active learning or core-set).
pub trait NodeSelector {
    /// Display name used in experiment tables ("grain(ball-d)", "age", ...).
    fn name(&self) -> &'static str;

    /// Selects up to `budget` nodes to label from the context's candidate
    /// pool. Must return distinct in-pool node ids.
    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32>;

    /// One selection per budget against an explicit warm engine — the
    /// serving path: a harness checks an engine out of a
    /// [`grain_core::service::GrainService`] pool and every method in the
    /// lineup draws from its artifact caches.
    ///
    /// The default runs a single selection at the largest budget and
    /// slices prefixes — correct for every prefix-consistent method in the
    /// lineup (see `grain-bench::lineup`); prefix methods distance on the
    /// context's smoothed embedding, which *is* an engine artifact, so the
    /// engine parameter goes unused. The Grain adapters override this to
    /// run the whole sweep through `engine`.
    fn select_sweep_with(
        &mut self,
        ctx: &SelectionContext<'_>,
        engine: &mut SelectionEngine,
        budgets: &[usize],
    ) -> Vec<Vec<u32>> {
        let _ = engine;
        let max_budget = budgets.iter().copied().max().unwrap_or(0);
        let selected = self.select(ctx, max_budget);
        prefix_sweep(&selected, budgets)
    }

    /// One selection per budget, for budget-sweep experiments.
    ///
    /// The default slices prefixes of one max-budget `select` call and
    /// never borrows [`SelectionContext::engine`], so a selector whose
    /// `select` draws on the context engine can inherit it safely.
    /// Engine-backed selectors that override
    /// [`NodeSelector::select_sweep_with`] should also override this to
    /// route the sweep through the context's engine (as the Grain
    /// adapters do).
    fn select_sweep(&mut self, ctx: &SelectionContext<'_>, budgets: &[usize]) -> Vec<Vec<u32>> {
        let max_budget = budgets.iter().copied().max().unwrap_or(0);
        let selected = self.select(ctx, max_budget);
        prefix_sweep(&selected, budgets)
    }

    /// True for methods that train models during selection (AGE, ANRMAB) —
    /// the runtime experiments report this distinction.
    fn is_learning_based(&self) -> bool {
        false
    }
}

/// Slices one max-budget selection into per-budget prefixes — the shared
/// body of the default sweep implementations.
fn prefix_sweep(selected: &[u32], budgets: &[usize]) -> Vec<Vec<u32>> {
    budgets
        .iter()
        .map(|&b| selected[..b.min(selected.len())].to_vec())
        .collect()
}

/// Validates a selection result in tests and the harness: distinct,
/// in-pool, within budget.
pub fn validate_selection(selected: &[u32], pool: &[u32], budget: usize) -> Result<(), String> {
    if selected.len() > budget {
        return Err(format!("selected {} > budget {budget}", selected.len()));
    }
    let pool_set: std::collections::HashSet<u32> = pool.iter().copied().collect();
    let mut seen = std::collections::HashSet::with_capacity(selected.len());
    for &s in selected {
        if !pool_set.contains(&s) {
            return Err(format!("node {s} not in candidate pool"));
        }
        if !seen.insert(s) {
            return Err(format!("node {s} selected twice"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_good_selection() {
        assert!(validate_selection(&[1, 3], &[1, 2, 3], 2).is_ok());
    }

    #[test]
    fn validator_rejects_duplicates_and_outsiders() {
        assert!(validate_selection(&[1, 1], &[1, 2], 3).is_err());
        assert!(validate_selection(&[9], &[1, 2], 3).is_err());
        assert!(validate_selection(&[1, 2], &[1, 2], 1).is_err());
    }
}

//! Grain selectors behind the common [`NodeSelector`] trait.
//!
//! Single selections run one-shot through [`GrainSelector`]; budget sweeps
//! ([`NodeSelector::select_sweep`]) share one warm
//! [`grain_core::SelectionEngine`], so propagation, influence rows, the
//! activation index, and the diversity precompute are built once per sweep
//! instead of once per budget.

use crate::context::SelectionContext;
use crate::traits::NodeSelector;
use grain_core::{GrainConfig, GrainSelector, GrainVariant, SelectionOutcome};

/// Runs `budgets` through one warm engine and records the last outcome.
fn engine_sweep(
    selector: &GrainSelector,
    ctx: &SelectionContext<'_>,
    budgets: &[usize],
    last_outcome: Option<&mut Option<SelectionOutcome>>,
) -> Vec<Vec<u32>> {
    let mut engine = selector
        .engine(&ctx.dataset.graph, &ctx.dataset.features)
        .expect("adapter configs are validated at construction");
    let mut outcomes = engine.select_budgets(ctx.candidates(), budgets);
    let selections = outcomes.iter().map(|o| o.selected.clone()).collect();
    if let Some(slot) = last_outcome {
        *slot = outcomes.pop();
    }
    selections
}

/// Grain (ball-D) adapter.
pub struct GrainBallSelector {
    inner: GrainSelector,
    last_outcome: Option<SelectionOutcome>,
}

impl GrainBallSelector {
    /// Appendix A.4 defaults.
    pub fn with_defaults() -> Self {
        Self {
            inner: GrainSelector::ball_d(),
            last_outcome: None,
        }
    }

    /// Custom configuration (diversity kind forced to Ball by the caller's
    /// config; this constructor does not override it). Errors on a
    /// configuration that fails [`GrainConfig::validate`].
    pub fn new(config: GrainConfig) -> Result<Self, String> {
        Ok(Self {
            inner: GrainSelector::new(config)?,
            last_outcome: None,
        })
    }

    /// Full outcome of the most recent selection (timings, σ, trace).
    pub fn last_outcome(&self) -> Option<&SelectionOutcome> {
        self.last_outcome.as_ref()
    }
}

impl NodeSelector for GrainBallSelector {
    fn name(&self) -> &'static str {
        "grain(ball-d)"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32> {
        let outcome = self.inner.select(
            &ctx.dataset.graph,
            &ctx.dataset.features,
            ctx.candidates(),
            budget,
        );
        let selected = outcome.selected.clone();
        self.last_outcome = Some(outcome);
        selected
    }

    fn select_sweep(&mut self, ctx: &SelectionContext<'_>, budgets: &[usize]) -> Vec<Vec<u32>> {
        engine_sweep(&self.inner, ctx, budgets, Some(&mut self.last_outcome))
    }
}

/// Grain (NN-D) adapter.
pub struct GrainNnSelector {
    inner: GrainSelector,
    last_outcome: Option<SelectionOutcome>,
}

impl GrainNnSelector {
    /// Appendix A.4 defaults.
    pub fn with_defaults() -> Self {
        Self {
            inner: GrainSelector::nn_d(),
            last_outcome: None,
        }
    }

    /// Custom configuration. Errors on a configuration that fails
    /// [`GrainConfig::validate`].
    pub fn new(config: GrainConfig) -> Result<Self, String> {
        Ok(Self {
            inner: GrainSelector::new(config)?,
            last_outcome: None,
        })
    }

    /// Full outcome of the most recent selection.
    pub fn last_outcome(&self) -> Option<&SelectionOutcome> {
        self.last_outcome.as_ref()
    }
}

impl NodeSelector for GrainNnSelector {
    fn name(&self) -> &'static str {
        "grain(nn-d)"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32> {
        let outcome = self.inner.select(
            &ctx.dataset.graph,
            &ctx.dataset.features,
            ctx.candidates(),
            budget,
        );
        let selected = outcome.selected.clone();
        self.last_outcome = Some(outcome);
        selected
    }

    fn select_sweep(&mut self, ctx: &SelectionContext<'_>, budgets: &[usize]) -> Vec<Vec<u32>> {
        engine_sweep(&self.inner, ctx, budgets, Some(&mut self.last_outcome))
    }
}

/// Table 3 ablation adapter.
pub struct GrainAblationSelector {
    inner: GrainSelector,
    variant: GrainVariant,
}

impl GrainAblationSelector {
    /// Ablation selector for `variant` with ball-D defaults otherwise.
    pub fn new(variant: GrainVariant) -> Self {
        Self {
            inner: GrainSelector::new_unchecked(GrainConfig::ablation(variant)),
            variant,
        }
    }
}

impl NodeSelector for GrainAblationSelector {
    fn name(&self) -> &'static str {
        match self.variant {
            GrainVariant::Full => "grain(ball-d)",
            GrainVariant::NoDiversity => "no-diversity",
            GrainVariant::NoMagnitude => "no-magnitude",
            GrainVariant::ClassicCoverage => "classic-coverage",
        }
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32> {
        self.inner
            .select(
                &ctx.dataset.graph,
                &ctx.dataset.features,
                ctx.candidates(),
                budget,
            )
            .selected
    }

    fn select_sweep(&mut self, ctx: &SelectionContext<'_>, budgets: &[usize]) -> Vec<Vec<u32>> {
        engine_sweep(&self.inner, ctx, budgets, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_selection;
    use grain_data::synthetic::papers_like;

    #[test]
    fn ball_adapter_selects_and_records_outcome() {
        let ds = papers_like(400, 30);
        let ctx = SelectionContext::new(&ds, 1);
        let mut sel = GrainBallSelector::with_defaults();
        let picked = sel.select(&ctx, 12);
        assert_eq!(picked.len(), 12);
        validate_selection(&picked, ctx.candidates(), 12).unwrap();
        let outcome = sel.last_outcome().unwrap();
        assert!(!outcome.sigma.is_empty());
        assert!(!sel.is_learning_based());
    }

    #[test]
    fn nn_adapter_selects() {
        let ds = papers_like(300, 31);
        let ctx = SelectionContext::new(&ds, 2);
        let mut sel = GrainNnSelector::with_defaults();
        let picked = sel.select(&ctx, 10);
        validate_selection(&picked, ctx.candidates(), 10).unwrap();
    }

    #[test]
    fn adapter_constructors_reject_invalid_configs() {
        let bad = GrainConfig {
            gamma: -3.0,
            ..GrainConfig::ball_d()
        };
        assert!(GrainBallSelector::new(bad).is_err());
        assert!(GrainNnSelector::new(bad).is_err());
        assert!(GrainBallSelector::new(GrainConfig::ball_d()).is_ok());
    }

    #[test]
    fn warm_sweep_matches_per_budget_selects() {
        let ds = papers_like(350, 33);
        let ctx = SelectionContext::new(&ds, 4);
        let budgets = [4usize, 8, 12];
        let mut sweep_sel = GrainBallSelector::with_defaults();
        let sweep = sweep_sel.select_sweep(&ctx, &budgets);
        assert!(sweep_sel.last_outcome().is_some());
        for (picked, &b) in sweep.iter().zip(&budgets) {
            let mut fresh = GrainBallSelector::with_defaults();
            assert_eq!(picked, &fresh.select(&ctx, b), "budget {b}");
            validate_selection(picked, ctx.candidates(), b).unwrap();
        }
    }

    #[test]
    fn ablations_have_distinct_names_and_select() {
        let ds = papers_like(300, 32);
        let ctx = SelectionContext::new(&ds, 3);
        let mut names = std::collections::HashSet::new();
        for variant in [
            GrainVariant::NoDiversity,
            GrainVariant::NoMagnitude,
            GrainVariant::ClassicCoverage,
        ] {
            let mut sel = GrainAblationSelector::new(variant);
            names.insert(sel.name());
            let picked = sel.select(&ctx, 8);
            validate_selection(&picked, ctx.candidates(), 8).unwrap();
        }
        assert_eq!(names.len(), 3);
    }
}

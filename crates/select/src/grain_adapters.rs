//! Grain selectors behind the common [`NodeSelector`] trait.
//!
//! The adapters own no pipeline state: every selection runs through a
//! shared [`grain_core::SelectionEngine`] — the context's engine for
//! plain `select`/`select_sweep` calls, or a service-pooled engine handed
//! to [`NodeSelector::select_sweep_with`] — so Grain draws from the same
//! artifact store the baselines smooth their distances on, and a budget
//! sweep pays propagation, influence rows, the activation index, and the
//! diversity precompute exactly once.

use crate::context::SelectionContext;
use crate::traits::NodeSelector;
use grain_core::{GrainConfig, GrainResult, GrainVariant, SelectionEngine, SelectionOutcome};

/// Runs a sweep through `engine` under `config`, recording the last
/// outcome.
///
/// The handed-down engine may be pooled under its config's artifact
/// fingerprint (see [`grain_core::service::EnginePool`]); re-keying it to
/// a different fingerprint would leave the pool indexing rebuilt artifacts
/// under a stale key. An adapter whose config shares the engine's
/// fingerprint runs through it (greedy-stage fields are safe to swap);
/// one that does not runs on a private engine over the same corpus
/// handles instead.
fn engine_sweep(
    config: GrainConfig,
    engine: &mut SelectionEngine,
    candidates: &[u32],
    budgets: &[usize],
    last_outcome: Option<&mut Option<SelectionOutcome>>,
) -> Vec<Vec<u32>> {
    if config.artifact_fingerprint() != engine.config().artifact_fingerprint() {
        let mut own = private_engine_like(config, engine);
        return engine_sweep(config, &mut own, candidates, budgets, last_outcome);
    }
    engine
        .set_config(config)
        .expect("adapter configs are validated at construction");
    let mut outcomes = engine.select_budgets(candidates, budgets);
    let selections = outcomes.iter().map(|o| o.selected.clone()).collect();
    if let Some(slot) = last_outcome {
        *slot = outcomes.pop();
    }
    selections
}

/// A private engine over the same corpus handles as `engine` for a config
/// whose artifact fingerprint differs — seeded with the source engine's
/// cached `X^(k)` when the kernels match, so the detour never
/// re-propagates an artifact the source already holds.
fn private_engine_like(config: GrainConfig, engine: &SelectionEngine) -> SelectionEngine {
    let mut own = SelectionEngine::over(config, engine.graph_arc(), engine.features_arc())
        .expect("adapter configs are validated at construction");
    if let Some(propagated) = engine.propagated_if_cached(config.kernel) {
        own.seed_propagated(propagated);
    }
    own
}

/// One selection through the context's engine under `config`.
///
/// Mirrors [`engine_sweep`]'s fingerprint guard: an adapter whose config
/// differs from the context engine's in an *artifact* field runs on a
/// private engine, so the shared single-slot caches every other selector
/// in the lineup draws on are never re-keyed mid-campaign.
fn engine_select(
    config: GrainConfig,
    ctx: &SelectionContext<'_>,
    budget: usize,
) -> SelectionOutcome {
    let mut engine = ctx.engine();
    if config.artifact_fingerprint() != engine.config().artifact_fingerprint() {
        let mut own = private_engine_like(config, &engine);
        return own.select(ctx.candidates(), budget);
    }
    engine
        .set_config(config)
        .expect("adapter configs are validated at construction");
    engine.select(ctx.candidates(), budget)
}

/// Grain (ball-D) adapter.
pub struct GrainBallSelector {
    config: GrainConfig,
    last_outcome: Option<SelectionOutcome>,
}

impl GrainBallSelector {
    /// Appendix A.4 defaults.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self {
            config: GrainConfig::ball_d(),
            last_outcome: None,
        }
    }

    /// Custom configuration (diversity kind forced to Ball by the caller's
    /// config; this constructor does not override it). Errors on a
    /// configuration that fails [`GrainConfig::validate`].
    pub fn new(config: GrainConfig) -> GrainResult<Self> {
        config.validate()?;
        Ok(Self {
            config,
            last_outcome: None,
        })
    }

    /// Full outcome of the most recent selection (timings, σ, trace).
    pub fn last_outcome(&self) -> Option<&SelectionOutcome> {
        self.last_outcome.as_ref()
    }
}

impl NodeSelector for GrainBallSelector {
    fn name(&self) -> &'static str {
        "grain(ball-d)"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32> {
        let outcome = engine_select(self.config, ctx, budget);
        let selected = outcome.selected.clone();
        self.last_outcome = Some(outcome);
        selected
    }

    fn select_sweep_with(
        &mut self,
        ctx: &SelectionContext<'_>,
        engine: &mut SelectionEngine,
        budgets: &[usize],
    ) -> Vec<Vec<u32>> {
        engine_sweep(
            self.config,
            engine,
            ctx.candidates(),
            budgets,
            Some(&mut self.last_outcome),
        )
    }

    fn select_sweep(&mut self, ctx: &SelectionContext<'_>, budgets: &[usize]) -> Vec<Vec<u32>> {
        let mut engine = ctx.engine();
        self.select_sweep_with(ctx, &mut engine, budgets)
    }
}

/// Grain (NN-D) adapter.
pub struct GrainNnSelector {
    config: GrainConfig,
    last_outcome: Option<SelectionOutcome>,
}

impl GrainNnSelector {
    /// Appendix A.4 defaults.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self {
            config: GrainConfig::nn_d(),
            last_outcome: None,
        }
    }

    /// Custom configuration. Errors on a configuration that fails
    /// [`GrainConfig::validate`].
    pub fn new(config: GrainConfig) -> GrainResult<Self> {
        config.validate()?;
        Ok(Self {
            config,
            last_outcome: None,
        })
    }

    /// Full outcome of the most recent selection.
    pub fn last_outcome(&self) -> Option<&SelectionOutcome> {
        self.last_outcome.as_ref()
    }
}

impl NodeSelector for GrainNnSelector {
    fn name(&self) -> &'static str {
        "grain(nn-d)"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32> {
        let outcome = engine_select(self.config, ctx, budget);
        let selected = outcome.selected.clone();
        self.last_outcome = Some(outcome);
        selected
    }

    fn select_sweep_with(
        &mut self,
        ctx: &SelectionContext<'_>,
        engine: &mut SelectionEngine,
        budgets: &[usize],
    ) -> Vec<Vec<u32>> {
        engine_sweep(
            self.config,
            engine,
            ctx.candidates(),
            budgets,
            Some(&mut self.last_outcome),
        )
    }

    fn select_sweep(&mut self, ctx: &SelectionContext<'_>, budgets: &[usize]) -> Vec<Vec<u32>> {
        let mut engine = ctx.engine();
        self.select_sweep_with(ctx, &mut engine, budgets)
    }
}

/// Table 3 ablation adapter.
pub struct GrainAblationSelector {
    config: GrainConfig,
    variant: GrainVariant,
}

impl GrainAblationSelector {
    /// Ablation selector for `variant` with ball-D defaults otherwise.
    #[must_use]
    pub fn new(variant: GrainVariant) -> Self {
        Self {
            config: GrainConfig::ablation(variant),
            variant,
        }
    }
}

impl NodeSelector for GrainAblationSelector {
    fn name(&self) -> &'static str {
        match self.variant {
            GrainVariant::Full => "grain(ball-d)",
            GrainVariant::NoDiversity => "no-diversity",
            GrainVariant::NoMagnitude => "no-magnitude",
            GrainVariant::ClassicCoverage => "classic-coverage",
        }
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32> {
        engine_select(self.config, ctx, budget).selected
    }

    fn select_sweep_with(
        &mut self,
        ctx: &SelectionContext<'_>,
        engine: &mut SelectionEngine,
        budgets: &[usize],
    ) -> Vec<Vec<u32>> {
        engine_sweep(self.config, engine, ctx.candidates(), budgets, None)
    }

    fn select_sweep(&mut self, ctx: &SelectionContext<'_>, budgets: &[usize]) -> Vec<Vec<u32>> {
        let mut engine = ctx.engine();
        self.select_sweep_with(ctx, &mut engine, budgets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_selection;
    use grain_data::synthetic::papers_like;

    #[test]
    fn ball_adapter_selects_and_records_outcome() {
        let ds = papers_like(400, 30);
        let ctx = SelectionContext::new(&ds, 1);
        let mut sel = GrainBallSelector::with_defaults();
        let picked = sel.select(&ctx, 12);
        assert_eq!(picked.len(), 12);
        validate_selection(&picked, ctx.candidates(), 12).unwrap();
        let outcome = sel.last_outcome().unwrap();
        assert!(!outcome.sigma.is_empty());
        assert!(!sel.is_learning_based());
    }

    #[test]
    fn nn_adapter_selects() {
        let ds = papers_like(300, 31);
        let ctx = SelectionContext::new(&ds, 2);
        let mut sel = GrainNnSelector::with_defaults();
        let picked = sel.select(&ctx, 10);
        validate_selection(&picked, ctx.candidates(), 10).unwrap();
    }

    #[test]
    fn adapter_constructors_reject_invalid_configs() {
        let bad = GrainConfig {
            gamma: -3.0,
            ..GrainConfig::ball_d()
        };
        assert!(GrainBallSelector::new(bad).is_err());
        assert!(GrainNnSelector::new(bad).is_err());
        assert!(GrainBallSelector::new(GrainConfig::ball_d()).is_ok());
    }

    #[test]
    fn warm_sweep_matches_per_budget_selects() {
        let ds = papers_like(350, 33);
        let ctx = SelectionContext::new(&ds, 4);
        let budgets = [4usize, 8, 12];
        let mut sweep_sel = GrainBallSelector::with_defaults();
        let sweep = sweep_sel.select_sweep(&ctx, &budgets);
        assert!(sweep_sel.last_outcome().is_some());
        for (picked, &b) in sweep.iter().zip(&budgets) {
            // Fresh context: a cold engine must reproduce the warm sweep.
            let fresh_ctx = SelectionContext::new(&ds, 4);
            let mut fresh = GrainBallSelector::with_defaults();
            assert_eq!(picked, &fresh.select(&fresh_ctx, b), "budget {b}");
            validate_selection(picked, ctx.candidates(), b).unwrap();
        }
    }

    #[test]
    fn mismatched_fingerprint_leaves_the_handed_engine_untouched() {
        // A pooled engine is keyed by its artifact fingerprint; an adapter
        // whose config differs in an artifact field must not re-key it.
        let ds = papers_like(300, 35);
        let ctx = SelectionContext::new(&ds, 6);
        let mut pooled =
            SelectionEngine::over(GrainConfig::ball_d(), ds.graph.clone(), ds.features.clone())
                .unwrap();
        let fp_before = pooled.config().artifact_fingerprint();
        let deep = GrainConfig {
            kernel: grain_prop::Kernel::RandomWalk { k: 3 },
            ..GrainConfig::ball_d()
        };
        let mut sel = GrainBallSelector::new(deep).unwrap();
        let sweep = sel.select_sweep_with(&ctx, &mut pooled, &[6]);
        assert_eq!(
            pooled.config().artifact_fingerprint(),
            fp_before,
            "the handed-down engine must keep its pool key"
        );
        assert_eq!(
            pooled.stats().propagation_builds,
            0,
            "the handed-down engine's caches must stay untouched"
        );
        // The private-engine detour stays bit-identical to a cold run.
        let fresh_ctx = SelectionContext::new(&ds, 6);
        let mut fresh = GrainBallSelector::new(deep).unwrap();
        assert_eq!(sweep[0], fresh.select(&fresh_ctx, 6));
    }

    #[test]
    fn adapters_share_the_context_engine() {
        // Ball then NN on one context: propagation and influence artifacts
        // are built once and shared; only the diversity precompute differs.
        let ds = papers_like(300, 34);
        let ctx = SelectionContext::new(&ds, 5);
        let _ = GrainBallSelector::with_defaults().select(&ctx, 8);
        let _ = GrainNnSelector::with_defaults().select(&ctx, 8);
        let stats = ctx.engine().stats();
        assert_eq!(stats.propagation_builds, 1, "X^(k) must be shared");
        assert_eq!(stats.influence_builds, 1, "rows must be shared");
        assert_eq!(stats.index_builds, 1, "index must be shared");
        assert_eq!(stats.diversity_builds, 2, "ball lists + NN d_max");
    }

    #[test]
    fn ablations_have_distinct_names_and_select() {
        let ds = papers_like(300, 32);
        let ctx = SelectionContext::new(&ds, 3);
        let mut names = std::collections::HashSet::new();
        for variant in [
            GrainVariant::NoDiversity,
            GrainVariant::NoMagnitude,
            GrainVariant::ClassicCoverage,
        ] {
            let mut sel = GrainAblationSelector::new(variant);
            names.insert(sel.name());
            let picked = sel.select(&ctx, 8);
            validate_selection(&picked, ctx.candidates(), 8).unwrap();
        }
        assert_eq!(names.len(), 3);
    }
}

//! Core-set selection criteria (§2.1).
//!
//! Core-set selection starts from a *fully labeled* pool and keeps the
//! subset that best preserves full-data accuracy. Besides K-Center-Greedy
//! (shared with active learning), the paper cites two model-driven
//! criteria, both implemented here:
//!
//! * **max entropy** (Lewis & Gale; Settles) — train on the full pool,
//!   keep the examples the model is least certain about,
//! * **forgetting events** (Toneva et al.) — track per-epoch transitions
//!   from correct to incorrect during full-pool training, keep the
//!   most-forgotten examples.

use crate::context::SelectionContext;
use crate::models::ModelKind;
use crate::traits::NodeSelector;
use grain_gnn::forgetting::ForgettingTracker;
use grain_gnn::metrics::row_entropy;
use grain_gnn::TrainConfig;
use grain_linalg::DenseMatrix;

/// Max-entropy core-set: keep the pool's most uncertain examples under a
/// model trained on the full pool.
pub struct MaxEntropySelector {
    model_kind: ModelKind,
    seed: u64,
    train_cfg: TrainConfig,
}

impl MaxEntropySelector {
    /// New selector training `model_kind` on the full pool.
    #[must_use]
    pub fn new(model_kind: ModelKind, seed: u64) -> Self {
        Self {
            model_kind,
            seed,
            train_cfg: TrainConfig::fast(),
        }
    }

    /// Overrides the training configuration.
    #[must_use]
    pub fn with_train_config(mut self, cfg: TrainConfig) -> Self {
        self.train_cfg = cfg;
        self
    }
}

impl NodeSelector for MaxEntropySelector {
    fn name(&self) -> &'static str {
        "max-entropy"
    }

    fn is_learning_based(&self) -> bool {
        true
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32> {
        let ds = ctx.dataset;
        let mut model = self.model_kind.build(ds, self.seed);
        let mut cfg = self.train_cfg;
        cfg.seed = self.seed;
        model.train(&ds.labels, ctx.candidates(), &ds.split.val, &cfg);
        let probs = model.predict();
        let mut scored: Vec<(u32, f64)> = ctx
            .candidates()
            .iter()
            .map(|&v| (v, row_entropy(probs.row(v as usize))))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.into_iter().take(budget).map(|(v, _)| v).collect()
    }
}

/// Forgetting-events core-set: keep the pool's most-forgotten examples.
pub struct ForgettingSelector {
    model_kind: ModelKind,
    seed: u64,
    train_cfg: TrainConfig,
}

impl ForgettingSelector {
    /// New selector tracking forgetting during full-pool training.
    #[must_use]
    pub fn new(model_kind: ModelKind, seed: u64) -> Self {
        // Forgetting statistics need the full trajectory: no early stop.
        let train_cfg = TrainConfig {
            patience: None,
            ..TrainConfig::fast()
        };
        Self {
            model_kind,
            seed,
            train_cfg,
        }
    }

    /// Overrides the training configuration (patience is forced off).
    #[must_use]
    pub fn with_train_config(mut self, mut cfg: TrainConfig) -> Self {
        cfg.patience = None;
        self.train_cfg = cfg;
        self
    }
}

impl NodeSelector for ForgettingSelector {
    fn name(&self) -> &'static str {
        "forgetting"
    }

    fn is_learning_based(&self) -> bool {
        true
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32> {
        let ds = ctx.dataset;
        let mut model = self.model_kind.build(ds, self.seed);
        let mut tracker = ForgettingTracker::new(&ds.labels, ctx.candidates());
        let mut cfg = self.train_cfg;
        cfg.seed = self.seed;
        let mut hook = |_epoch: usize, probs: &DenseMatrix| tracker.observe(probs);
        model.train_with_hook(&ds.labels, ctx.candidates(), &[], &cfg, Some(&mut hook));
        tracker.most_forgotten(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_selection;
    use grain_data::synthetic::papers_like;

    fn fast_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 20,
            patience: None,
            ..Default::default()
        }
    }

    #[test]
    fn max_entropy_returns_valid_subset() {
        let ds = papers_like(300, 20);
        let ctx = SelectionContext::new(&ds, 1);
        let mut sel =
            MaxEntropySelector::new(ModelKind::Sgc { k: 2 }, 2).with_train_config(fast_cfg());
        let picked = sel.select(&ctx, 25);
        assert_eq!(picked.len(), 25);
        validate_selection(&picked, ctx.candidates(), 25).unwrap();
    }

    #[test]
    fn forgetting_returns_valid_subset() {
        let ds = papers_like(300, 21);
        let ctx = SelectionContext::new(&ds, 2);
        let mut sel =
            ForgettingSelector::new(ModelKind::Sgc { k: 2 }, 3).with_train_config(fast_cfg());
        let picked = sel.select(&ctx, 25);
        assert_eq!(picked.len(), 25);
        validate_selection(&picked, ctx.candidates(), 25).unwrap();
    }

    #[test]
    fn entropy_picks_most_uncertain() {
        // On an easily separable corpus, entropy-ranked picks should not be
        // the plain first-k ids (sanity: the criterion is actually ranking).
        let ds = papers_like(300, 22);
        let ctx = SelectionContext::new(&ds, 3);
        let mut sel =
            MaxEntropySelector::new(ModelKind::Sgc { k: 2 }, 4).with_train_config(fast_cfg());
        let picked = sel.select(&ctx, 10);
        let first_k: Vec<u32> = ctx.candidates().iter().take(10).copied().collect();
        assert_ne!(picked, first_k);
    }
}

//! ANRMAB (Gao et al., IJCAI 2018): Active discriminative network
//! representation learning with a multi-armed bandit.
//!
//! ANRMAB keeps the three AGE arms (uncertainty, density, centrality) but
//! learns their combination online with an EXP3-style bandit: each round
//! the arms are mixed by the bandit's probabilities, the top-scoring nodes
//! are labeled, the model is retrained, and the validation-accuracy
//! improvement becomes the reward that reweights the arms.
//!
//! Faithfulness notes: the original couples EXP4.P with per-node expert
//! advice; we implement the standard EXP3 update over the three arms with
//! importance weighting by the mixing probability, attributing the shared
//! reward to arms proportionally to their contribution in the round's
//! scores. This preserves ANRMAB's defining behaviour — adaptive arm
//! weights driven by observed accuracy gains — with deterministic,
//! auditable updates.

use crate::age::{balanced_initial_pool, entropy_ranks, ArmRanks};
use crate::context::SelectionContext;
use crate::models::ModelKind;
use crate::traits::NodeSelector;
use grain_gnn::metrics::accuracy;
use grain_gnn::TrainConfig;

/// ANRMAB selector.
pub struct AnrmabSelector {
    model_kind: ModelKind,
    seed: u64,
    train_cfg: TrainConfig,
    /// Bandit exploration rate `η`.
    eta: f64,
    /// Final arm weights of the last run (exposed for inspection/tests).
    last_weights: [f64; 3],
}

impl AnrmabSelector {
    /// ANRMAB retraining `model_kind` each round.
    #[must_use]
    pub fn new(model_kind: ModelKind, seed: u64) -> Self {
        Self {
            model_kind,
            seed,
            train_cfg: TrainConfig::fast(),
            eta: 0.4,
            last_weights: [1.0; 3],
        }
    }

    /// Overrides the per-round training configuration.
    #[must_use]
    pub fn with_train_config(mut self, cfg: TrainConfig) -> Self {
        self.train_cfg = cfg;
        self
    }

    /// Arm weights after the most recent [`NodeSelector::select`] call.
    pub fn last_weights(&self) -> [f64; 3] {
        self.last_weights
    }
}

impl NodeSelector for AnrmabSelector {
    fn name(&self) -> &'static str {
        "anrmab"
    }

    fn is_learning_based(&self) -> bool {
        true
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32> {
        let ds = ctx.dataset;
        let budget = budget.min(ctx.candidates().len());
        let arms = ArmRanks::model_free(ctx);
        let mut labeled = balanced_initial_pool(ctx, 2, self.seed ^ ctx.seed ^ 0xbad);
        labeled.truncate(budget);
        let mut model = self.model_kind.build(ds, self.seed);
        let per_round = ds.num_classes.max(1);
        let mut weights = [1.0f64; 3];
        let mut prev_val_acc = 0.0f64;
        // Per-arm contribution to the previous round's picks, used to split
        // the shared accuracy reward among the arms.
        let mut last_contrib: Option<[f64; 3]> = None;
        let mut round = 0usize;
        while labeled.len() < budget {
            model.reset(self.seed.wrapping_add(round as u64));
            let mut cfg = self.train_cfg;
            cfg.seed = self.seed.wrapping_add(round as u64);
            model.train(&ds.labels, &labeled, &ds.split.val, &cfg);
            let probs = model.predict();
            let val_acc = accuracy(&probs, &ds.labels, &ds.split.val);
            // EXP3 reward for the PREVIOUS round's mixture: the accuracy
            // improvement it produced, mapped into [0, 1] and attributed to
            // arms proportionally to their contribution in that round.
            if let Some(contrib) = last_contrib {
                let reward = (val_acc - prev_val_acc).clamp(-1.0, 1.0) * 0.5 + 0.5;
                let total: f64 = weights.iter().sum();
                for (w, c) in weights.iter_mut().zip(contrib) {
                    let p = (1.0 - self.eta) * *w / total + self.eta / 3.0;
                    // Importance-weighted exponential update on the arm's
                    // share of the reward.
                    *w *= (self.eta * reward * c / (3.0 * p)).exp().min(1e6);
                }
                // Renormalize to dodge overflow on long campaigns.
                let norm: f64 = weights.iter().sum::<f64>() / 3.0;
                for w in &mut weights {
                    *w /= norm;
                }
            }
            prev_val_acc = val_acc;
            let total: f64 = weights.iter().sum();
            let p: Vec<f64> = weights
                .iter()
                .map(|w| (1.0 - self.eta) * w / total + self.eta / 3.0)
                .collect();
            let entropy = entropy_ranks(&probs);
            let labeled_set: std::collections::HashSet<u32> = labeled.iter().copied().collect();
            let mut scored: Vec<(u32, f64)> = ctx
                .candidates()
                .iter()
                .filter(|v| !labeled_set.contains(v))
                .map(|&v| {
                    let i = v as usize;
                    let s = p[0] * entropy[i] + p[1] * arms.density[i] + p[2] * arms.centrality[i];
                    (v, s)
                })
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let take = per_round.min(budget - labeled.len());
            let picked: Vec<u32> = scored.iter().take(take).map(|&(v, _)| v).collect();
            // Contribution of each arm to the picked nodes' combined score.
            let mut contrib = [0.0f64; 3];
            for &v in &picked {
                let i = v as usize;
                contrib[0] += p[0] * entropy[i];
                contrib[1] += p[1] * arms.density[i];
                contrib[2] += p[2] * arms.centrality[i];
            }
            let csum: f64 = contrib.iter().sum();
            if csum > 0.0 {
                for c in &mut contrib {
                    *c /= csum;
                }
            }
            last_contrib = Some(contrib);
            labeled.extend(picked);
            round += 1;
        }
        self.last_weights = weights;
        labeled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_selection;
    use grain_data::synthetic::papers_like;

    #[test]
    fn anrmab_selects_budget_nodes() {
        let ds = papers_like(400, 11);
        let ctx = SelectionContext::new(&ds, 5);
        let mut sel =
            AnrmabSelector::new(ModelKind::Sgc { k: 2 }, 3).with_train_config(TrainConfig {
                epochs: 15,
                patience: None,
                ..Default::default()
            });
        let budget = 2 * ds.num_classes + 8;
        let picked = sel.select(&ctx, budget);
        assert_eq!(picked.len(), budget);
        validate_selection(&picked, ctx.candidates(), budget).unwrap();
    }

    #[test]
    fn bandit_weights_move_from_uniform() {
        let ds = papers_like(400, 12);
        let ctx = SelectionContext::new(&ds, 6);
        let mut sel =
            AnrmabSelector::new(ModelKind::Sgc { k: 2 }, 4).with_train_config(TrainConfig {
                epochs: 15,
                patience: None,
                ..Default::default()
            });
        // 2C initial pool + 3 bandit rounds so the EXP3 update fires.
        let _ = sel.select(&ctx, 5 * ds.num_classes);
        let w = sel.last_weights();
        assert!(w.iter().all(|&x| x > 0.0));
        // After several rewarded rounds the weights should not all be 1.
        assert!(w.iter().any(|&x| (x - 1.0).abs() > 1e-9));
    }

    #[test]
    fn deterministic_given_seeds() {
        let ds = papers_like(300, 13);
        let ctx = SelectionContext::new(&ds, 7);
        let cfg = TrainConfig {
            epochs: 10,
            patience: None,
            ..Default::default()
        };
        let a = AnrmabSelector::new(ModelKind::Sgc { k: 2 }, 5)
            .with_train_config(cfg)
            .select(&ctx, 2 * ds.num_classes);
        let b = AnrmabSelector::new(ModelKind::Sgc { k: 2 }, 5)
            .with_train_config(cfg)
            .select(&ctx, 2 * ds.num_classes);
        assert_eq!(a, b);
    }
}

//! FeatProp (Wu et al. 2019), the clustering-based AL method the paper
//! discusses in §2.1: cluster the *propagated* node features into `B`
//! clusters and label the node nearest to each cluster center.
//!
//! Included beyond the paper's Figure 4 lineup because it is the closest
//! published relative of Grain's feature-propagation viewpoint — a useful
//! extra comparison point for users.

use crate::context::SelectionContext;
use crate::traits::NodeSelector;
use grain_linalg::distance::sq_euclidean;
use grain_linalg::kmeans;

/// FeatProp selector.
#[derive(Clone, Debug)]
pub struct FeatPropSelector {
    seed: u64,
}

impl FeatPropSelector {
    /// Seeded selector (k-means++ initialization).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl NodeSelector for FeatPropSelector {
    fn name(&self) -> &'static str {
        "featprop"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32> {
        let pool = ctx.candidates();
        if pool.is_empty() || budget == 0 {
            return Vec::new();
        }
        let budget = budget.min(pool.len());
        let emb = ctx.smoothed();
        // Cluster only the candidate rows.
        let candidate_rows: Vec<usize> = pool.iter().map(|&v| v as usize).collect();
        let sub = emb.select_rows(&candidate_rows);
        let km = kmeans::kmeans(&sub, budget, 30, self.seed ^ ctx.seed);
        // Nearest candidate to each centroid, skipping duplicates
        // (two centroids can share a nearest node on degenerate data).
        let mut selected: Vec<u32> = Vec::with_capacity(budget);
        let mut taken = vec![false; pool.len()];
        for c in 0..km.centroids.rows() {
            let mut best: Option<(usize, f32)> = None;
            for (slot, &v) in pool.iter().enumerate() {
                if taken[slot] {
                    continue;
                }
                let d = sq_euclidean(emb.row(v as usize), km.centroids.row(c));
                let better = match best {
                    None => true,
                    Some((bslot, bd)) => d < bd || (d == bd && v < pool[bslot]),
                };
                if better {
                    best = Some((slot, d));
                }
            }
            if let Some((slot, _)) = best {
                taken[slot] = true;
                selected.push(pool[slot]);
            }
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_selection;
    use grain_data::synthetic::papers_like;

    #[test]
    fn selects_budget_distinct_nodes() {
        let ds = papers_like(400, 41);
        let ctx = SelectionContext::new(&ds, 1);
        let mut sel = FeatPropSelector::new(2);
        let picked = sel.select(&ctx, 20);
        assert_eq!(picked.len(), 20);
        validate_selection(&picked, ctx.candidates(), 20).unwrap();
    }

    #[test]
    fn covers_multiple_classes_like_a_clustering_method_should() {
        let ds = papers_like(600, 42);
        let ctx = SelectionContext::new(&ds, 2);
        let mut sel = FeatPropSelector::new(3);
        let picked = sel.select(&ctx, ds.num_classes);
        let classes: std::collections::HashSet<u32> =
            picked.iter().map(|&v| ds.labels[v as usize]).collect();
        assert!(
            classes.len() >= ds.num_classes / 3,
            "classes covered: {}",
            classes.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = papers_like(300, 43);
        let ctx = SelectionContext::new(&ds, 3);
        let a = FeatPropSelector::new(7).select(&ctx, 10);
        let b = FeatPropSelector::new(7).select(&ctx, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn oracle_free() {
        assert!(!FeatPropSelector::new(0).is_learning_based());
    }
}

//! Maximum-degree selection baseline.

use crate::context::SelectionContext;
use crate::traits::NodeSelector;

/// Picks the highest-degree candidates (ties toward smaller node id).
#[derive(Clone, Debug, Default)]
pub struct DegreeSelector;

impl DegreeSelector {
    /// New degree selector.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl NodeSelector for DegreeSelector {
    fn name(&self) -> &'static str {
        "degree"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32> {
        let mut pool = ctx.candidates().to_vec();
        pool.sort_by(|&a, &b| {
            ctx.dataset
                .graph
                .degree(b as usize)
                .cmp(&ctx.dataset.graph.degree(a as usize))
                .then(a.cmp(&b))
        });
        pool.truncate(budget);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_selection;
    use grain_data::synthetic::papers_like;

    #[test]
    fn picks_highest_degree_nodes() {
        let ds = papers_like(300, 4);
        let ctx = SelectionContext::new(&ds, 1);
        let mut sel = DegreeSelector::new();
        let picked = sel.select(&ctx, 10);
        validate_selection(&picked, ctx.candidates(), 10).unwrap();
        let min_picked = picked
            .iter()
            .map(|&v| ds.graph.degree(v as usize))
            .min()
            .unwrap();
        let max_unpicked = ctx
            .candidates()
            .iter()
            .filter(|v| !picked.contains(v))
            .map(|&v| ds.graph.degree(v as usize))
            .max()
            .unwrap();
        assert!(min_picked >= max_unpicked);
    }

    #[test]
    fn deterministic() {
        let ds = papers_like(200, 5);
        let ctx = SelectionContext::new(&ds, 1);
        let mut sel = DegreeSelector::new();
        assert_eq!(sel.select(&ctx, 8), sel.select(&ctx, 8));
    }
}

//! K-Center-Greedy (Sener & Savarese 2018) over the smoothed embedding.
//!
//! Greedy 2-approximation of the k-center problem: repeatedly pick the
//! candidate farthest from the current center set. Distances operate on
//! the propagated features (the "FeatProp practice" the paper follows for
//! embedding-space baselines).

use crate::context::SelectionContext;
use crate::traits::NodeSelector;
use grain_linalg::distance::sq_euclidean;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// K-Center-Greedy selector.
#[derive(Clone, Debug)]
pub struct KCenterGreedySelector {
    seed: u64,
}

impl KCenterGreedySelector {
    /// Seeded selector (the seed picks the initial center).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl NodeSelector for KCenterGreedySelector {
    fn name(&self) -> &'static str {
        "kcg"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32> {
        let pool = ctx.candidates();
        if pool.is_empty() || budget == 0 {
            return Vec::new();
        }
        let emb = ctx.smoothed();
        let budget = budget.min(pool.len());
        let mut rng = StdRng::seed_from_u64(self.seed ^ ctx.seed);
        let first = pool[rng.random_range(0..pool.len())];
        let mut selected = vec![first];
        // mind[i] = distance of pool[i] to nearest selected center.
        let mut mind: Vec<f32> = pool
            .iter()
            .map(|&v| sq_euclidean(emb.row(v as usize), emb.row(first as usize)))
            .collect();
        while selected.len() < budget {
            // Farthest-first traversal; ties toward smaller id.
            let mut best = 0usize;
            for i in 1..pool.len() {
                if mind[i] > mind[best] || (mind[i] == mind[best] && pool[i] < pool[best]) {
                    best = i;
                }
            }
            if mind[best] <= 0.0 {
                // Pool exhausted of distinct points; fill with unselected ids.
                for &v in pool {
                    if !selected.contains(&v) {
                        selected.push(v);
                        if selected.len() == budget {
                            break;
                        }
                    }
                }
                break;
            }
            let chosen = pool[best];
            selected.push(chosen);
            for (i, &v) in pool.iter().enumerate() {
                let d = sq_euclidean(emb.row(v as usize), emb.row(chosen as usize));
                if d < mind[i] {
                    mind[i] = d;
                }
            }
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_selection;
    use grain_data::synthetic::papers_like;

    #[test]
    fn covers_distinct_regions() {
        let ds = papers_like(400, 6);
        let ctx = SelectionContext::new(&ds, 2);
        let mut sel = KCenterGreedySelector::new(3);
        let picked = sel.select(&ctx, ds.num_classes);
        validate_selection(&picked, ctx.candidates(), ds.num_classes).unwrap();
        // Farthest-first should touch several distinct classes.
        let classes: std::collections::HashSet<u32> =
            picked.iter().map(|&v| ds.labels[v as usize]).collect();
        assert!(classes.len() >= 3, "only {} classes covered", classes.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = papers_like(300, 7);
        let ctx = SelectionContext::new(&ds, 2);
        let a = KCenterGreedySelector::new(5).select(&ctx, 12);
        let b = KCenterGreedySelector::new(5).select(&ctx, 12);
        assert_eq!(a, b);
    }

    #[test]
    fn handles_budget_beyond_pool() {
        let ds = papers_like(100, 8);
        let ctx = SelectionContext::new(&ds, 2);
        let mut sel = KCenterGreedySelector::new(1);
        let picked = sel.select(&ctx, 10_000);
        assert_eq!(picked.len(), ctx.candidates().len());
    }
}

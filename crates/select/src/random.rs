//! Random selection baseline.

use crate::context::SelectionContext;
use crate::traits::NodeSelector;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Uniformly random selection from the candidate pool.
#[derive(Clone, Debug)]
pub struct RandomSelector {
    seed: u64,
    draws: u64,
}

impl RandomSelector {
    /// Seeded random selector.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed, draws: 0 }
    }
}

impl NodeSelector for RandomSelector {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, budget: usize) -> Vec<u32> {
        // Distinct stream per call so repeated runs are independent draws.
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ ctx.seed.wrapping_mul(0x9e37_79b9).wrapping_add(self.draws),
        );
        self.draws += 1;
        let mut pool = ctx.candidates().to_vec();
        pool.shuffle(&mut rng);
        pool.truncate(budget);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_selection;
    use grain_data::synthetic::papers_like;

    #[test]
    fn selects_valid_subsets() {
        let ds = papers_like(300, 1);
        let ctx = SelectionContext::new(&ds, 5);
        let mut sel = RandomSelector::new(1);
        let picked = sel.select(&ctx, 20);
        assert_eq!(picked.len(), 20);
        validate_selection(&picked, ctx.candidates(), 20).unwrap();
    }

    #[test]
    fn successive_calls_differ() {
        let ds = papers_like(300, 2);
        let ctx = SelectionContext::new(&ds, 5);
        let mut sel = RandomSelector::new(1);
        let a = sel.select(&ctx, 15);
        let b = sel.select(&ctx, 15);
        assert_ne!(a, b);
    }

    #[test]
    fn budget_larger_than_pool_returns_pool() {
        let ds = papers_like(100, 3);
        let ctx = SelectionContext::new(&ds, 5);
        let mut sel = RandomSelector::new(2);
        let picked = sel.select(&ctx, 10_000);
        assert_eq!(picked.len(), ctx.candidates().len());
    }
}

//! Planetoid-style dataset loader.
//!
//! The synthetic corpora drive the reproduction, but users who *do* have
//! the original citation files can load them directly. The format is the
//! classic `<name>.content` / `<name>.cites` pair used by Cora/Citeseer:
//!
//! ```text
//! <name>.content:  <paper_id> <w_1> ... <w_d> <class_label>
//! <name>.cites:    <cited_paper_id> <citing_paper_id>
//! ```
//!
//! Paper ids are arbitrary strings; classes are named strings. Both are
//! re-indexed densely in first-appearance order, which keeps loading
//! deterministic. Citations pointing at unknown papers are skipped with a
//! count (the raw Citeseer dump famously contains dangling references).

use crate::dataset::Dataset;
use crate::splits::capped_split;
use grain_graph::Graph;
use grain_linalg::DenseMatrix;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};

/// Errors raised while parsing Planetoid-style files.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed line with 1-based number and description.
    Parse {
        /// Source file ("content" or "cites").
        file: &'static str,
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The content file was empty.
    Empty,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "dataset I/O error: {e}"),
            LoadError::Parse {
                file,
                line,
                message,
            } => {
                write!(f, "{file} file, line {line}: {message}")
            }
            LoadError::Empty => write!(f, "content file holds no nodes"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Result of a load: the dataset plus parse diagnostics.
#[derive(Debug)]
pub struct LoadedDataset {
    /// The assembled dataset (random capped split applied).
    pub dataset: Dataset,
    /// Citations referencing unknown paper ids (skipped).
    pub dangling_citations: usize,
}

/// Loads a Planetoid-style content/cites pair.
///
/// `val_target`/`test_target` size the split (see
/// [`crate::splits::capped_split`]); `seed` fixes the split permutation.
pub fn load_planetoid(
    name: &str,
    content: impl Read,
    cites: impl Read,
    val_target: usize,
    test_target: usize,
    seed: u64,
) -> Result<LoadedDataset, LoadError> {
    // --- content: ids, features, labels ---
    let mut ids: HashMap<String, u32> = HashMap::new();
    let mut classes: HashMap<String, u32> = HashMap::new();
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut labels: Vec<u32> = Vec::new();
    let mut dim: Option<usize> = None;
    for (i, line) in BufReader::new(content).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let fields: Vec<&str> = t.split_whitespace().collect();
        if fields.len() < 3 {
            return Err(LoadError::Parse {
                file: "content",
                line: i + 1,
                message: format!("expected id, features, label; got {} fields", fields.len()),
            });
        }
        let id = fields[0];
        let label = fields[fields.len() - 1];
        let feats = &fields[1..fields.len() - 1];
        match dim {
            None => dim = Some(feats.len()),
            Some(d) if d != feats.len() => {
                return Err(LoadError::Parse {
                    file: "content",
                    line: i + 1,
                    message: format!("feature width {} != {}", feats.len(), d),
                })
            }
            _ => {}
        }
        if ids.contains_key(id) {
            return Err(LoadError::Parse {
                file: "content",
                line: i + 1,
                message: format!("duplicate paper id {id:?}"),
            });
        }
        let node = ids.len() as u32;
        ids.insert(id.to_string(), node);
        let next_class = classes.len() as u32;
        let class = *classes.entry(label.to_string()).or_insert(next_class);
        labels.push(class);
        let mut row = Vec::with_capacity(feats.len());
        for (fi, tok) in feats.iter().enumerate() {
            let v: f32 = tok.parse().map_err(|_| LoadError::Parse {
                file: "content",
                line: i + 1,
                message: format!("feature {fi} is not a number: {tok:?}"),
            })?;
            row.push(v);
        }
        rows.push(row);
    }
    let n = rows.len();
    if n == 0 {
        return Err(LoadError::Empty);
    }
    let d = dim.unwrap_or(0);
    let mut features = DenseMatrix::zeros(n, d);
    for (v, row) in rows.iter().enumerate() {
        features.row_mut(v).copy_from_slice(row);
    }

    // --- cites: edges ---
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut dangling = 0usize;
    for (i, line) in BufReader::new(cites).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let mut parts = t.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(LoadError::Parse {
                file: "cites",
                line: i + 1,
                message: "expected two paper ids".to_string(),
            });
        };
        match (ids.get(a), ids.get(b)) {
            (Some(&u), Some(&v)) => edges.push((u, v)),
            _ => dangling += 1,
        }
    }
    let graph = Graph::from_edges(n, &edges);
    let split = capped_split(n, val_target, test_target, seed);
    Ok(LoadedDataset {
        dataset: Dataset {
            name: name.to_string(),
            graph,
            features,
            num_classes: classes.len(),
            labels,
            split,
        },
        dangling_citations: dangling,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONTENT: &str = "\
paper_a 1 0 0 ml\n\
paper_b 0 1 0 ml\n\
paper_c 0 0 1 db\n\
paper_d 1 1 0 db\n";

    const CITES: &str = "\
paper_a paper_b\n\
paper_b paper_c\n\
paper_x paper_a\n";

    #[test]
    fn loads_nodes_edges_and_classes() {
        let loaded = load_planetoid("toy", CONTENT.as_bytes(), CITES.as_bytes(), 1, 1, 7).unwrap();
        let ds = &loaded.dataset;
        assert_eq!(ds.num_nodes(), 4);
        assert_eq!(ds.feature_dim(), 3);
        assert_eq!(ds.num_classes, 2);
        assert_eq!(ds.graph.num_edges(), 2);
        assert_eq!(loaded.dangling_citations, 1);
        // First-appearance class indexing: ml = 0, db = 1.
        assert_eq!(ds.labels, vec![0, 0, 1, 1]);
    }

    #[test]
    fn split_partitions_all_nodes() {
        let loaded = load_planetoid("toy", CONTENT.as_bytes(), CITES.as_bytes(), 1, 1, 7).unwrap();
        let s = &loaded.dataset.split;
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), 4);
    }

    #[test]
    fn rejects_ragged_features() {
        let bad = "a 1 0 ml\nb 1 x\n";
        let err = load_planetoid("t", bad.as_bytes(), "".as_bytes(), 1, 1, 1).unwrap_err();
        assert!(
            matches!(
                err,
                LoadError::Parse {
                    file: "content",
                    line: 2,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn rejects_duplicate_ids() {
        let bad = "a 1 0 ml\na 0 1 db\n";
        let err = load_planetoid("t", bad.as_bytes(), "".as_bytes(), 1, 1, 1).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_non_numeric_features() {
        let bad = "a 1 zz ml\n";
        let err = load_planetoid("t", bad.as_bytes(), "".as_bytes(), 1, 1, 1).unwrap_err();
        assert!(err.to_string().contains("not a number"));
    }

    #[test]
    fn empty_content_is_an_error() {
        let err = load_planetoid("t", "".as_bytes(), "".as_bytes(), 1, 1, 1).unwrap_err();
        assert!(matches!(err, LoadError::Empty));
    }

    #[test]
    fn loaded_dataset_flows_through_selection() {
        let loaded = load_planetoid("toy", CONTENT.as_bytes(), CITES.as_bytes(), 1, 1, 7).unwrap();
        let ds = &loaded.dataset;
        let outcome = grain_core::SelectionEngine::new(
            grain_core::GrainConfig::ball_d(),
            &ds.graph,
            &ds.features,
        )
        .unwrap()
        .select(&ds.split.train, 1);
        assert_eq!(outcome.selected.len(), 1);
    }
}

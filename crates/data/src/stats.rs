//! Dataset summary statistics (the Table 5 row for a generated corpus).

use crate::dataset::Dataset;

/// Summary row describing a dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Corpus name.
    pub name: String,
    /// Node count.
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Feature dimensionality.
    pub features: usize,
    /// Class count.
    pub classes: usize,
    /// Mean (directed) degree.
    pub mean_degree: f64,
    /// Edge homophily in `[0, 1]`.
    pub homophily: f64,
    /// Split sizes `(train, val, test)`.
    pub split_sizes: (usize, usize, usize),
}

impl DatasetStats {
    /// Computes the summary for a dataset.
    pub fn of(d: &Dataset) -> Self {
        Self {
            name: d.name.clone(),
            nodes: d.num_nodes(),
            edges: d.graph.num_edges(),
            features: d.feature_dim(),
            classes: d.num_classes,
            mean_degree: d.graph.mean_degree(),
            homophily: d.edge_homophily(),
            split_sizes: (d.split.train.len(), d.split.val.len(), d.split.test.len()),
        }
    }

    /// Markdown table row (harness output format).
    pub fn markdown_row(&self) -> String {
        format!(
            "| {} | {} | {} | {} | {} | {:.1} | {:.2} | {}/{}/{} |",
            self.name,
            self.nodes,
            self.edges,
            self.features,
            self.classes,
            self.mean_degree,
            self.homophily,
            self.split_sizes.0,
            self.split_sizes.1,
            self.split_sizes.2,
        )
    }

    /// Markdown table header matching [`DatasetStats::markdown_row`].
    pub fn markdown_header() -> String {
        "| dataset | nodes | edges | features | classes | mean deg | homophily | train/val/test |\n\
         |---|---|---|---|---|---|---|---|"
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::cora_like;

    #[test]
    fn stats_reflect_dataset() {
        let d = cora_like(1);
        let s = DatasetStats::of(&d);
        assert_eq!(s.nodes, 2708);
        assert_eq!(s.classes, 7);
        assert_eq!(s.split_sizes.1, 500);
        assert!(s.homophily > 0.5);
    }

    #[test]
    fn markdown_row_contains_name() {
        let d = cora_like(2);
        let row = DatasetStats::of(&d).markdown_row();
        assert!(row.contains("cora-like"));
        assert!(row.starts_with('|') && row.ends_with('|'));
    }
}

//! Synthetic benchmark datasets mirroring the Grain evaluation corpora.
//!
//! The paper evaluates on Cora, Citeseer, PubMed (citation networks),
//! Reddit (a dense social network) and ogbn-papers100M. None are available
//! in this environment, so this crate synthesizes structural stand-ins from
//! a degree-corrected stochastic block model with class-conditional
//! features (see DESIGN.md for the substitution argument): node counts,
//! class counts and mean degrees follow Table 5 of the paper; feature
//! dimensionality is scaled down (the original bag-of-words dimensions
//! exist only in the real corpora), and Reddit / papers100M are scaled to
//! laptop size while preserving the density contrasts the paper's
//! conclusions rely on.
//!
//! ```
//! use grain_data::synthetic;
//!
//! // A Cora-scale stand-in at a custom node count, deterministic per
//! // seed: same corpus every run, everywhere.
//! let dataset = synthetic::papers_like(400, 42);
//! assert_eq!(dataset.graph.num_nodes(), 400);
//! assert_eq!(dataset.features.rows(), 400);
//! assert_eq!(dataset.labels.len(), 400);
//! assert!(dataset.num_classes > 1);
//!
//! // The train/val/test partition is disjoint.
//! let split = &dataset.split;
//! assert!(split.train.iter().all(|v| !split.val.contains(v) && !split.test.contains(v)));
//!
//! let again = synthetic::papers_like(400, 42);
//! assert_eq!(dataset.labels, again.labels);
//! ```

pub mod dataset;
pub mod loader;
pub mod splits;
pub mod stats;
pub mod synthetic;

pub use dataset::{Dataset, Split};
pub use loader::load_planetoid;
pub use synthetic::{citeseer_like, cora_like, papers_like, pubmed_like, reddit_like, CorpusSpec};

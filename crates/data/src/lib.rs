//! Synthetic benchmark datasets mirroring the Grain evaluation corpora.
//!
//! The paper evaluates on Cora, Citeseer, PubMed (citation networks),
//! Reddit (a dense social network) and ogbn-papers100M. None are available
//! in this environment, so this crate synthesizes structural stand-ins from
//! a degree-corrected stochastic block model with class-conditional
//! features (see DESIGN.md for the substitution argument): node counts,
//! class counts and mean degrees follow Table 5 of the paper; feature
//! dimensionality is scaled down (the original bag-of-words dimensions
//! exist only in the real corpora), and Reddit / papers100M are scaled to
//! laptop size while preserving the density contrasts the paper's
//! conclusions rely on.

pub mod dataset;
pub mod loader;
pub mod splits;
pub mod stats;
pub mod synthetic;

pub use dataset::{Dataset, Split};
pub use loader::load_planetoid;
pub use synthetic::{citeseer_like, cora_like, papers_like, pubmed_like, reddit_like, CorpusSpec};

//! The dataset container shared by selection and training code.

use grain_graph::Graph;
use grain_linalg::DenseMatrix;

/// Train/validation/test node partition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Split {
    /// Selection pool / training candidates.
    pub train: Vec<u32>,
    /// Early-stopping validation nodes.
    pub val: Vec<u32>,
    /// Held-out evaluation nodes.
    pub test: Vec<u32>,
}

impl Split {
    /// Asserts the partition is disjoint and in-range; returns `self` for
    /// chaining.
    pub fn validated(self, num_nodes: usize) -> Self {
        let mut seen = vec![false; num_nodes];
        for part in [&self.train, &self.val, &self.test] {
            for &v in part {
                assert!((v as usize) < num_nodes, "split node {v} out of range");
                assert!(!seen[v as usize], "split parts overlap at node {v}");
                seen[v as usize] = true;
            }
        }
        self
    }
}

/// An attributed, labeled graph with a fixed split.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Corpus name ("cora-like", ...).
    pub name: String,
    /// The graph.
    pub graph: Graph,
    /// Node features `X^(0)` (`n x d`).
    pub features: DenseMatrix,
    /// Ground-truth class per node.
    pub labels: Vec<u32>,
    /// Number of classes `C`.
    pub num_classes: usize,
    /// Node partition.
    pub split: Split,
}

impl Dataset {
    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// The paper's budget unit: `m · C` labeled nodes ("2C to 20C").
    pub fn budget(&self, multiplier: usize) -> usize {
        self.num_classes * multiplier
    }

    /// Edge homophily: fraction of edges joining same-class endpoints.
    pub fn edge_homophily(&self) -> f64 {
        let mut same = 0usize;
        let mut total = 0usize;
        for u in 0..self.num_nodes() {
            for &v in self.graph.neighbors(u) {
                total += 1;
                if self.labels[u] == self.labels[v as usize] {
                    same += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            same as f64 / total as f64
        }
    }

    /// Class histogram.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_graph::Graph;

    fn tiny() -> Dataset {
        Dataset {
            name: "tiny".into(),
            graph: Graph::from_edges(4, &[(0, 1), (2, 3), (1, 2)]),
            features: DenseMatrix::zeros(4, 2),
            labels: vec![0, 0, 1, 1],
            num_classes: 2,
            split: Split {
                train: vec![0, 1],
                val: vec![2],
                test: vec![3],
            },
        }
    }

    #[test]
    fn homophily_counts_same_class_edges() {
        let d = tiny();
        // Edges: (0,1) same, (2,3) same, (1,2) cross -> 2/3.
        assert!((d.edge_homophily() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn budget_is_multiplier_times_classes() {
        assert_eq!(tiny().budget(20), 40);
    }

    #[test]
    fn class_counts_sum_to_n() {
        let d = tiny();
        assert_eq!(d.class_counts(), vec![2, 2]);
    }

    #[test]
    fn split_validation_accepts_disjoint() {
        let s = Split {
            train: vec![0],
            val: vec![1],
            test: vec![2],
        };
        let _ = s.validated(4);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn split_validation_rejects_overlap() {
        let s = Split {
            train: vec![0, 1],
            val: vec![1],
            test: vec![],
        };
        let _ = s.validated(4);
    }
}

//! Corpus generators (the Table 5 stand-ins).
//!
//! Each corpus is a degree-corrected planted-partition graph whose node
//! count, class count and mean degree follow the original dataset, plus
//! class-conditional features: class `c` owns a random subset of feature
//! coordinates; members express those coordinates strongly and others
//! weakly, with additive noise. That is the standard synthetic analogue of
//! bag-of-words citation features and preserves exactly what Grain
//! consumes: homophilous structure and class-correlated geometry.

use crate::dataset::Dataset;
use crate::splits::capped_split;
use grain_graph::generators::{degree_corrected_sbm, SbmConfig};
use grain_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic corpus.
#[derive(Clone, Debug)]
pub struct CorpusSpec {
    /// Corpus display name.
    pub name: String,
    /// Total nodes.
    pub num_nodes: usize,
    /// Number of classes (= SBM blocks).
    pub num_classes: usize,
    /// Expected intra-community degree.
    pub mean_degree_in: f64,
    /// Expected inter-community degree.
    pub mean_degree_out: f64,
    /// Degree-propensity Pareto shape (0 = uniform degrees).
    pub degree_exponent: f64,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Feature noise amplitude (0 = pure class signal).
    pub feature_noise: f32,
    /// Structural/feature modes per class (sub-communities). Classes with
    /// several internal modes need *diverse* labels to cover — the regime
    /// the paper's diversity term targets. 1 = homogeneous classes.
    pub subcommunities: usize,
    /// Validation-set size target.
    pub val_target: usize,
    /// Test-set size target.
    pub test_target: usize,
}

impl CorpusSpec {
    /// Materializes the corpus deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.num_classes >= 2, "need at least two classes");
        let sub = self.subcommunities.max(1);
        let blocks = self.num_classes * sub;
        let base = self.num_nodes / blocks;
        assert!(base >= 2, "corpus too small for {blocks} blocks");
        let mut block_sizes = vec![base; blocks];
        block_sizes[0] += self.num_nodes - base * blocks;
        let sbm = SbmConfig {
            block_sizes,
            mean_degree_in: self.mean_degree_in,
            mean_degree_out: self.mean_degree_out,
            degree_exponent: self.degree_exponent,
        };
        let (graph, block_labels) = degree_corrected_sbm(&sbm, seed);
        // Block b belongs to class b / sub.
        let labels: Vec<u32> = block_labels.iter().map(|&b| b / sub as u32).collect();
        let features = block_class_features(
            &block_labels,
            self.num_classes,
            sub,
            self.feature_dim,
            self.feature_noise,
            seed ^ 0x5eed_f00d,
        );
        let split = capped_split(
            self.num_nodes,
            self.val_target,
            self.test_target,
            seed ^ 0x51e7,
        );
        Dataset {
            name: self.name.clone(),
            graph,
            features,
            labels,
            num_classes: self.num_classes,
            split,
        }
    }
}

/// Block- and class-conditional noisy features.
///
/// Every class owns a weak shared coordinate bundle (`j ≡ c (mod C)`);
/// every sub-community (block) additionally owns a stronger random bundle.
/// Nodes express each active coordinate with probability `signal_keep` and
/// additive noise on top. The result: classes are multi-modal in feature
/// space, raw features are only weakly separable, and covering a class
/// requires labels from several of its modes — the regime where labeling
/// budget, propagation and selection diversity all matter, as on the real
/// corpora.
pub fn block_class_features(
    block_labels: &[u32],
    num_classes: usize,
    subcommunities: usize,
    dim: usize,
    noise: f32,
    seed: u64,
) -> DenseMatrix {
    let n = block_labels.len();
    let blocks = num_classes * subcommunities.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-block center = weak class bundle + strong block bundle.
    let mut centers = DenseMatrix::zeros(blocks, dim);
    for b in 0..blocks {
        let class = b / subcommunities.max(1);
        let row = centers.row_mut(b);
        for (j, v) in row.iter_mut().enumerate() {
            if j % num_classes == class {
                *v = 0.5;
            }
        }
        for _ in 0..(dim / blocks).max(2) {
            let j = rng.random_range(0..dim);
            row[j] = 1.0;
        }
    }
    let signal_keep = 0.5f32;
    let mut x = DenseMatrix::zeros(n, dim);
    for (v, &block) in block_labels.iter().enumerate() {
        let center = centers.row(block as usize).to_vec();
        let row = x.row_mut(v);
        for (j, value) in row.iter_mut().enumerate() {
            let expressed = center[j] > 0.0 && rng.random::<f32>() < signal_keep;
            let base = if expressed {
                0.15 + 0.5 * center[j]
            } else {
                0.12
            };
            *value = (base + (rng.random::<f32>() - 0.5) * 2.0 * noise).max(0.0);
        }
    }
    x
}

/// Cora stand-in: 2708 nodes, 7 classes, mean degree ≈ 4 (Table 5), sparse
/// power-law citations. Feature dim scaled 1433 → 128 (see module docs).
pub fn cora_like(seed: u64) -> Dataset {
    CorpusSpec {
        name: "cora-like".into(),
        num_nodes: 2708,
        num_classes: 7,
        mean_degree_in: 3.2,
        mean_degree_out: 0.8,
        degree_exponent: 2.5,
        feature_dim: 128,
        feature_noise: 0.5,
        subcommunities: 3,
        val_target: 500,
        test_target: 1000,
    }
    .generate(seed)
}

/// Citeseer stand-in: 3327 nodes, 6 classes, mean degree ≈ 2.8 — the
/// sparsest corpus, where ball-D's variance reduction matters most.
pub fn citeseer_like(seed: u64) -> Dataset {
    CorpusSpec {
        name: "citeseer-like".into(),
        num_nodes: 3327,
        num_classes: 6,
        mean_degree_in: 2.2,
        mean_degree_out: 0.6,
        degree_exponent: 2.5,
        feature_dim: 128,
        feature_noise: 0.55,
        subcommunities: 3,
        val_target: 500,
        test_target: 1000,
    }
    .generate(seed)
}

/// PubMed stand-in: 19717 nodes, 3 classes, mean degree ≈ 4.5. Feature dim
/// scaled 500 → 96.
pub fn pubmed_like(seed: u64) -> Dataset {
    CorpusSpec {
        name: "pubmed-like".into(),
        num_nodes: 19_717,
        num_classes: 3,
        mean_degree_in: 3.5,
        mean_degree_out: 1.0,
        degree_exponent: 2.0,
        feature_dim: 96,
        feature_noise: 0.5,
        subcommunities: 4,
        val_target: 500,
        test_target: 1000,
    }
    .generate(seed)
}

/// Reddit stand-in, scaled 232965 → 20000 nodes and 41 → 16 classes while
/// keeping the defining property: a *dense* social graph (mean degree ≈ 40
/// here vs ≈ 100 in the original, against ≈ 4 for citations). The paper's
/// ball-D vs NN-D crossover rides on this density contrast.
pub fn reddit_like(seed: u64) -> Dataset {
    CorpusSpec {
        name: "reddit-like".into(),
        num_nodes: 20_000,
        num_classes: 16,
        mean_degree_in: 32.0,
        mean_degree_out: 8.0,
        degree_exponent: 1.8,
        feature_dim: 64,
        feature_noise: 0.45,
        subcommunities: 2,
        val_target: 2000,
        test_target: 5000,
    }
    .generate(seed)
}

/// ogbn-papers100M stand-in at arbitrary scale `n` (used for the Figure
/// 6(b)/9 scaling curves at 10k–200k nodes).
pub fn papers_like(n: usize, seed: u64) -> Dataset {
    CorpusSpec {
        name: format!("papers-like-{n}"),
        num_nodes: n,
        num_classes: 16,
        mean_degree_in: 10.0,
        mean_degree_out: 4.0,
        degree_exponent: 2.2,
        feature_dim: 64,
        feature_noise: 0.55,
        subcommunities: 3,
        val_target: n / 20,
        test_target: n / 10,
    }
    .generate(seed)
}

/// Registry lookup for the harness CLI (`--dataset cora-like`).
///
/// Unknown names return `None`; `papers-like-N` parses its node count.
pub fn by_name(name: &str, seed: u64) -> Option<Dataset> {
    match name {
        "cora-like" => Some(cora_like(seed)),
        "citeseer-like" => Some(citeseer_like(seed)),
        "pubmed-like" => Some(pubmed_like(seed)),
        "reddit-like" => Some(reddit_like(seed)),
        _ => name
            .strip_prefix("papers-like-")
            .and_then(|n| n.parse::<usize>().ok())
            .map(|n| papers_like(n, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cora_like_matches_table5_shape() {
        let d = cora_like(1);
        assert_eq!(d.num_nodes(), 2708);
        assert_eq!(d.num_classes, 7);
        let md = d.graph.mean_degree();
        assert!(md > 2.5 && md < 6.5, "mean degree {md}");
        assert_eq!(d.split.val.len(), 500);
        assert_eq!(d.split.test.len(), 1000);
        assert!(d.edge_homophily() > 0.6, "homophily {}", d.edge_homophily());
    }

    #[test]
    fn citeseer_like_is_sparsest() {
        let cit = citeseer_like(2);
        let cora = cora_like(2);
        assert!(cit.graph.mean_degree() < cora.graph.mean_degree());
    }

    #[test]
    fn reddit_like_is_dense() {
        let d = reddit_like(3);
        assert!(
            d.graph.mean_degree() > 25.0,
            "mean degree {}",
            d.graph.mean_degree()
        );
        assert_eq!(d.num_classes, 16);
    }

    #[test]
    fn papers_like_scales() {
        let small = papers_like(1000, 4);
        let large = papers_like(5000, 4);
        assert_eq!(small.num_nodes(), 1000);
        assert_eq!(large.num_nodes(), 5000);
    }

    #[test]
    fn features_are_class_informative() {
        // Nearest-centroid on raw features should beat chance easily.
        let d = CorpusSpec {
            name: "t".into(),
            num_nodes: 300,
            num_classes: 3,
            mean_degree_in: 4.0,
            mean_degree_out: 1.0,
            degree_exponent: 0.0,
            feature_dim: 30,
            feature_noise: 0.3,
            subcommunities: 2,
            val_target: 30,
            test_target: 30,
        }
        .generate(5);
        let mut centers = DenseMatrix::zeros(3, 30);
        let mut counts = [0usize; 3];
        for v in 0..300 {
            let c = d.labels[v] as usize;
            counts[c] += 1;
            for j in 0..30 {
                let val = centers.get(c, j) + d.features.get(v, j);
                centers.set(c, j, val);
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            for j in 0..30 {
                let val = centers.get(c, j) / count as f32;
                centers.set(c, j, val);
            }
        }
        let assign = grain_linalg::distance::nearest_center(&d.features, &centers);
        let correct = assign
            .iter()
            .zip(&d.labels)
            .filter(|(&a, &l)| a == l as usize)
            .count();
        // Sub-community modes make raw features only weakly separable;
        // still must clearly beat the 100/300 chance level.
        assert!(correct > 140, "nearest-centroid accuracy {correct}/300");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = cora_like(9);
        let b = cora_like(9);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.features, b.features);
        assert_eq!(a.graph.adjacency(), b.graph.adjacency());
        assert_eq!(a.split, b.split);
    }

    #[test]
    fn registry_resolves_names() {
        assert!(by_name("cora-like", 1).is_some());
        assert!(by_name("papers-like-500", 1).is_some());
        assert!(by_name("unknown", 1).is_none());
    }
}

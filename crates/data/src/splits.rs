//! Node-partition construction mirroring Table 5 of the paper.
//!
//! The paper's splits give most nodes to the selection pool and reserve
//! fixed-size validation/test sets (e.g. Cora 1208/500/1000). We mirror
//! that: caps when the graph is large enough, proportional fallbacks when a
//! scaled corpus is smaller.

use crate::dataset::Split;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Random split with target validation/test sizes; the remainder trains.
///
/// `val_target` and `test_target` are clamped so the train pool keeps at
/// least a tenth of the nodes (Cora's paper split trains on fewer than
/// half: 1208/500/1000).
pub fn capped_split(n: usize, val_target: usize, test_target: usize, seed: u64) -> Split {
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let budget = n - n.div_ceil(10);
    let val = val_target.min(budget / 3);
    let test = test_target.min(budget - val);
    let (test_part, rest) = order.split_at(test);
    let (val_part, train_part) = rest.split_at(val);
    let mut split = Split {
        train: train_part.to_vec(),
        val: val_part.to_vec(),
        test: test_part.to_vec(),
    };
    split.train.sort_unstable();
    split.val.sort_unstable();
    split.test.sort_unstable();
    split.validated(n)
}

/// Stratified split: validation/test sets contain equal-per-class samples,
/// used when class balance matters (small budgets on many-class corpora).
pub fn stratified_split(
    labels: &[u32],
    num_classes: usize,
    val_per_class: usize,
    test_per_class: usize,
    seed: u64,
) -> Split {
    let mut by_class: Vec<Vec<u32>> = vec![Vec::new(); num_classes];
    for (v, &c) in labels.iter().enumerate() {
        by_class[c as usize].push(v as u32);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut split = Split::default();
    for nodes in &mut by_class {
        nodes.shuffle(&mut rng);
        let take_test = test_per_class.min(nodes.len() / 3);
        let take_val = val_per_class.min((nodes.len() - take_test) / 3);
        split.test.extend(&nodes[..take_test]);
        split.val.extend(&nodes[take_test..take_test + take_val]);
        split.train.extend(&nodes[take_test + take_val..]);
    }
    split.train.sort_unstable();
    split.val.sort_unstable();
    split.test.sort_unstable();
    split.validated(labels.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_split_partitions_all_nodes() {
        let s = capped_split(100, 20, 30, 1);
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), 100);
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.test.len(), 30);
    }

    #[test]
    fn capped_split_clamps_small_graphs() {
        let s = capped_split(20, 500, 1000, 2);
        // Train keeps at least a tenth of the nodes.
        assert!(s.train.len() >= 2, "train too small: {}", s.train.len());
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), 20);
    }

    #[test]
    fn capped_split_deterministic() {
        assert_eq!(capped_split(50, 10, 10, 7), capped_split(50, 10, 10, 7));
        assert_ne!(capped_split(50, 10, 10, 7), capped_split(50, 10, 10, 8));
    }

    #[test]
    fn stratified_split_balances_classes() {
        let labels: Vec<u32> = (0..90).map(|i| (i % 3) as u32).collect();
        let s = stratified_split(&labels, 3, 5, 5, 3);
        for c in 0..3u32 {
            let val_c = s.val.iter().filter(|&&v| labels[v as usize] == c).count();
            let test_c = s.test.iter().filter(|&&v| labels[v as usize] == c).count();
            assert_eq!(val_c, 5);
            assert_eq!(test_c, 5);
        }
    }

    #[test]
    fn stratified_split_handles_tiny_classes() {
        let labels = vec![0u32, 0, 1];
        let s = stratified_split(&labels, 2, 10, 10, 4);
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), 3);
    }
}

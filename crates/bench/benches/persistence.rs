//! Warm-start persistence benchmark, emitting `results/BENCH_persist.json`.
//!
//! The artifact store's headline claim: standing the serving artifacts
//! up from disk is an order of magnitude (or more) cheaper than
//! computing them. Per rung of a Barabási–Albert ladder the JSON
//! records three request classes against the same corpus and config:
//!
//! * **compute cold build** — first request of a store-backed service on
//!   an empty directory: full propagation → influence → index compute,
//!   plus the save-on-build writes (per-stage compute breakdown
//!   attached);
//! * **store-load** — first request of a *fresh* service (empty pool —
//!   a process restart) over the now-populated directory: engine
//!   construction plus three validated disk reads, zero artifact
//!   compute;
//! * **warm hit** — steady-state pool hit on the restarted service, for
//!   scale.
//!
//! Serialized bytes per artifact class (`.prop` / `.rows` / `.index`
//! file sizes) ride along, so the disk cost of the warm start is visible
//! next to its latency win (`load_speedup_vs_cold_x`).
//!
//! CI smoke: `GRAIN_PERSIST_MAX_N` caps the ladder (e.g. `20000`); the
//! committed JSON comes from an uncapped run (n up to 1e5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grain_core::{
    Budget, GrainConfig, GrainService, GrainVariant, GreedyAlgorithm, ScratchDir, SelectionRequest,
};
use grain_graph::{generators, Graph};
use grain_linalg::DenseMatrix;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BUDGET: usize = 64;
const TOP_K: usize = 32;
const FEATURE_DIM: usize = 8;

struct Case {
    name: String,
    samples: Vec<Duration>,
    metrics: Vec<(&'static str, f64)>,
}

fn summarize(samples: &[Duration]) -> (u128, u128, u128) {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted.first().copied().unwrap_or_default().as_nanos();
    let median = sorted
        .get(sorted.len() / 2)
        .copied()
        .unwrap_or_default()
        .as_nanos();
    let mean = if sorted.is_empty() {
        0
    } else {
        sorted.iter().map(Duration::as_nanos).sum::<u128>() / sorted.len() as u128
    };
    (min, median, mean)
}

fn write_json(cases: &[Case]) {
    let dir = format!("{}/../../results", env!("CARGO_MANIFEST_DIR"));
    let mut body = String::from("{\n  \"bench\": \"persist\",\n  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let (min, median, mean) = summarize(&case.samples);
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"median_ns\": {}, \
             \"mean_ns\": {}",
            case.name,
            case.samples.len(),
            min,
            median,
            mean
        ));
        for (key, value) in &case.metrics {
            body.push_str(&format!(", \"{key}\": {value}"));
        }
        body.push_str(if i + 1 == cases.len() { "}\n" } else { "},\n" });
    }
    body.push_str("  ]\n}\n");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = format!("{dir}/BENCH_persist.json");
        match std::fs::write(&path, body) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn features(n: usize) -> DenseMatrix {
    let data: Vec<f32> = (0..n * FEATURE_DIM)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
            (h % 251) as f32 * 0.004 + 0.01
        })
        .collect();
    DenseMatrix::from_vec(n, FEATURE_DIM, data)
}

fn persist_config() -> GrainConfig {
    GrainConfig {
        variant: GrainVariant::NoDiversity,
        gamma: 0.0,
        influence_eps: 1e-4,
        influence_row_top_k: TOP_K,
        algorithm: GreedyAlgorithm::Lazy,
        ..GrainConfig::default()
    }
}

/// Serialized bytes of each artifact class currently in `dir`.
fn serialized_bytes(dir: &std::path::Path) -> (u64, u64, u64) {
    let (mut prop, mut rows, mut index) = (0u64, 0u64, 0u64);
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().to_string();
            let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
            if name.ends_with(".prop.grain") {
                prop += len;
            } else if name.ends_with(".rows.grain") {
                rows += len;
            } else if name.ends_with(".index.grain") {
                index += len;
            }
        }
    }
    (prop, rows, index)
}

fn run_rung(c: &mut Criterion, n: usize, cases: &mut Vec<Case>) {
    let graph_id = format!("ba-{n}");
    let graph: Arc<Graph> = Arc::new(generators::barabasi_albert(n, 4, 42));
    let x: Arc<DenseMatrix> = Arc::new(features(n));
    let request = SelectionRequest::new(&graph_id, persist_config(), Budget::Fixed(BUDGET));
    let scratch = ScratchDir::new(&format!("bench-persist-{n}"));

    // --- Compute cold build: empty store, full artifact compute + save.
    let cold_service = GrainService::with_capacity(2)
        .with_artifact_store(scratch.path())
        .expect("store opens");
    cold_service
        .register_graph(&graph_id, Arc::clone(&graph), Arc::clone(&x))
        .expect("corpus registers");
    let t = Instant::now();
    let cold = cold_service
        .select(&request)
        .expect("cold request succeeds");
    let cold_elapsed = t.elapsed();
    assert!(cold.artifact_builds.propagation_builds > 0);
    let stats = cold_service.store_stats().expect("store attached");
    assert_eq!(stats.saves, 3, "cold build must persist all three stages");
    let (prop_bytes, rows_bytes, index_bytes) = serialized_bytes(scratch.path());
    let timings = &cold.outcome().timings;
    cases.push(Case {
        name: format!("compute-cold-build/{n}"),
        samples: vec![cold_elapsed],
        metrics: vec![
            ("n", n as f64),
            ("propagation_ns", timings.propagation.as_nanos() as f64),
            ("influence_ns", timings.influence.as_nanos() as f64),
            ("indexing_ns", timings.indexing.as_nanos() as f64),
            ("greedy_ns", timings.greedy.as_nanos() as f64),
            ("serialized_prop_bytes", prop_bytes as f64),
            ("serialized_rows_bytes", rows_bytes as f64),
            ("serialized_index_bytes", index_bytes as f64),
            (
                "serialized_total_bytes",
                (prop_bytes + rows_bytes + index_bytes) as f64,
            ),
            ("store_bytes_written", stats.bytes_written as f64),
        ],
    });
    drop(cold_service);

    // --- Store-load: a fresh service per sample (pool empty — a process
    // restart), answering from the populated directory.
    let load_samples = if n >= 100_000 { 3 } else { 5 };
    let mut loads: Vec<Duration> = Vec::with_capacity(load_samples);
    let mut restarted: Option<GrainService> = None;
    for _ in 0..load_samples {
        let service = GrainService::with_capacity(2)
            .with_artifact_store(scratch.path())
            .expect("store reopens");
        service
            .register_graph(&graph_id, Arc::clone(&graph), Arc::clone(&x))
            .expect("corpus re-registers");
        let t = Instant::now();
        let report = service.select(&request).expect("store-load succeeds");
        loads.push(t.elapsed());
        assert_eq!(
            report.artifact_builds.propagation_builds, 0,
            "store-load must not re-propagate (n={n})"
        );
        assert_eq!(report.artifact_builds.influence_builds, 0);
        assert_eq!(report.artifact_builds.index_builds, 0);
        assert_eq!(
            report.outcome().selected,
            cold.outcome().selected,
            "store-load must answer bit-identically (n={n})"
        );
        restarted = Some(service);
    }
    let load_median = {
        let mut sorted = loads.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    };
    cases.push(Case {
        name: format!("store-load/{n}"),
        samples: loads,
        metrics: vec![
            ("n", n as f64),
            (
                "load_speedup_vs_cold_x",
                cold_elapsed.as_nanos() as f64 / load_median.as_nanos().max(1) as f64,
            ),
        ],
    });

    // --- Warm hit: steady state on the restarted service.
    let service = restarted.expect("at least one load sample ran");
    let mut group = c.benchmark_group("persist-warm-hit");
    group.sample_size(5);
    let warm = RefCell::new(Vec::new());
    group.bench_function(BenchmarkId::from_parameter(n), |b| {
        b.iter(|| {
            let t = Instant::now();
            let report = service.select(&request).expect("warm hit succeeds");
            warm.borrow_mut().push(t.elapsed());
            assert!(report.fully_warm(), "rung n={n} must serve warm");
            std::hint::black_box(report.outcome().selected.len())
        })
    });
    group.finish();
    cases.push(Case {
        name: format!("warm-hit/{n}"),
        samples: warm.into_inner(),
        metrics: vec![("n", n as f64)],
    });
}

fn bench_persist(c: &mut Criterion) {
    let max_n: usize = std::env::var("GRAIN_PERSIST_MAX_N")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(100_000);
    let ladder: Vec<usize> = [10_000usize, 100_000]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();
    let ladder = if ladder.is_empty() {
        vec![max_n.max(1_000)]
    } else {
        ladder
    };
    let mut cases: Vec<Case> = Vec::new();
    for &n in &ladder {
        run_rung(c, n, &mut cases);
    }
    write_json(&cases);
}

criterion_group!(benches, bench_persist);
criterion_main!(benches);

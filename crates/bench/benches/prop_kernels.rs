//! Criterion microbenchmark: throughput of every Table 1 propagation
//! kernel at depth 2 on a mid-size synthetic corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grain_data::synthetic::papers_like;
use grain_prop::{propagate, Kernel};

fn bench_kernels(c: &mut Criterion) {
    let dataset = papers_like(5_000, 7);
    let mut group = c.benchmark_group("propagation");
    group.sample_size(10);
    for kernel in Kernel::all_table1(2) {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            &kernel,
            |b, &kernel| {
                b.iter(|| {
                    let out = propagate(&dataset.graph, kernel, &dataset.features);
                    std::hint::black_box(out.rows())
                })
            },
        );
    }
    group.finish();
}

fn bench_depth_scaling(c: &mut Criterion) {
    let dataset = papers_like(5_000, 8);
    let mut group = c.benchmark_group("propagation-depth");
    group.sample_size(10);
    for k in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let out = propagate(&dataset.graph, Kernel::RandomWalk { k }, &dataset.features);
                std::hint::black_box(out.rows())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_depth_scaling);
criterion_main!(benches);

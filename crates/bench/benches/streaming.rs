//! Streaming-delta benchmark: `apply_update` against cold rebuild,
//! emitting `results/BENCH_delta.json`.
//!
//! Per corpus size (Barabási–Albert, the hub-heavy law that stresses
//! dirty-set expansion hardest) and delta size (1 / 16 / 256 toggled
//! edges), the JSON records:
//!
//! * **apply latency** — wall-clock of `apply_update` patching the one
//!   resident engine (dirty-set expansion + row re-propagation +
//!   influence-row splice + index repair + epoch flip), sampled over an
//!   alternating insert-batch/delete-batch toggle so the corpus returns
//!   to its original adjacency;
//! * **dirty-set sizes** — min/median/max of the propagation and
//!   influence dirty rows across those samples, i.e. how far the k-hop
//!   frontier actually spread;
//! * **cold rebuild** — what the same engine costs from scratch on the
//!   mutated corpus: the full cold request and its artifact-only
//!   portion (propagation + influence + indexing stage timings);
//! * **speedups** — apply vs. both cold numbers. The headline claim is
//!   the 1-edge delta at n=1e5 applying ≥ 50× faster than the cold
//!   artifact build.
//!
//! CI smoke: `GRAIN_DELTA_MAX_N` caps the ladder (e.g. `20000`) so the
//! bench exercises every code path in seconds; the committed JSON comes
//! from an uncapped run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grain_core::{
    Budget, GrainConfig, GrainService, GrainVariant, GraphDelta, GreedyAlgorithm, SelectionRequest,
};
use grain_graph::{generators, Graph};
use grain_linalg::DenseMatrix;
use std::cell::Cell;
use std::time::{Duration, Instant};

const BUDGET: usize = 64;
const TOP_K: usize = 32;
const FEATURE_DIM: usize = 8;
/// Applies sampled per (n, delta size); even, so each toggle sequence
/// ends with the corpus back at its original adjacency.
const SAMPLES: usize = 10;
/// Unrecorded toggles before sampling: the first applies after a cold
/// build pay one-time allocator growth and page faults that are not part
/// of the steady-state apply path. Even, to preserve toggle parity.
const WARMUP: usize = 4;

struct Case {
    name: String,
    samples: Vec<Duration>,
    metrics: Vec<(&'static str, f64)>,
}

fn summarize(samples: &[Duration]) -> (u128, u128, u128) {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted.first().copied().unwrap_or_default().as_nanos();
    let median = sorted
        .get(sorted.len() / 2)
        .copied()
        .unwrap_or_default()
        .as_nanos();
    let mean = if sorted.is_empty() {
        0
    } else {
        sorted.iter().map(Duration::as_nanos).sum::<u128>() / sorted.len() as u128
    };
    (min, median, mean)
}

fn write_json(cases: &[Case]) {
    let dir = format!("{}/../../results", env!("CARGO_MANIFEST_DIR"));
    let mut body = String::from("{\n  \"bench\": \"delta\",\n  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let (min, median, mean) = summarize(&case.samples);
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"median_ns\": {}, \
             \"mean_ns\": {}",
            case.name,
            case.samples.len(),
            min,
            median,
            mean
        ));
        for (key, value) in &case.metrics {
            body.push_str(&format!(", \"{key}\": {value}"));
        }
        body.push_str(if i + 1 == cases.len() { "}\n" } else { "},\n" });
    }
    body.push_str("  ]\n}\n");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = format!("{dir}/BENCH_delta.json");
        match std::fs::write(&path, body) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn features(n: usize) -> DenseMatrix {
    let data: Vec<f32> = (0..n * FEATURE_DIM)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
            (h % 251) as f32 * 0.004 + 0.01
        })
        .collect();
    DenseMatrix::from_vec(n, FEATURE_DIM, data)
}

fn delta_config() -> GrainConfig {
    GrainConfig {
        // The streaming path patches propagation/influence/index; the
        // O(n^2) diversity stage would only blur those numbers.
        variant: GrainVariant::NoDiversity,
        gamma: 0.0,
        influence_eps: 1e-4,
        influence_row_top_k: TOP_K,
        algorithm: GreedyAlgorithm::Lazy,
        ..GrainConfig::default()
    }
}

fn has_edge(g: &Graph, u: u32, v: u32) -> bool {
    g.adjacency().row(u as usize).0.binary_search(&v).is_ok()
}

/// `size` distinct node pairs absent from `g`: the toggle set whose
/// batch-insert/batch-delete alternation drives the apply samples.
fn toggle_pairs(g: &Graph, size: usize) -> Vec<(u32, u32)> {
    let n = g.num_nodes() as u64;
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(size);
    let mut i: u64 = 0;
    while pairs.len() < size {
        let a = (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 17) % n;
        let b = (i.wrapping_mul(0xc2b2_ae3d_27d4_eb4f) >> 19) % n;
        i += 1;
        let (a, b) = (a.min(b) as u32, a.max(b) as u32);
        if a == b || has_edge(g, a, b) || pairs.contains(&(a, b)) {
            continue;
        }
        pairs.push((a, b));
    }
    pairs
}

fn insert_all(pairs: &[(u32, u32)]) -> GraphDelta {
    pairs
        .iter()
        .fold(GraphDelta::new(), |d, &(a, b)| d.insert_edge(a, b))
}

fn delete_all(pairs: &[(u32, u32)]) -> GraphDelta {
    pairs
        .iter()
        .fold(GraphDelta::new(), |d, &(a, b)| d.delete_edge(a, b))
}

fn quantiles(mut xs: Vec<f64>) -> (f64, f64, f64) {
    xs.sort_by(f64::total_cmp);
    let min = xs.first().copied().unwrap_or(0.0);
    let median = xs.get(xs.len() / 2).copied().unwrap_or(0.0);
    let max = xs.last().copied().unwrap_or(0.0);
    (min, median, max)
}

fn run_rung(c: &mut Criterion, n: usize, cases: &mut Vec<Case>) {
    let graph_id = format!("ba-{n}");
    let graph = generators::barabasi_albert(n, 4, 42);
    let x = features(n);
    // Capacity 2: the current epoch's engine plus one stale epoch. A
    // deep pool would keep every superseded epoch's ~tens-of-MB
    // artifacts resident and the allocator churn would pollute the
    // apply samples.
    let service = GrainService::with_capacity(2);
    service
        .register_graph(&graph_id, graph.clone(), x.clone())
        .expect("corpus registers");
    let request = SelectionRequest::new(&graph_id, delta_config(), Budget::Fixed(BUDGET));
    service.select(&request).expect("warm-up select");

    for size in [1usize, 16, 256] {
        let pairs = toggle_pairs(&graph, size);
        let mut samples: Vec<Duration> = Vec::with_capacity(SAMPLES);
        let mut dirty_prop: Vec<f64> = Vec::new();
        let mut dirty_inf: Vec<f64> = Vec::new();
        let mut stage_ns: Vec<(&'static str, Vec<f64>)> = [
            "transition",
            "propagation",
            "embedding",
            "influence",
            "index",
        ]
        .map(|s| (s, Vec::new()))
        .into_iter()
        .collect();
        for w in 0..WARMUP {
            let delta = if w % 2 == 0 {
                insert_all(&pairs)
            } else {
                delete_all(&pairs)
            };
            service
                .apply_update(&graph_id, &delta)
                .expect("warmup apply");
        }
        for s in 0..SAMPLES {
            let delta = if s % 2 == 0 {
                insert_all(&pairs)
            } else {
                delete_all(&pairs)
            };
            let t = Instant::now();
            let report = service
                .apply_update(&graph_id, &delta)
                .expect("delta applies");
            samples.push(t.elapsed());
            assert_eq!(report.engines_patched(), 1, "n={n} size={size}");
            let patch = &report.patched[0];
            dirty_prop.push(patch.dirty_propagation as f64);
            dirty_inf.push(patch.dirty_influence as f64);
            for (stage, xs) in stage_ns.iter_mut() {
                let d = match *stage {
                    "transition" => patch.timings.transition,
                    "propagation" => patch.timings.propagation,
                    "embedding" => patch.timings.embedding,
                    "influence" => patch.timings.influence,
                    _ => patch.timings.index,
                };
                xs.push(d.as_nanos() as f64);
            }
        }
        // Patched artifacts must serve the next request fully warm.
        let warm = service.select(&request).expect("post-apply select");
        assert!(warm.fully_warm(), "n={n} size={size} must serve warm");

        let (dp_min, dp_med, dp_max) = quantiles(dirty_prop);
        let (di_min, di_med, di_max) = quantiles(dirty_inf);
        let mut metrics: Vec<(&'static str, f64)> = vec![
            ("n", n as f64),
            ("delta_edges", size as f64),
            ("dirty_propagation_min", dp_min),
            ("dirty_propagation_median", dp_med),
            ("dirty_propagation_max", dp_max),
            ("dirty_influence_min", di_min),
            ("dirty_influence_median", di_med),
            ("dirty_influence_max", di_max),
        ];
        for (stage, xs) in stage_ns {
            let (_, median, _) = quantiles(xs);
            metrics.push(match stage {
                "transition" => ("stage_transition_median_ns", median),
                "propagation" => ("stage_propagation_median_ns", median),
                "embedding" => ("stage_embedding_median_ns", median),
                "influence" => ("stage_influence_median_ns", median),
                _ => ("stage_index_median_ns", median),
            });
        }
        cases.push(Case {
            name: format!("apply/{n}/edges-{size}"),
            samples,
            metrics,
        });
    }

    // Criterion visibility for the 1-edge toggle (the headline case).
    let single = toggle_pairs(&graph, 1);
    let present = Cell::new(false);
    let mut group = c.benchmark_group("delta-apply-1-edge");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter(n), |b| {
        b.iter(|| {
            let delta = if present.get() {
                delete_all(&single)
            } else {
                insert_all(&single)
            };
            present.set(!present.get());
            let report = service
                .apply_update(&graph_id, &delta)
                .expect("toggle applies");
            std::hint::black_box(report.epoch)
        })
    });
    group.finish();
    if present.get() {
        // Leave the corpus at its original adjacency.
        service
            .apply_update(&graph_id, &delete_all(&single))
            .expect("final toggle-off");
    }

    // Cold oracle: the same engine built from scratch over the mutated
    // corpus (one 1-edge insert), timed end to end with the engine's own
    // artifact-stage breakdown.
    let cold_service = GrainService::with_capacity(2);
    let mutated = {
        let scratch = GrainService::new();
        scratch
            .register_graph("scratch", graph.clone(), x.clone())
            .expect("scratch registers");
        scratch
            .apply_update("scratch", &insert_all(&single))
            .expect("scratch delta");
        (*scratch.graph("scratch").expect("scratch graph")).clone()
    };
    cold_service
        .register_graph(&graph_id, mutated, x.clone())
        .expect("cold corpus registers");
    let t = Instant::now();
    let cold = cold_service.select(&request).expect("cold select");
    let cold_elapsed = t.elapsed();
    let timings = &cold.outcome().timings;
    let cold_artifacts = timings.propagation + timings.influence + timings.indexing;
    let apply_1_median = {
        let apply_case = cases
            .iter()
            .find(|case| case.name == format!("apply/{n}/edges-1"))
            .expect("1-edge case recorded");
        summarize(&apply_case.samples).1
    };
    cases.push(Case {
        name: format!("cold-rebuild/{n}"),
        samples: vec![cold_elapsed],
        metrics: vec![
            ("n", n as f64),
            ("cold_select_ns", cold_elapsed.as_nanos() as f64),
            ("cold_artifacts_ns", cold_artifacts.as_nanos() as f64),
            ("apply_1_edge_median_ns", apply_1_median as f64),
            (
                "speedup_vs_cold_artifacts_x",
                cold_artifacts.as_nanos() as f64 / apply_1_median.max(1) as f64,
            ),
            (
                "speedup_vs_cold_select_x",
                cold_elapsed.as_nanos() as f64 / apply_1_median.max(1) as f64,
            ),
        ],
    });
}

fn bench_delta(c: &mut Criterion) {
    let max_n: usize = std::env::var("GRAIN_DELTA_MAX_N")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(100_000);
    let ladder: Vec<usize> = [10_000usize, 100_000]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();
    let ladder = if ladder.is_empty() {
        vec![max_n.max(1_000)]
    } else {
        ladder
    };
    let mut cases: Vec<Case> = Vec::new();
    for &n in &ladder {
        run_rung(c, n, &mut cases);
    }
    write_json(&cases);
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);

//! Criterion microbenchmark for the `Scheduler` front-end, plus a
//! machine-readable `BENCH_scheduler.json` summary so the perf
//! trajectory is comparable across PRs without parsing console output.
//!
//! Three cases over one warm n = 2000 corpus:
//!
//! * **storm/naive-serial** — a duplicate storm of `STORM` identical
//!   requests answered one by one through `GrainService::select`; every
//!   request pays the full (warm) greedy maximization.
//! * **storm/scheduler-coalesced** — the same storm staged on a paused
//!   scheduler and released: the queue coalesces all of it into one
//!   selection and fans the report out, so the cost is ~one greedy plus
//!   fan-out overhead — the headline win of the queueing front-end.
//! * **deadline-shed** — a mixed burst where half the requests carry a
//!   deadline that expires while staged; measures how fast the scheduler
//!   sheds dead work and answers the rest (the shed rate is recorded in
//!   the JSON).
//!
//! On this container (1 cpu) the coalescing speedup is purely algorithmic
//! — one greedy instead of `STORM` — so it survives any core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grain_core::{
    Budget, GrainConfig, GrainService, ScheduledRequest, Scheduler, SchedulerConfig,
    SelectionRequest, Ticket,
};
use grain_data::synthetic::papers_like;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

const STORM: usize = 32;
const SHED_BURST: usize = 12;

/// One benchmark case's own timing record (criterion's console report is
/// printed independently; these samples feed the JSON summary).
struct Case {
    name: &'static str,
    samples: Vec<Duration>,
    metrics: Vec<(&'static str, f64)>,
}

fn summarize(samples: &[Duration]) -> (u128, u128, u128) {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted.first().copied().unwrap_or_default().as_nanos();
    let median = sorted
        .get(sorted.len() / 2)
        .copied()
        .unwrap_or_default()
        .as_nanos();
    let mean = if sorted.is_empty() {
        0
    } else {
        sorted.iter().map(Duration::as_nanos).sum::<u128>() / sorted.len() as u128
    };
    (min, median, mean)
}

fn write_json(cases: &[Case]) {
    let dir = format!("{}/../../results", env!("CARGO_MANIFEST_DIR"));
    let mut body = String::from("{\n  \"bench\": \"scheduler\",\n  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let (min, median, mean) = summarize(&case.samples);
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"median_ns\": {}, \
             \"mean_ns\": {}",
            case.name,
            case.samples.len(),
            min,
            median,
            mean
        ));
        for (key, value) in &case.metrics {
            body.push_str(&format!(", \"{key}\": {value}"));
        }
        body.push_str(if i + 1 == cases.len() { "}\n" } else { "},\n" });
    }
    body.push_str("  ]\n}\n");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = format!("{dir}/BENCH_scheduler.json");
        match std::fs::write(&path, body) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn bench_scheduler(c: &mut Criterion) {
    let dataset = papers_like(2_000, 31);
    let budget = 2 * dataset.num_classes;
    let service = Arc::new(GrainService::new());
    service
        .register_graph("papers", dataset.graph.clone(), dataset.features.clone())
        .expect("corpus registers");
    let request = SelectionRequest::new("papers", GrainConfig::ball_d(), Budget::Fixed(budget))
        .with_candidates(dataset.split.train.clone());
    // Prime the engine: every case below measures the serving path over
    // warm artifacts, not the one-time cold build.
    service.select(&request).expect("priming request succeeds");

    let mut cases: Vec<Case> = Vec::new();
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);

    // Duplicate storm, answered naively: STORM full (warm) selections.
    let naive = RefCell::new(Vec::new());
    group.bench_function(
        BenchmarkId::from_parameter(format!("storm{STORM}/naive-serial")),
        |b| {
            b.iter(|| {
                let t = Instant::now();
                let mut answered = 0usize;
                for _ in 0..STORM {
                    answered += service
                        .select(&request)
                        .expect("warm request")
                        .outcomes
                        .len();
                }
                naive.borrow_mut().push(t.elapsed());
                std::hint::black_box(answered)
            })
        },
    );
    cases.push(Case {
        name: "storm/naive-serial",
        samples: naive.into_inner(),
        metrics: vec![
            ("storm_size", STORM as f64),
            ("selections_executed", STORM as f64),
        ],
    });

    // The same storm through the scheduler: coalesced to ONE selection.
    let scheduler = Scheduler::new(
        Arc::clone(&service),
        SchedulerConfig {
            start_paused: true,
            ..SchedulerConfig::default()
        },
    );
    let coalesced = RefCell::new(Vec::new());
    let before = scheduler.stats();
    group.bench_function(
        BenchmarkId::from_parameter(format!("storm{STORM}/scheduler-coalesced")),
        |b| {
            b.iter(|| {
                scheduler.pause();
                let tickets: Vec<Ticket> = (0..STORM)
                    .map(|_| scheduler.submit(request.clone()).expect("admitted"))
                    .collect();
                let t = Instant::now();
                scheduler.resume();
                let mut answered = 0usize;
                for ticket in tickets {
                    answered += ticket.wait().expect("report").outcomes.len();
                }
                coalesced.borrow_mut().push(t.elapsed());
                std::hint::black_box(answered)
            })
        },
    );
    let delta_selections = scheduler.stats().selections - before.selections;
    let rounds = coalesced.borrow().len();
    cases.push(Case {
        name: "storm/scheduler-coalesced",
        samples: coalesced.into_inner(),
        metrics: vec![
            ("storm_size", STORM as f64),
            (
                "selections_per_storm",
                delta_selections as f64 / rounds.max(1) as f64,
            ),
        ],
    });

    // Deadline shedding: half the burst expires while staged.
    let shed_scheduler = Scheduler::new(
        Arc::clone(&service),
        SchedulerConfig {
            start_paused: true,
            ..SchedulerConfig::default()
        },
    );
    let shed = RefCell::new(Vec::new());
    let before = shed_scheduler.stats();
    group.bench_function(BenchmarkId::from_parameter("deadline-shed"), |b| {
        b.iter(|| {
            shed_scheduler.pause();
            let (mut served, mut shed_count) = (0usize, 0usize);
            let tickets: Vec<Ticket> = (0..SHED_BURST)
                .filter_map(|i| {
                    // Distinct budgets: SHED_BURST distinct work items.
                    let r = SelectionRequest::new(
                        "papers",
                        GrainConfig::ball_d(),
                        Budget::Fixed(budget + i),
                    )
                    .with_candidates(dataset.split.train.clone());
                    let scheduled = if i % 2 == 0 {
                        ScheduledRequest::new(r).with_deadline_in(Duration::from_millis(2))
                    } else {
                        ScheduledRequest::new(r)
                    };
                    match shed_scheduler.submit(scheduled) {
                        Ok(ticket) => Some(ticket),
                        // On a contended host the 2ms deadline can lapse
                        // before admission: same bucket as an in-queue shed.
                        Err(_) => {
                            shed_count += 1;
                            None
                        }
                    }
                })
                .collect();
            std::thread::sleep(Duration::from_millis(10)); // deadlines lapse in-queue
            let t = Instant::now();
            shed_scheduler.resume();
            for ticket in tickets {
                match ticket.wait() {
                    Ok(_) => served += 1,
                    Err(_) => shed_count += 1,
                }
            }
            shed.borrow_mut().push(t.elapsed());
            std::hint::black_box((served, shed_count))
        })
    });
    let after = shed_scheduler.stats();
    let submitted = (after.enqueued + after.coalesced) - (before.enqueued + before.coalesced);
    let shed_total = after.shed_deadline - before.shed_deadline;
    cases.push(Case {
        name: "deadline-shed",
        samples: shed.into_inner(),
        metrics: vec![
            ("burst_size", SHED_BURST as f64),
            ("shed_rate", shed_total as f64 / submitted.max(1) as f64),
        ],
    });

    group.finish();
    write_json(&cases);
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);

//! Criterion microbenchmark: `GrainService` engine-pool routing, reported
//! alongside `engine_reuse`. Three regimes at n = 4000:
//!
//! * **pool-hit** — the steady serving state: the request's
//!   `(graph, fingerprint)` key is resident, so the service pays only key
//!   lookup + greedy maximization on warm artifacts;
//! * **cold-build** — first contact with a key: a fresh engine plus every
//!   §3 artifact;
//! * **evicted-rebuild** — a capacity-1 pool alternating two keys: each
//!   request rebuilds the engine the previous one evicted (the thrash the
//!   `evicted_rebuilds` counter exists to expose).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grain_core::{Budget, GrainConfig, GrainService, PoolEvent, SelectionRequest};
use grain_data::synthetic::papers_like;
use grain_influence::ThetaRule;

fn theta_config(theta: f32) -> GrainConfig {
    GrainConfig {
        theta: ThetaRule::RelativeToRowMax(theta),
        ..GrainConfig::ball_d()
    }
}

fn bench_pool_regimes(c: &mut Criterion) {
    let dataset = papers_like(4_000, 29);
    let budget = 2 * dataset.num_classes;
    let request = |cfg: GrainConfig| {
        SelectionRequest::new("papers", cfg, Budget::Fixed(budget))
            .with_candidates(dataset.split.train.clone())
    };
    let mut group = c.benchmark_group("service-pool");
    group.sample_size(10);

    // Warm pool hit: one resident engine answers every iteration.
    group.bench_function(BenchmarkId::from_parameter("pool-hit"), |b| {
        let service = GrainService::new();
        service
            .register_graph("papers", dataset.graph.clone(), dataset.features.clone())
            .expect("corpus registers");
        let req = request(GrainConfig::ball_d());
        let _prime = service.select(&req).expect("prime request");
        b.iter(|| {
            let report = service.select(&req).expect("warm request");
            assert!(report.fully_warm());
            std::hint::black_box(report.outcomes[0].selected.len())
        })
    });

    // Cold build: a fresh service per iteration — key never seen, every
    // artifact built (the engine_reuse "cold" regime plus routing).
    group.bench_function(BenchmarkId::from_parameter("cold-build"), |b| {
        b.iter(|| {
            let service = GrainService::new();
            service
                .register_graph("papers", dataset.graph.clone(), dataset.features.clone())
                .expect("corpus registers");
            let report = service
                .select(&request(GrainConfig::ball_d()))
                .expect("cold");
            std::hint::black_box(report.outcomes[0].selected.len())
        })
    });

    // Evicted rebuild: capacity-1 pool, two fingerprints alternating; each
    // iteration issues exactly one request, which always rebuilds the
    // engine the previous iteration evicted. (The resident sibling still
    // donates its X^(k), so the rebuild pays the post-propagation stages.)
    group.bench_function(BenchmarkId::from_parameter("evicted-rebuild"), |b| {
        let service = GrainService::with_capacity(1);
        service
            .register_graph("papers", dataset.graph.clone(), dataset.features.clone())
            .expect("corpus registers");
        let ping = request(theta_config(0.25));
        let pong = request(theta_config(0.5));
        let _ = service.select(&ping).expect("prime ping");
        let _ = service.select(&pong).expect("prime pong (evicts ping)");
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let req = if flip { &ping } else { &pong };
            let report = service.select(req).expect("rebuild");
            assert_eq!(report.pool_event, PoolEvent::RebuildAfterEviction);
            std::hint::black_box(report.outcomes[0].selected.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pool_regimes);
criterion_main!(benches);

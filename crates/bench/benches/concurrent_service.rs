//! Criterion microbenchmark: batched vs serial request submission through
//! one `GrainService`, reported alongside `service_pool`.
//!
//! The workload is mixed-fingerprint — 8 distinct artifact fingerprints
//! (θ sweep) × 2 requests each over one n = 2000 corpus — against a
//! sharded pool big enough to keep every engine warm. Engines are primed
//! before timing, so the measurement isolates the serving path itself:
//!
//! * **serial** — `select` per request on one thread (the PR-3 regime);
//! * **batched/w{2,4,8}** — `submit_batch_with_workers`, which groups the
//!   requests by engine key and fans the groups out across worker
//!   threads, same-key requests running sequentially on their warm
//!   engine.
//!
//! On a multi-core host batched submission should beat serial by roughly
//! `min(workers, distinct fingerprints, cores)`× on this workload,
//! because each group's greedy maximization runs on its own shard/engine
//! with no shared lock on the hot path. On a single-cpu host it can only
//! degrade to serial plus thread overhead — the number to watch there is
//! how small that overhead stays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grain_core::{Budget, GrainConfig, GrainService, SelectionRequest};
use grain_data::synthetic::papers_like;
use grain_influence::ThetaRule;

const FINGERPRINTS: usize = 8;
const REQUESTS_PER_FINGERPRINT: usize = 2;

fn workload(train: &[u32], budget: usize) -> Vec<SelectionRequest> {
    let mut requests = Vec::new();
    for i in 0..FINGERPRINTS {
        let config = GrainConfig {
            theta: ThetaRule::RelativeToRowMax(0.2 + 0.05 * i as f32),
            ..GrainConfig::ball_d()
        };
        for _ in 0..REQUESTS_PER_FINGERPRINT {
            requests.push(
                SelectionRequest::new("papers", config, Budget::Fixed(budget))
                    .with_candidates(train.to_vec()),
            );
        }
    }
    requests
}

fn bench_batched_vs_serial(c: &mut Criterion) {
    let dataset = papers_like(2_000, 31);
    let budget = 2 * dataset.num_classes;
    // Per-shard capacity covers the full fingerprint set, so the
    // warm-path premise holds for any key→shard hash placement.
    let service = GrainService::with_topology(8, FINGERPRINTS);
    service
        .register_graph("papers", dataset.graph.clone(), dataset.features.clone())
        .expect("corpus registers");
    let requests = workload(&dataset.split.train, budget);

    // Prime every engine so the comparison is warm-path vs warm-path.
    for report in service.submit_batch(&requests) {
        let report = report.expect("priming request succeeds");
        std::hint::black_box(report.outcomes.len());
    }
    assert_eq!(
        service.pool_stats().evictions,
        0,
        "every fingerprint must stay resident or the bench measures rebuilds"
    );

    let mut group = c.benchmark_group("concurrent-service");
    group.sample_size(10);

    group.bench_function(BenchmarkId::from_parameter("serial"), |b| {
        b.iter(|| {
            let mut answered = 0usize;
            for request in &requests {
                let report = service.select(request).expect("warm request");
                answered += report.outcomes.len();
            }
            std::hint::black_box(answered)
        })
    });

    for workers in [2usize, 4, 8] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("batched/w{workers}")),
            |b| {
                b.iter(|| {
                    let reports = service.submit_batch_with_workers(&requests, workers);
                    let answered: usize = reports
                        .into_iter()
                        .map(|r| r.expect("warm request").outcomes.len())
                        .sum();
                    std::hint::black_box(answered)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batched_vs_serial);
criterion_main!(benches);

//! Million-node scale benchmark for the flat-CSR influence hot path,
//! emitting `results/BENCH_scale.json`.
//!
//! A ladder of Barabási–Albert graphs (preferential attachment — the
//! hub-heavy degree law that stresses influence-row truncation hardest)
//! is pushed through the full serving stack at n up to 1e6. Per rung the
//! JSON records:
//!
//! * **cold build** — wall-clock of the first request, with the engine's
//!   own per-stage breakdown (propagation / influence rows / indexing /
//!   greedy), i.e. what standing up the artifacts costs;
//! * **resident bytes** — the CSR influence artifact as allocated vs.
//!   what the retired nested `Vec<Vec<(u32, f32)>>` layout would have
//!   occupied at the same config, plus the all-artifact total the pool
//!   accounts ([`grain_core::ArtifactBytes`]);
//! * **warm selection latency** — repeated selections over warm
//!   artifacts, the steady-state serving cost;
//! * **CELF vs. plain evaluations** — marginal-gain evaluations the lazy
//!   greedy spent against Algorithm 1's re-evaluate-everything count
//!   (measured head-to-head on the warm engine up to n=1e5, computed in
//!   closed form `Σ_i (n - i)` above that, flagged by `plain_measured`).
//!
//! Row truncation is on (`influence_row_top_k = 32`): without it a BA
//! hub's 2-step influence row touches a large fraction of the graph and
//! the artifact no longer fits a sensible byte budget; with it the
//! artifact is ≤ `top_k` entries per node by construction.
//!
//! CI smoke: `GRAIN_SCALE_MAX_N` caps the ladder (e.g. `20000`) so the
//! bench exercises every code path in seconds; the committed JSON comes
//! from an uncapped run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grain_core::{
    Budget, GrainConfig, GrainService, GrainVariant, GreedyAlgorithm, SelectionReport,
    SelectionRequest,
};
use grain_graph::generators;
use grain_linalg::DenseMatrix;
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// Labeling budget per rung.
const BUDGET: usize = 64;

/// Per-row truncation: the lever that bounds the artifact on hub graphs.
const TOP_K: usize = 32;

/// Feature width; influence artifacts scale with n and nnz, not d, so a
/// small d keeps the ladder about the hot path under test.
const FEATURE_DIM: usize = 8;

/// Run plain greedy for real up to this n; above it the count is closed
/// form (the selected set is identical either way — property-tested — so
/// only the evaluation counter is at stake).
const PLAIN_MEASURE_MAX_N: usize = 100_000;

struct Case {
    name: String,
    samples: Vec<Duration>,
    metrics: Vec<(&'static str, f64)>,
}

fn summarize(samples: &[Duration]) -> (u128, u128, u128) {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted.first().copied().unwrap_or_default().as_nanos();
    let median = sorted
        .get(sorted.len() / 2)
        .copied()
        .unwrap_or_default()
        .as_nanos();
    let mean = if sorted.is_empty() {
        0
    } else {
        sorted.iter().map(Duration::as_nanos).sum::<u128>() / sorted.len() as u128
    };
    (min, median, mean)
}

fn write_json(cases: &[Case]) {
    let dir = format!("{}/../../results", env!("CARGO_MANIFEST_DIR"));
    let mut body = String::from("{\n  \"bench\": \"scale\",\n  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let (min, median, mean) = summarize(&case.samples);
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"median_ns\": {}, \
             \"mean_ns\": {}",
            case.name,
            case.samples.len(),
            min,
            median,
            mean
        ));
        for (key, value) in &case.metrics {
            body.push_str(&format!(", \"{key}\": {value}"));
        }
        body.push_str(if i + 1 == cases.len() { "}\n" } else { "},\n" });
    }
    body.push_str("  ]\n}\n");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = format!("{dir}/BENCH_scale.json");
        match std::fs::write(&path, body) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// Deterministic synthetic features: cheap to generate at n=1e6 and
/// non-degenerate (distinct rows), which is all the hot path needs.
fn features(n: usize) -> DenseMatrix {
    let data: Vec<f32> = (0..n * FEATURE_DIM)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
            (h % 251) as f32 * 0.004 + 0.01
        })
        .collect();
    DenseMatrix::from_vec(n, FEATURE_DIM, data)
}

fn scale_config() -> GrainConfig {
    GrainConfig {
        // Diversity functions are O(n^2) in the embedding; the scale rung
        // measures the influence hot path, which NoDiversity isolates.
        variant: GrainVariant::NoDiversity,
        gamma: 0.0,
        influence_eps: 1e-4,
        influence_row_top_k: TOP_K,
        algorithm: GreedyAlgorithm::Lazy,
        ..GrainConfig::default()
    }
}

/// Closed-form plain-greedy evaluation count: every round re-evaluates
/// every remaining candidate.
fn plain_evaluations_closed_form(pool: usize, picks: usize) -> usize {
    (0..picks).map(|i| pool - i).sum()
}

fn run_rung(service: &GrainService, c: &mut Criterion, n: usize, cases: &mut Vec<Case>) {
    let graph_id = format!("ba-{n}");
    let graph = generators::barabasi_albert(n, 4, 42);
    let x = features(n);
    service
        .register_graph(&graph_id, graph, x)
        .expect("corpus registers");

    let request = SelectionRequest::new(&graph_id, scale_config(), Budget::Fixed(BUDGET));

    // Cold request: artifact build + first selection, timed once.
    let cold_start = Instant::now();
    let cold: SelectionReport = service.select(&request).expect("cold request succeeds");
    let cold_elapsed = cold_start.elapsed();
    let outcome = cold.outcome();
    assert!(
        matches!(outcome.completion, grain_core::Completion::Complete),
        "scale rung n={n} must run to completion"
    );
    let bytes = cold.artifact_bytes;
    assert!(
        bytes.influence_rows < bytes.influence_rows_nested,
        "CSR must undercut the nested layout (n={n}: {} !< {})",
        bytes.influence_rows,
        bytes.influence_rows_nested
    );
    let timings = &outcome.timings;
    cases.push(Case {
        name: format!("cold-build/{n}"),
        samples: vec![cold_elapsed],
        metrics: vec![
            ("n", n as f64),
            ("budget", outcome.selected.len() as f64),
            ("propagation_ns", timings.propagation.as_nanos() as f64),
            ("influence_ns", timings.influence.as_nanos() as f64),
            ("indexing_ns", timings.indexing.as_nanos() as f64),
            ("greedy_ns", timings.greedy.as_nanos() as f64),
            ("resident_bytes_total", bytes.total() as f64),
            ("influence_rows_bytes", bytes.influence_rows as f64),
            (
                "influence_rows_nested_bytes",
                bytes.influence_rows_nested as f64,
            ),
            (
                "csr_saving_ratio",
                1.0 - bytes.influence_rows as f64 / bytes.influence_rows_nested as f64,
            ),
            ("activation_index_bytes", bytes.activation_index as f64),
            ("pool_resident_bytes", cold.pool_stats.resident_bytes as f64),
        ],
    });

    // Warm selections: the steady-state serving latency.
    let mut group = c.benchmark_group("scale-warm-select");
    group.sample_size(if n >= 1_000_000 { 3 } else { 5 });
    let warm = RefCell::new(Vec::new());
    group.bench_function(BenchmarkId::from_parameter(n), |b| {
        b.iter(|| {
            let t = Instant::now();
            let report = service.select(&request).expect("warm request succeeds");
            warm.borrow_mut().push(t.elapsed());
            assert!(report.fully_warm(), "rung n={n} must serve warm");
            std::hint::black_box(report.outcome().selected.len())
        })
    });
    group.finish();

    // CELF efficiency: lazy evaluations vs. Algorithm 1's count.
    let lazy_evals = outcome.evaluations;
    let (plain_evals, plain_measured) = if n <= PLAIN_MEASURE_MAX_N {
        let plain_request = SelectionRequest::new(
            &graph_id,
            GrainConfig {
                algorithm: GreedyAlgorithm::Plain,
                ..scale_config()
            },
            Budget::Fixed(BUDGET),
        );
        // Greedy-only config change: shares the warm engine, no rebuild.
        let plain = service.select(&plain_request).expect("plain greedy runs");
        assert_eq!(
            plain.outcome().selected,
            outcome.selected,
            "CELF must select identically to plain greedy (n={n})"
        );
        (plain.outcome().evaluations, 1.0)
    } else {
        (
            plain_evaluations_closed_form(n, outcome.selected.len()),
            0.0,
        )
    };
    cases.push(Case {
        name: format!("warm-select/{n}"),
        samples: warm.into_inner(),
        metrics: vec![
            ("n", n as f64),
            ("lazy_evaluations", lazy_evals as f64),
            ("plain_evaluations", plain_evals as f64),
            ("plain_measured", plain_measured),
            (
                "celf_speedup_x",
                plain_evals as f64 / lazy_evals.max(1) as f64,
            ),
        ],
    });
}

fn bench_scale(c: &mut Criterion) {
    let max_n: usize = std::env::var("GRAIN_SCALE_MAX_N")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(1_000_000);
    let ladder: Vec<usize> = [10_000usize, 100_000, 1_000_000]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();
    let ladder = if ladder.is_empty() {
        vec![max_n.max(1_000)]
    } else {
        ladder
    };

    // One service, one engine per rung: capacity comfortably above the
    // ladder so residency accounting in the JSON reflects every rung.
    let service = GrainService::with_capacity(2 * ladder.len().max(1));
    let mut cases: Vec<Case> = Vec::new();
    for &n in &ladder {
        run_rung(&service, c, n, &mut cases);
    }
    write_json(&cases);
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);

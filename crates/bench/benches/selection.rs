//! Criterion microbenchmark: end-to-end Grain selection (ball-D vs NN-D vs
//! ablations, plain vs CELF greedy, with and without §3.4 pruning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grain_core::{GrainConfig, GreedyAlgorithm, PruneStrategy, SelectionEngine};
use grain_data::synthetic::papers_like;

fn bench_variants(c: &mut Criterion) {
    let dataset = papers_like(4_000, 21);
    let budget = 2 * dataset.num_classes;
    let mut group = c.benchmark_group("grain-select");
    group.sample_size(10);
    let cases: Vec<(&str, GrainConfig)> = vec![
        ("ball-d", GrainConfig::ball_d()),
        ("nn-d", GrainConfig::nn_d()),
        (
            "ball-d+prune",
            GrainConfig {
                prune: Some(PruneStrategy::WalkMass { keep_fraction: 0.2 }),
                ..GrainConfig::ball_d()
            },
        ),
    ];
    for (name, cfg) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut engine = SelectionEngine::new(*cfg, &dataset.graph, &dataset.features)
                    .expect("bench configs are valid");
                let out = engine.select(&dataset.split.train, budget);
                std::hint::black_box(out.selected.len())
            })
        });
    }
    group.finish();
}

fn bench_celf_vs_plain(c: &mut Criterion) {
    let dataset = papers_like(3_000, 22);
    let budget = 2 * dataset.num_classes;
    let mut group = c.benchmark_group("greedy-algorithm");
    group.sample_size(10);
    for (name, algorithm) in [
        ("plain", GreedyAlgorithm::Plain),
        ("celf", GreedyAlgorithm::Lazy),
    ] {
        let cfg = GrainConfig {
            algorithm,
            ..GrainConfig::ball_d()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut engine = SelectionEngine::new(*cfg, &dataset.graph, &dataset.features)
                    .expect("bench configs are valid");
                let out = engine.select(&dataset.split.train, budget);
                std::hint::black_box(out.evaluations)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_celf_vs_plain);
criterion_main!(benches);

//! Criterion microbenchmark for the cancellation layer, plus a
//! machine-readable `BENCH_cancel.json` summary so the resilience cost
//! model is comparable across PRs without parsing console output.
//!
//! Three cases over one warm n = 2000 corpus:
//!
//! * **run-to-completion** — the uncancelled baseline: a full warm
//!   selection through `GrainService::select_with` with an untripped
//!   token; what a request costs when nothing interferes (and what the
//!   cancellation checkpoints add over PR 5's uncheckpointed path — they
//!   must be noise).
//! * **deadline-partial** — the same request under a deadline far shorter
//!   than the full run and `OnDeadline::Partial`: measures the *anytime*
//!   property — latency collapses to roughly the deadline and the caller
//!   still receives a usable greedy prefix (the recovered fraction is
//!   recorded in the JSON).
//! * **cancel-observe** — a caller cancels a running selection; the
//!   sample is the gap between `CancelToken::cancel` and the run
//!   returning — the acceptance criterion that cancellation is observed
//!   within one greedy round / one `cancel_check_every` eval block.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grain_core::{Budget, CancelToken, GrainConfig, GrainService, OnDeadline, SelectionRequest};
use grain_data::synthetic::papers_like;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One benchmark case's own timing record (criterion's console report is
/// printed independently; these samples feed the JSON summary).
struct Case {
    name: &'static str,
    samples: Vec<Duration>,
    metrics: Vec<(&'static str, f64)>,
}

fn summarize(samples: &[Duration]) -> (u128, u128, u128) {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted.first().copied().unwrap_or_default().as_nanos();
    let median = sorted
        .get(sorted.len() / 2)
        .copied()
        .unwrap_or_default()
        .as_nanos();
    let mean = if sorted.is_empty() {
        0
    } else {
        sorted.iter().map(Duration::as_nanos).sum::<u128>() / sorted.len() as u128
    };
    (min, median, mean)
}

fn write_json(cases: &[Case]) {
    let dir = format!("{}/../../results", env!("CARGO_MANIFEST_DIR"));
    let mut body = String::from("{\n  \"bench\": \"cancel\",\n  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let (min, median, mean) = summarize(&case.samples);
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"median_ns\": {}, \
             \"mean_ns\": {}",
            case.name,
            case.samples.len(),
            min,
            median,
            mean
        ));
        for (key, value) in &case.metrics {
            body.push_str(&format!(", \"{key}\": {value}"));
        }
        body.push_str(if i + 1 == cases.len() { "}\n" } else { "},\n" });
    }
    body.push_str("  ]\n}\n");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = format!("{dir}/BENCH_cancel.json");
        match std::fs::write(&path, body) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn bench_cancellation(c: &mut Criterion) {
    let dataset = papers_like(2_000, 31);
    let budget = 4 * dataset.num_classes;
    let service = Arc::new(GrainService::new());
    service
        .register_graph("papers", dataset.graph.clone(), dataset.features.clone())
        .expect("corpus registers");
    let request = SelectionRequest::new("papers", GrainConfig::ball_d(), Budget::Fixed(budget))
        .with_candidates(dataset.split.train.clone());
    // Prime the engine: every case below measures the serving path over
    // warm artifacts, not the one-time cold build.
    service.select(&request).expect("priming request succeeds");

    let mut cases: Vec<Case> = Vec::new();
    let mut group = c.benchmark_group("cancellation");
    group.sample_size(10);

    // Uncancelled baseline: full warm run, untripped token.
    let full = RefCell::new(Vec::new());
    group.bench_function(BenchmarkId::from_parameter("run-to-completion"), |b| {
        b.iter(|| {
            let t = Instant::now();
            let report = service
                .select_with(&request, &CancelToken::new(), OnDeadline::Fail)
                .expect("warm request");
            full.borrow_mut().push(t.elapsed());
            std::hint::black_box(report.outcome().selected.len())
        })
    });
    let full_run = summarize(&full.borrow()).1; // median ns
    cases.push(Case {
        name: "run-to-completion",
        samples: full.into_inner(),
        metrics: vec![("budget", budget as f64)],
    });

    // Anytime degradation: a deadline at ~3/4 of the full run under
    // Partial. Latency should track the deadline, not the full run, and
    // most trips should land mid-greedy and recover a prefix.
    let deadline = Duration::from_nanos((full_run * 3 / 4).max(50_000) as u64);
    let partial = RefCell::new(Vec::new());
    let (mut partials, mut failures, mut recovered, mut trips) = (0usize, 0usize, 0usize, 0usize);
    group.bench_function(BenchmarkId::from_parameter("deadline-partial"), |b| {
        b.iter(|| {
            let token = CancelToken::with_deadline_in(deadline);
            let t = Instant::now();
            let result = service.select_with(&request, &token, OnDeadline::Partial);
            partial.borrow_mut().push(t.elapsed());
            trips += 1;
            match &result {
                Ok(report) => {
                    if report.is_partial() {
                        partials += 1;
                        recovered += report.outcome().selected.len();
                    }
                }
                // The trip landed before the first greedy round (or the
                // run beat the clock; both are legitimate outcomes on a
                // contended host).
                Err(_) => failures += 1,
            }
            std::hint::black_box(result.is_ok())
        })
    });
    cases.push(Case {
        name: "deadline-partial",
        samples: partial.into_inner(),
        metrics: vec![
            ("deadline_ns", deadline.as_nanos() as f64),
            ("partial_rate", partials as f64 / trips.max(1) as f64),
            ("failed_rate", failures as f64 / trips.max(1) as f64),
            ("mean_prefix_len", recovered as f64 / partials.max(1) as f64),
        ],
    });

    // Observation latency: cancel a running selection and measure how
    // long the run takes to notice and unwind. The sample starts at the
    // `cancel()` call, so submission/startup cost is excluded.
    let observe = RefCell::new(Vec::new());
    group.bench_function(BenchmarkId::from_parameter("cancel-observe"), |b| {
        b.iter(|| {
            let token = CancelToken::new();
            let worker = {
                let service = Arc::clone(&service);
                let request = request.clone();
                let token = token.clone();
                std::thread::spawn(move || {
                    service
                        .select_with(&request, &token, OnDeadline::Fail)
                        .is_err()
                })
            };
            // Let the selection get going before pulling the plug.
            std::thread::sleep(Duration::from_nanos((full_run / 4).max(50_000) as u64));
            let t = Instant::now();
            token.cancel();
            let cancelled = worker.join().expect("worker never panics");
            observe.borrow_mut().push(t.elapsed());
            std::hint::black_box(cancelled)
        })
    });
    cases.push(Case {
        name: "cancel-observe",
        samples: observe.into_inner(),
        metrics: vec![("full_run_median_ns", full_run as f64)],
    });

    group.finish();
    write_json(&cases);
}

criterion_group!(benches, bench_cancellation);
criterion_main!(benches);

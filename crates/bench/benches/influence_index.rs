//! Criterion microbenchmark: influence-row computation, activation-index
//! inversion, and incremental sigma updates (the Grain inner loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grain_data::synthetic::papers_like;
use grain_graph::{transition_matrix, TransitionKind};
use grain_influence::{ActivationIndex, CoverageState, InfluenceRows, ThetaRule};

fn bench_influence_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("influence-rows");
    group.sample_size(10);
    for n in [2_000usize, 8_000] {
        let dataset = papers_like(n, 11);
        let t = transition_matrix(&dataset.graph, TransitionKind::RandomWalk, true);
        group.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| {
                let rows = InfluenceRows::compute(t, 2, 1e-4);
                std::hint::black_box(rows.nnz())
            })
        });
    }
    group.finish();
}

fn bench_index_and_coverage(c: &mut Criterion) {
    let dataset = papers_like(8_000, 12);
    let t = transition_matrix(&dataset.graph, TransitionKind::RandomWalk, true);
    let rows = InfluenceRows::compute(&t, 2, 1e-4);
    c.bench_function("activation-index-build", |b| {
        b.iter(|| {
            let idx = ActivationIndex::build_with_rule(&rows, ThetaRule::RelativeToRowMax(0.25));
            std::hint::black_box(idx.total_entries())
        })
    });
    let index = ActivationIndex::build_with_rule(&rows, ThetaRule::RelativeToRowMax(0.25));
    c.bench_function("coverage-greedy-round", |b| {
        b.iter(|| {
            // One full greedy round: marginal gains of 1000 candidates.
            let st = CoverageState::new(&index);
            let total: usize = (0..1000u32).map(|u| st.marginal_gain(u)).sum();
            std::hint::black_box(total)
        })
    });
}

criterion_group!(benches, bench_influence_rows, bench_index_and_coverage);
criterion_main!(benches);

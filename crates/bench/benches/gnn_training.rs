//! Criterion microbenchmark: one training run per downstream model — the
//! unit cost that learning-based AL pays once per round and Grain never
//! pays during selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grain_data::synthetic::papers_like;
use grain_gnn::TrainConfig;
use grain_select::ModelKind;

fn bench_models(c: &mut Criterion) {
    let dataset = papers_like(3_000, 31);
    let train: Vec<u32> = dataset.split.train.iter().take(64).copied().collect();
    let cfg = TrainConfig {
        epochs: 20,
        patience: None,
        ..Default::default()
    };
    let mut group = c.benchmark_group("gnn-train-20-epochs");
    group.sample_size(10);
    for kind in ModelKind::table4_lineup() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let mut model = kind.build(&dataset, 3);
                    let rep = model.train(&dataset.labels, &train, &[], &cfg);
                    std::hint::black_box(rep.epochs_run)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);

//! Criterion microbenchmark: a cold one-shot engine per call vs the warm
//! `SelectionEngine` path, quantifying how much of a selection the
//! cached §3 artifacts amortize away.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grain_core::{GrainConfig, SelectionEngine};
use grain_data::synthetic::papers_like;

fn bench_cold_vs_warm(c: &mut Criterion) {
    let dataset = papers_like(4_000, 27);
    let budget = 2 * dataset.num_classes;
    let cfg = GrainConfig::ball_d();
    let mut group = c.benchmark_group("engine-reuse");
    group.sample_size(10);

    // Cold: a fresh engine per selection (what one-shot select() does).
    group.bench_with_input(BenchmarkId::from_parameter("cold"), &cfg, |b, cfg| {
        b.iter(|| {
            let mut engine = SelectionEngine::new(*cfg, &dataset.graph, &dataset.features)
                .expect("bench config is valid");
            let out = engine.select(&dataset.split.train, budget);
            std::hint::black_box(out.selected.len())
        })
    });

    // Warm: artifacts built once outside the timed loop; each iteration
    // pays only greedy maximization.
    group.bench_with_input(BenchmarkId::from_parameter("warm"), &cfg, |b, cfg| {
        let mut engine = SelectionEngine::new(*cfg, &dataset.graph, &dataset.features)
            .expect("bench config is valid");
        let _prime = engine.select(&dataset.split.train, budget);
        b.iter(|| {
            let out = engine.select(&dataset.split.train, budget);
            std::hint::black_box(out.selected.len())
        })
    });
    group.finish();
}

fn bench_budget_sweep(c: &mut Criterion) {
    let dataset = papers_like(3_000, 28);
    let c_classes = dataset.num_classes;
    let budgets: Vec<usize> = [2usize, 5, 10, 15, 20]
        .iter()
        .map(|m| m * c_classes)
        .collect();
    let cfg = GrainConfig::ball_d();
    let mut group = c.benchmark_group("budget-sweep");
    group.sample_size(10);

    group.bench_with_input(
        BenchmarkId::from_parameter("one-shot-per-budget"),
        &cfg,
        |b, cfg| {
            b.iter(|| {
                let mut total = 0usize;
                for &budget in &budgets {
                    let mut engine = SelectionEngine::new(*cfg, &dataset.graph, &dataset.features)
                        .expect("bench config is valid");
                    total += engine.select(&dataset.split.train, budget).selected.len();
                }
                std::hint::black_box(total)
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::from_parameter("warm-engine"),
        &cfg,
        |b, cfg| {
            b.iter(|| {
                let mut engine = SelectionEngine::new(*cfg, &dataset.graph, &dataset.features)
                    .expect("bench config is valid");
                let outs = engine.select_budgets(&dataset.split.train, &budgets);
                std::hint::black_box(outs.iter().map(|o| o.selected.len()).sum::<usize>())
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm, bench_budget_sweep);
criterion_main!(benches);

//! Markdown table emission for experiment reports.

/// A simple column-aligned Markdown table builder.
#[derive(Clone, Debug, Default)]
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width != header width");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.header.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.header {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal ("81.3").
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Formats seconds adaptively ("12.3ms" / "4.56s").
pub fn secs(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = MarkdownTable::new(&["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("| a | b |"));
        assert!(r.contains("| 1 | 2 |"));
        assert!(r.contains("|---|---|"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = MarkdownTable::new(&["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.8134), "81.3");
        assert_eq!(secs(std::time::Duration::from_millis(12)), "12.0ms");
        assert_eq!(secs(std::time::Duration::from_secs(4)), "4.00s");
    }
}

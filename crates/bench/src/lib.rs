//! Experiment-harness utilities shared by every table/figure binary.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §3 for the index) and prints a Markdown block that
//! EXPERIMENTS.md records verbatim. This library holds the shared
//! plumbing: CLI flag parsing (no external CLI crate), selection→training
//! evaluation loops, and Markdown emission.

pub mod cli;
pub mod eval;
pub mod lineup;
pub mod table;

pub use cli::Flags;
pub use eval::{evaluate_selection, mean_std, timed_selection, EvalSpec};
pub use table::MarkdownTable;

//! Figure 7 — interpretability: where do the selected seeds and their
//! activated crowds sit in the aggregated feature space?
//!
//! Protocol (per the paper, §4.6): sample 60 candidate nodes on
//! Citeseer-like, select 12 with Grain (ball-D) and with AGE, mark every
//! sampled node as seed / activated / non-activated, and lay the space
//! out in 2-D (PCA substitutes for t-SNE, see DESIGN.md). The binary
//! writes one CSV per method (`results/fig7_<method>.csv`) and prints the
//! quantitative claims behind the figure: activated-node counts and
//! activated-crowd spread.

use grain_bench::lineup::inner_train_cfg;
use grain_bench::{Flags, MarkdownTable};
use grain_core::{Budget, GrainConfig, GrainService, SelectionRequest};
use grain_data::Dataset;
use grain_linalg::{distance, pca, DenseMatrix};
use grain_select::age::AgeSelector;
use grain_select::{ModelKind, NodeSelector, SelectionContext};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::io::Write;

fn main() {
    let flags = Flags::from_env();
    // Citeseer-like is affordable in both modes (model-free selection plus
    // one tiny AGE run on a 60-node pool).
    let _ = flags.fast;
    let dataset = grain_data::synthetic::citeseer_like(flags.seed);
    let sample_size = 60usize;
    let budget = 12usize;
    // Sample the 60-node candidate subset.
    let mut rng = StdRng::seed_from_u64(flags.seed ^ 0xf17);
    let mut sample = dataset.split.train.clone();
    sample.shuffle(&mut rng);
    sample.truncate(sample_size);
    sample.sort_unstable();

    // One service-pooled engine supplies the layout embedding, the
    // activation index, and the Grain selection from a single artifact
    // store.
    let service = GrainService::new();
    service
        .register_graph("fig7", dataset.graph.clone(), dataset.features.clone())
        .expect("synthetic corpus is well-formed");
    let (checkout, _) = service
        .engine("fig7", &GrainConfig::ball_d())
        .expect("ball-D defaults are valid");
    let (embedding, index) = {
        let mut engine = checkout.lock();
        (
            engine.normalized_embedding(),
            engine.activation_index().clone(),
        )
    };
    let layout = pca::pca(&embedding, 2, 60, flags.seed).projected;

    // Grain (ball-D) restricted to the sample — a typed request answered
    // by the engine we just warmed (the report's pool event is a hit).
    let request = SelectionRequest::new("fig7", GrainConfig::ball_d(), Budget::Fixed(budget))
        .with_candidates(sample.clone());
    let grain_report = service.select(&request).expect("valid request");
    let grain_sel = grain_report.outcome();
    // AGE restricted to the sample.
    let sub = restricted_dataset(&dataset, &sample);
    let ctx = SelectionContext::new(&sub, flags.seed);
    let mut age = AgeSelector::new(ModelKind::Sgc { k: 2 }, flags.seed)
        .with_train_config(inner_train_cfg(flags.fast));
    let age_sel = age.select(&ctx, budget);

    let mut t = MarkdownTable::new(&[
        "method",
        "seeds",
        "activated (of 60)",
        "non-activated",
        "activated spread (mean pairwise distance)",
    ]);
    let mut block = String::from("## Figure 7: seed/activated distribution (PCA layout)\n\n");
    for (name, selected) in [("grain(ball-d)", &grain_sel.selected), ("age", &age_sel)] {
        let sigma: std::collections::HashSet<u32> = index.sigma(selected).into_iter().collect();
        let activated: Vec<u32> = sample
            .iter()
            .copied()
            .filter(|v| sigma.contains(v) && !selected.contains(v))
            .collect();
        let non_activated = sample_size - activated.len() - selected.len().min(sample_size);
        let spread = mean_pairwise(&embedding, &activated);
        t.push_row(vec![
            name.to_string(),
            selected.len().to_string(),
            activated.len().to_string(),
            non_activated.to_string(),
            format!("{spread:.3}"),
        ]);
        let path = format!("results/fig7_{}.csv", name.replace(['(', ')'], "_"));
        write_csv(&path, &sample, selected, &sigma, &layout);
        block.push_str(&format!("CSV written: {path}\n"));
    }
    block.push('\n');
    block.push_str(&t.render());
    block.push_str(
        "\nPaper's claim: Grain activates more of the sampled nodes than AGE and \
         its activated crowd scatters across the feature space (higher spread) \
         instead of clustering in one region.\n",
    );
    flags.emit(&block);
}

/// Dataset view whose train pool is the sampled candidate subset.
fn restricted_dataset(dataset: &Dataset, sample: &[u32]) -> Dataset {
    let mut out = dataset.clone();
    out.split.train = sample.to_vec();
    out
}

fn mean_pairwise(embedding: &DenseMatrix, nodes: &[u32]) -> f64 {
    if nodes.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            total += distance::grain_distance(
                embedding.row(nodes[i] as usize),
                embedding.row(nodes[j] as usize),
            ) as f64;
            count += 1;
        }
    }
    total / count as f64
}

fn write_csv(
    path: &str,
    sample: &[u32],
    seeds: &[u32],
    sigma: &std::collections::HashSet<u32>,
    layout: &DenseMatrix,
) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let file = std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "node,x,y,role").expect("csv write failed");
    for &v in sample {
        let role = if seeds.contains(&v) {
            "seed"
        } else if sigma.contains(&v) {
            "activated"
        } else {
            "non-activated"
        };
        writeln!(
            w,
            "{},{:.4},{:.4},{}",
            v,
            layout.get(v as usize, 0),
            layout.get(v as usize, 1),
            role
        )
        .expect("csv write failed");
    }
}

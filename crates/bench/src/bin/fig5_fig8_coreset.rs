//! Figures 5 & 8 — core-set selection: label rate needed to reach a given
//! accuracy gap from the full-training-set accuracy.
//!
//! Protocol: train the reference model on the entire (fully labeled) train
//! pool; for each method, select subsets at a grid of label rates via
//! `NodeSelector::select_sweep` (prefix-consistent methods select once at
//! the max rate and slice prefixes; Grain sweeps the grid through one warm
//! `SelectionEngine`); for each gap `g` in 1..7%, report the smallest
//! label rate whose subset-trained accuracy is within `g` of the
//! reference. Figure 5 is the PubMed column of Figure 8.
//!
//! Beyond the paper's lineup, the §2.1 core-set criteria (max-entropy,
//! forgetting events) are included as extra rows.

use grain_bench::lineup::{al_lineup, inner_train_cfg};
use grain_bench::{evaluate_selection, EvalSpec, Flags, MarkdownTable};
use grain_data::Dataset;
use grain_gnn::TrainConfig;
use grain_select::coreset::{ForgettingSelector, MaxEntropySelector};
use grain_select::{ModelKind, NodeSelector, SelectionContext};

fn main() {
    let flags = Flags::from_env();
    let datasets: Vec<Dataset> = if flags.fast {
        vec![grain_data::synthetic::cora_like(flags.seed)]
    } else {
        vec![
            grain_data::synthetic::cora_like(flags.seed),
            grain_data::synthetic::citeseer_like(flags.seed),
            grain_data::synthetic::pubmed_like(flags.seed),
        ]
    };
    let label_rates = [0.01f64, 0.02, 0.035, 0.06, 0.1, 0.16, 0.25];
    let gaps = [1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
    let mut block = String::from("## Figures 5 & 8: core-set label rate vs accuracy gap\n");
    for dataset in &datasets {
        let spec = EvalSpec {
            model: ModelKind::default(),
            train: TrainConfig {
                seed: flags.seed,
                ..TrainConfig::fast()
            },
            model_repeats: 1,
        };
        // Reference: full train pool.
        let reference = evaluate_selection(dataset, &dataset.split.train, &spec);
        let pool_size = dataset.split.train.len();
        let max_budget =
            ((label_rates.last().unwrap() * pool_size as f64).ceil() as usize).min(pool_size);

        let ctx = SelectionContext::new(dataset, flags.seed);
        let mut methods: Vec<Box<dyn NodeSelector>> =
            al_lineup(flags.seed, flags.fast, ModelKind::default());
        methods.push(Box::new(
            MaxEntropySelector::new(ModelKind::default(), flags.seed)
                .with_train_config(inner_train_cfg(flags.fast)),
        ));
        methods.push(Box::new(
            ForgettingSelector::new(ModelKind::default(), flags.seed)
                .with_train_config(inner_train_cfg(flags.fast)),
        ));

        let mut header: Vec<String> = vec!["method".into()];
        header.extend(gaps.iter().map(|g| format!("gap<={g:.0}%")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut out = MarkdownTable::new(&header_refs);
        // Budget grid shared by all methods; the Grain adapters answer the
        // whole sweep from one warm SelectionEngine.
        let budgets: Vec<usize> = label_rates
            .iter()
            .map(|&rate| {
                ((rate * pool_size as f64).ceil() as usize).clamp(dataset.num_classes, max_budget)
            })
            .collect();
        for method in &mut methods {
            let sweep = method.select_sweep(&ctx, &budgets);
            // Accuracy at each label rate.
            let mut accs = Vec::with_capacity(label_rates.len());
            for selection in &sweep {
                accs.push(evaluate_selection(dataset, selection, &spec));
            }
            let mut row = vec![method.name().to_string()];
            for &gap in &gaps {
                let needed = label_rates
                    .iter()
                    .zip(&accs)
                    .find(|(_, &acc)| (reference - acc) * 100.0 <= gap)
                    .map(|(&rate, _)| format!("{:.1}%", rate * 100.0))
                    .unwrap_or_else(|| ">25%".to_string());
                row.push(needed);
            }
            out.push_row(row);
        }
        block.push_str(&format!(
            "\n### {} (reference accuracy {:.1}% with {} labels)\n\n{}",
            dataset.name,
            reference * 100.0,
            pool_size,
            out.render()
        ));
    }
    block.push_str(
        "\nPaper's claim: both Grain variants reach every accuracy gap with \
         several times fewer labels than AGE/ANRMAB/KCG/Random/Degree \
         (e.g. 3.2x fewer than AGE at the 2% gap on PubMed).\n",
    );
    flags.emit(&block);
}

//! Table 5 analogue — overview of the generated corpora, so every
//! experiment's substrate is auditable.

use grain_bench::Flags;
use grain_data::stats::DatasetStats;
use grain_data::synthetic;

fn main() {
    let flags = Flags::from_env();
    let datasets = if flags.fast {
        vec![
            synthetic::papers_like(1500, flags.seed),
            synthetic::papers_like(5000, flags.seed),
        ]
    } else {
        vec![
            synthetic::cora_like(flags.seed),
            synthetic::citeseer_like(flags.seed),
            synthetic::pubmed_like(flags.seed),
            synthetic::reddit_like(flags.seed),
            synthetic::papers_like(50_000, flags.seed),
        ]
    };
    let mut block = String::from("## Table 5 analogue: generated corpora overview\n\n");
    block.push_str(&DatasetStats::markdown_header());
    block.push('\n');
    for d in &datasets {
        block.push_str(&DatasetStats::of(d).markdown_row());
        block.push('\n');
    }
    block.push_str(
        "\nNode/class counts and density contrasts follow Table 5 of the paper; \
         feature dimensions are scaled (see DESIGN.md).\n",
    );
    flags.emit(&block);
}

//! Figures 6 & 9 — end-to-end selection runtime and scalability.
//!
//! (a) wall-clock of each method's full B = 20C selection on Cora-like,
//!     PubMed-like, Reddit-like, with speedups relative to ANRMAB (the
//!     paper reports 37-231x for ball-D on GPU, 140-964x on CPU; this
//!     reproduction is CPU-only, so the Figure 9 regime applies);
//! (b) scaling curve on papers-like at growing node counts: Grain stays
//!     near-linear while AGE's per-round retraining blows up (the paper
//!     extrapolates AGE to >1 year at 100M nodes).

use grain_bench::lineup::al_lineup;
use grain_bench::{table, timed_selection, Flags, MarkdownTable};
use grain_core::{
    Budget, GrainConfig, GrainService, PruneStrategy, SelectionEngine, SelectionRequest,
};
use grain_data::Dataset;
use grain_graph::Graph;
use grain_linalg::DenseMatrix;
use grain_select::{ModelKind, SelectionContext};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let flags = Flags::from_env();
    let mut block = String::from("## Figures 6 & 9: end-to-end selection runtime (CPU)\n");
    block.push_str(&part_a(&flags));
    block.push_str(&part_b(&flags));
    block.push_str(
        "\nPaper's claim: Grain is one to two orders of magnitude faster than \
         learning-based AL and scales near-linearly with graph size.\n",
    );
    flags.emit(&block);
}

fn part_a(flags: &Flags) -> String {
    let datasets: Vec<Dataset> = if flags.fast {
        vec![grain_data::synthetic::papers_like(1500, flags.seed)]
    } else {
        vec![
            grain_data::synthetic::cora_like(flags.seed),
            grain_data::synthetic::pubmed_like(flags.seed),
            grain_data::synthetic::reddit_like(flags.seed),
        ]
    };
    let mut out = String::from("\n### (a) selection wall-clock at B = 20C\n\n");
    for dataset in &datasets {
        let budget = 20 * dataset.num_classes;
        let ctx = SelectionContext::new(dataset, flags.seed);
        let mut methods = al_lineup(flags.seed, flags.fast, ModelKind::default());
        let mut rows: Vec<(String, Duration)> = Vec::new();
        for method in &mut methods {
            let (_, dur) = timed_selection(method.as_mut(), &ctx, budget);
            rows.push((method.name().to_string(), dur));
        }
        let anrmab = rows
            .iter()
            .find(|(n, _)| n == "anrmab")
            .map(|(_, d)| d.as_secs_f64())
            .unwrap_or(f64::NAN);
        let mut t = MarkdownTable::new(&["method", "runtime", "speedup vs anrmab"]);
        for (name, dur) in &rows {
            let speedup = anrmab / dur.as_secs_f64();
            t.push_row(vec![
                name.clone(),
                table::secs(*dur),
                if name == "anrmab" {
                    "1.0x".into()
                } else {
                    format!("{speedup:.1}x")
                },
            ]);
        }
        out.push_str(&format!("\n#### {}\n\n{}", dataset.name, t.render()));
    }
    out
}

fn part_b(flags: &Flags) -> String {
    let scales: Vec<usize> = if flags.fast {
        vec![2_000, 5_000, 10_000]
    } else {
        vec![10_000, 20_000, 50_000, 100_000]
    };
    // Learning-based AL only runs at the small scales; beyond the cap the
    // row reports OOT, mirroring the paper's two-week cutoff.
    let age_cap = if flags.fast { 5_000 } else { 20_000 };
    let mut t = MarkdownTable::new(&[
        "nodes",
        "grain(ball-d)",
        "grain(ball-d) warm",
        "grain(ball-d)+prune",
        "grain(nn-d)+prune",
        "age",
    ]);
    for &n in &scales {
        let dataset = grain_data::synthetic::papers_like(n, flags.seed);
        let budget = 20 * dataset.num_classes;
        let corpus = ServedCorpus::of(&dataset);
        // The context engine shares the corpus handles — one graph + one
        // feature matrix allocation serves the context, the timing
        // services, and the AGE run at every scale.
        let ctx = SelectionContext::over_engine(
            &dataset,
            flags.seed,
            SelectionEngine::over(
                GrainConfig::default(),
                Arc::clone(&corpus.graph),
                Arc::clone(&corpus.features),
            )
            .expect("synthetic corpus is well-formed"),
        );

        let ball = time_grain(&corpus, GrainConfig::ball_d(), budget);
        let ball_warm = time_grain_warm(&corpus, GrainConfig::ball_d(), budget);
        let pruned_cfg = GrainConfig {
            prune: Some(PruneStrategy::WalkMass { keep_fraction: 0.2 }),
            ..GrainConfig::ball_d()
        };
        let ball_pruned = time_grain(&corpus, pruned_cfg, budget);
        // NN-D's gain evaluation scans all nodes per candidate, so §3.4
        // pruning is mandatory at scale (the paper's NN-D at 100M likewise
        // runs 1.6x slower than ball-D *with* uninfluential-node dismissal).
        let nn_keep = (2_000.0 / dataset.split.train.len() as f64).min(1.0);
        let nn_cfg = GrainConfig {
            prune: Some(PruneStrategy::WalkMass {
                keep_fraction: nn_keep,
            }),
            ..GrainConfig::nn_d()
        };
        let nn = time_grain(&corpus, nn_cfg, budget);
        let age = if n <= age_cap {
            let mut methods = al_lineup(flags.seed, flags.fast, ModelKind::Sgc { k: 2 });
            let age_sel = methods
                .iter_mut()
                .find(|m| m.name() == "age")
                .expect("lineup contains age");
            let (_, dur) = timed_selection(age_sel.as_mut(), &ctx, budget);
            table::secs(dur)
        } else {
            "OOT".to_string()
        };
        t.push_row(vec![
            n.to_string(),
            table::secs(ball),
            table::secs(ball_warm),
            table::secs(ball_pruned),
            table::secs(nn),
            age,
        ]);
    }
    format!("\n### (b) scaling on papers-like corpora\n\n{}", t.render())
}

/// A dataset wrapped in the shared corpus handles the service registers —
/// built once per scale so each timed call shares, not deep-clones, the
/// graph and feature matrix.
struct ServedCorpus {
    name: String,
    graph: Arc<Graph>,
    features: Arc<DenseMatrix>,
    candidates: Vec<u32>,
}

impl ServedCorpus {
    fn of(dataset: &Dataset) -> Self {
        Self {
            name: dataset.name.clone(),
            graph: Arc::new(dataset.graph.clone()),
            features: Arc::new(dataset.features.clone()),
            candidates: dataset.split.train.clone(),
        }
    }

    /// A one-graph service plus the request the timing helpers replay —
    /// the same front door production serving uses, so the figure
    /// measures the served path end to end.
    fn service_and_request(
        &self,
        config: GrainConfig,
        budget: usize,
    ) -> (GrainService, SelectionRequest) {
        let service = GrainService::new();
        service
            .register_graph(
                &self.name,
                Arc::clone(&self.graph),
                Arc::clone(&self.features),
            )
            .expect("synthetic corpus is well-formed");
        let request = SelectionRequest::new(&self.name, config, Budget::Fixed(budget))
            .with_candidates(self.candidates.clone());
        (service, request)
    }
}

fn time_grain(corpus: &ServedCorpus, config: GrainConfig, budget: usize) -> Duration {
    let (service, request) = corpus.service_and_request(config, budget);
    let report = service.select(&request).expect("runtime configs are valid");
    report.outcome().timings.total
}

/// Steady-state serving cost: the second request hits the pooled engine
/// fully warm and pays only greedy maximization — the paper's precompute
/// is fully amortized.
fn time_grain_warm(corpus: &ServedCorpus, config: GrainConfig, budget: usize) -> Duration {
    let (service, request) = corpus.service_and_request(config, budget);
    let _cold = service.select(&request).expect("runtime configs are valid");
    let warm = service.select(&request).expect("runtime configs are valid");
    assert!(warm.fully_warm(), "repeat request must be a warm pool hit");
    warm.outcome().timings.total
}

//! Figure 4 — active-learning test accuracy across labeling budgets.
//!
//! For each citation corpus (Cora-like, Citeseer-like, PubMed-like) and
//! each of the seven methods, sweep the budgets `{2,5,10,20}·C`
//! (prefix-consistent methods select once at `20C` and slice prefixes;
//! the Grain adapters run every budget through one warm
//! `SelectionEngine`), evaluate each selection with a GCN, and report the
//! mean test accuracy over selector seeds.

use grain_bench::lineup::al_lineup;
use grain_bench::{evaluate_selection, table, EvalSpec, Flags, MarkdownTable};
use grain_data::Dataset;
use grain_gnn::TrainConfig;
use grain_select::{ModelKind, SelectionContext};

fn main() {
    let flags = Flags::from_env();
    let seeds = flags.repeats_or(2);
    let datasets: Vec<Dataset> = if flags.fast {
        vec![
            grain_data::synthetic::papers_like(1500, flags.seed),
            grain_data::synthetic::cora_like(flags.seed),
        ]
    } else {
        vec![
            grain_data::synthetic::cora_like(flags.seed),
            grain_data::synthetic::citeseer_like(flags.seed),
            grain_data::synthetic::pubmed_like(flags.seed),
        ]
    };
    let multipliers = [2usize, 5, 10, 20];
    let mut block = String::from("## Figure 4: AL test accuracy vs labeling budget\n");
    for dataset in &datasets {
        let c = dataset.num_classes;
        let mut header: Vec<String> = vec!["method".into()];
        header.extend(multipliers.iter().map(|m| format!("B={}C ({})", m, m * c)));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table_out = MarkdownTable::new(&header_refs);
        let method_names: Vec<&'static str> = al_lineup(0, flags.fast, ModelKind::default())
            .iter()
            .map(|s| s.name())
            .collect();
        // accs[method][budget] accumulated over selector seeds.
        let mut accs = vec![vec![Vec::new(); multipliers.len()]; method_names.len()];
        for seed_rep in 0..seeds {
            let seed = flags.seed.wrapping_add(seed_rep as u64 * 101);
            let ctx = SelectionContext::new(dataset, seed);
            let mut methods = al_lineup(seed, flags.fast, ModelKind::default());
            let budgets: Vec<usize> = multipliers.iter().map(|&m| m * c).collect();
            for (mi, method) in methods.iter_mut().enumerate() {
                let sweep = method.select_sweep(&ctx, &budgets);
                for (selection, acc_cell) in sweep.iter().zip(accs[mi].iter_mut()) {
                    let spec = EvalSpec {
                        model: ModelKind::default(),
                        train: TrainConfig {
                            seed,
                            ..TrainConfig::fast()
                        },
                        model_repeats: 1,
                    };
                    acc_cell.push(evaluate_selection(dataset, selection, &spec));
                }
            }
        }
        for (name, acc_row) in method_names.iter().zip(&accs) {
            let mut row = vec![name.to_string()];
            row.extend(
                acc_row
                    .iter()
                    .map(|xs| table::pct(grain_linalg::stats::mean(xs))),
            );
            table_out.push_row(row);
        }
        block.push_str(&format!(
            "\n### {} (C={}, {} seeds, accuracy %)\n\n{}",
            dataset.name,
            c,
            seeds,
            table_out.render()
        ));
    }
    block.push_str(
        "\nPaper's claim: both Grain variants dominate all baselines at every budget \
         and boost accuracy fastest at small budgets.\n",
    );
    flags.emit(&block);
}

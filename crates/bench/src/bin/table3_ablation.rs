//! Table 3 — influence of the DIM components.
//!
//! Grain (ball-D) against its ablations at B = 20C on the three citation
//! corpora: "No Magnitude" (ball coverage of seeds only), "No Diversity"
//! (pure |sigma(S)| maximization), "Classic Coverage" (diversity from
//! seed-centered balls, i.e. sigma(S) replaced by S).

use grain_bench::lineup::ablation_lineup;
use grain_bench::{evaluate_selection, EvalSpec, Flags, MarkdownTable};
use grain_data::Dataset;
use grain_gnn::TrainConfig;
use grain_select::{ModelKind, SelectionContext};

fn main() {
    let flags = Flags::from_env();
    let seeds = flags.repeats_or(3);
    let datasets: Vec<Dataset> = if flags.fast {
        vec![
            grain_data::synthetic::cora_like(flags.seed),
            grain_data::synthetic::citeseer_like(flags.seed),
        ]
    } else {
        vec![
            grain_data::synthetic::cora_like(flags.seed),
            grain_data::synthetic::citeseer_like(flags.seed),
            grain_data::synthetic::pubmed_like(flags.seed),
        ]
    };
    let names: Vec<&'static str> = ablation_lineup().iter().map(|s| s.name()).collect();
    let mut header: Vec<String> = vec!["variant".into()];
    for d in &datasets {
        header.push(d.name.clone());
        header.push(format!("Δ vs full ({})", d.name));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut out = MarkdownTable::new(&header_refs);
    // accs[variant][dataset]
    let mut accs = vec![vec![0.0f64; datasets.len()]; names.len()];
    for (di, dataset) in datasets.iter().enumerate() {
        let budget = 20 * dataset.num_classes;
        for seed_rep in 0..seeds {
            let seed = flags.seed.wrapping_add(seed_rep as u64 * 17);
            let ctx = SelectionContext::new(dataset, seed);
            for (variant, acc_row) in ablation_lineup().iter_mut().zip(accs.iter_mut()) {
                let selected = variant.select(&ctx, budget);
                let spec = EvalSpec {
                    model: ModelKind::default(),
                    train: TrainConfig {
                        seed,
                        ..TrainConfig::fast()
                    },
                    model_repeats: 1,
                };
                acc_row[di] += evaluate_selection(dataset, &selected, &spec) / seeds as f64;
            }
        }
    }
    let full_row = names.iter().position(|&n| n == "grain(ball-d)").unwrap();
    for (vi, name) in names.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (di, &acc) in accs[vi].iter().enumerate() {
            row.push(format!("{:.1}", acc * 100.0));
            let delta = (acc - accs[full_row][di]) * 100.0;
            row.push(if vi == full_row {
                "–".into()
            } else {
                format!("{delta:+.1}")
            });
        }
        out.push_row(row);
    }
    let mut block = format!(
        "## Table 3: ablation of the DIM components (B = 20C, {seeds} seeds, accuracy %)\n\n{}",
        out.render()
    );
    block.push_str(
        "\nPaper's claim: removing the magnitude term hurts most, removing \
         diversity hurts on every corpus, and classic seed-centered coverage \
         trails the sigma(S)-centered ball diversity.\n",
    );
    flags.emit(&block);
}

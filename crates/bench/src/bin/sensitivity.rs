//! Extension experiment — hyper-parameter sensitivity of Grain (ball-D).
//!
//! Not a paper table: the paper fixes `θ = 0.25`, `r = 0.05`, `γ = 1`
//! (Appendix A.4) after external tuning. This binary sweeps each knob
//! around those defaults on Cora-like and reports the induced accuracy,
//! so users can judge how delicate the defaults are. DESIGN.md lists this
//! as one of the design-choice ablations.

use grain_bench::{evaluate_selection, EvalSpec, Flags, MarkdownTable};
use grain_core::{GrainConfig, SelectionEngine};
use grain_gnn::TrainConfig;
use grain_influence::ThetaRule;
use grain_select::ModelKind;

fn main() {
    let flags = Flags::from_env();
    let dataset = grain_data::synthetic::cora_like(flags.seed);
    let budget = 20 * dataset.num_classes;
    let spec = EvalSpec {
        model: ModelKind::default(),
        train: TrainConfig {
            seed: flags.seed,
            ..TrainConfig::fast()
        },
        model_repeats: if flags.fast { 1 } else { 2 },
    };
    let mut block = format!(
        "## Sensitivity (extension): Grain (ball-D) hyper-parameters on {} (B = 20C)\n",
        dataset.name
    );
    // One warm engine serves the whole scan: within each sweep only the
    // artifact its knob keys rebuilds (theta the index, r the ball lists,
    // gamma nothing). Crossing a sweep boundary resets the previous knob to
    // its default, which may rebuild that one artifact once more.
    let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &dataset.graph, &dataset.features)
        .expect("ball-D defaults are valid");

    // θ sweep (relative rule).
    let mut t = MarkdownTable::new(&["theta (relative)", "sigma(S)", "accuracy (%)"]);
    for theta in [0.05f32, 0.1, 0.25, 0.5, 0.75] {
        let cfg = GrainConfig {
            theta: ThetaRule::RelativeToRowMax(theta),
            ..GrainConfig::ball_d()
        };
        let (sigma, acc) = run(&mut engine, &dataset, cfg, budget, &spec);
        t.push_row(vec![
            format!("{theta}"),
            sigma.to_string(),
            format!("{:.1}", acc * 100.0),
        ]);
    }
    block.push_str(&format!("\n### Activation threshold θ\n\n{}", t.render()));

    // r sweep.
    let mut t = MarkdownTable::new(&["radius r", "accuracy (%)"]);
    for radius in [0.01f32, 0.05, 0.1, 0.2] {
        let cfg = GrainConfig {
            radius,
            ..GrainConfig::ball_d()
        };
        let (_, acc) = run(&mut engine, &dataset, cfg, budget, &spec);
        t.push_row(vec![format!("{radius}"), format!("{:.1}", acc * 100.0)]);
    }
    block.push_str(&format!("\n### Ball radius r\n\n{}", t.render()));

    // γ sweep.
    let mut t = MarkdownTable::new(&["gamma", "accuracy (%)"]);
    for gamma in [0.0f64, 0.25, 0.5, 1.0, 2.0] {
        let cfg = GrainConfig {
            gamma,
            ..GrainConfig::ball_d()
        };
        let (_, acc) = run(&mut engine, &dataset, cfg, budget, &spec);
        t.push_row(vec![format!("{gamma}"), format!("{:.1}", acc * 100.0)]);
    }
    block.push_str(&format!("\n### Diversity trade-off γ\n\n{}", t.render()));
    block.push_str(
        "\nReading: accuracy should be flat near the Appendix A.4 defaults \
         (θ=0.25, r=0.05, γ=1) and degrade only at the extremes (θ→1 starves \
         σ(S); r→0 reduces ball-D to pure influence; γ=0 is the No-Diversity \
         ablation).\n",
    );
    flags.emit(&block);
}

fn run(
    engine: &mut SelectionEngine,
    dataset: &grain_data::Dataset,
    cfg: GrainConfig,
    budget: usize,
    spec: &EvalSpec,
) -> (usize, f64) {
    engine.set_config(cfg).expect("sweep configs are valid");
    let outcome = engine.select(&dataset.split.train, budget);
    let acc = evaluate_selection(dataset, &outcome.selected, spec);
    (outcome.sigma.len(), acc)
}

//! Table 2 — AL test accuracy at the full budget `B = 20C` on all five
//! corpora, including the papers100M stand-in where learning-based
//! methods are marked OOT (the paper reports AGE/ANRMAB failing to finish
//! within two weeks; here the cutoff is a wall-clock cap).

use grain_bench::lineup::al_lineup;
use grain_bench::{evaluate_selection, timed_selection, EvalSpec, Flags, MarkdownTable};
use grain_data::Dataset;
use grain_gnn::TrainConfig;
use grain_select::{ModelKind, SelectionContext};

fn main() {
    let flags = Flags::from_env();
    let seeds = flags.repeats_or(2);
    // (dataset, downstream model, learning-based AL allowed?)
    let setups: Vec<(Dataset, ModelKind, bool)> = if flags.fast {
        vec![
            (
                grain_data::synthetic::cora_like(flags.seed),
                ModelKind::default(),
                true,
            ),
            (
                grain_data::synthetic::papers_like(6000, flags.seed),
                ModelKind::Sgc { k: 2 },
                false,
            ),
        ]
    } else {
        vec![
            (
                grain_data::synthetic::cora_like(flags.seed),
                ModelKind::default(),
                true,
            ),
            (
                grain_data::synthetic::citeseer_like(flags.seed),
                ModelKind::default(),
                true,
            ),
            (
                grain_data::synthetic::pubmed_like(flags.seed),
                ModelKind::default(),
                true,
            ),
            (
                grain_data::synthetic::reddit_like(flags.seed),
                ModelKind::default(),
                true,
            ),
            // papers100M stand-in: SGC downstream (paper §4.3 does the same
            // because GCN runs out of memory); learning-based AL is OOT.
            (
                grain_data::synthetic::papers_like(50_000, flags.seed),
                ModelKind::Sgc { k: 2 },
                false,
            ),
        ]
    };

    let names: Vec<&'static str> = al_lineup(0, flags.fast, ModelKind::default())
        .iter()
        .map(|s| s.name())
        .collect();
    let mut header: Vec<String> = vec!["method".into()];
    header.extend(setups.iter().map(|(d, _, _)| d.name.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut out = MarkdownTable::new(&header_refs);
    let mut cells: Vec<Vec<String>> = vec![vec![String::from("-"); setups.len()]; names.len()];

    for (di, (dataset, eval_model, allow_learning)) in setups.iter().enumerate() {
        let budget = 20 * dataset.num_classes;
        for seed_rep in 0..seeds {
            let seed = flags.seed.wrapping_add(seed_rep as u64 * 131);
            let ctx = SelectionContext::new(dataset, seed);
            // Learning-based AL on the large corpus uses SGC internally too.
            let inner = if *allow_learning {
                ModelKind::default()
            } else {
                ModelKind::Sgc { k: 2 }
            };
            let mut methods = al_lineup(seed, flags.fast, inner);
            for (mi, method) in methods.iter_mut().enumerate() {
                if method.is_learning_based() && !allow_learning {
                    cells[mi][di] = "OOT".into();
                    continue;
                }
                let (selected, _) = timed_selection(method.as_mut(), &ctx, budget);
                let spec = EvalSpec {
                    model: *eval_model,
                    train: TrainConfig {
                        seed,
                        ..TrainConfig::fast()
                    },
                    model_repeats: 1,
                };
                let acc = evaluate_selection(dataset, &selected, &spec);
                // Accumulate means across seed repetitions in-place.
                let prev: f64 = cells[mi][di].parse().unwrap_or(0.0);
                let mean = (prev * seed_rep as f64 + acc * 100.0) / (seed_rep + 1) as f64;
                cells[mi][di] = format!("{mean:.1}");
            }
        }
    }
    for (mi, name) in names.iter().enumerate() {
        let mut row = vec![name.to_string()];
        row.extend(cells[mi].clone());
        out.push_row(row);
    }
    let mut block = format!(
        "## Table 2: test accuracy (%) with B = 20C labeled nodes ({seeds} seeds)\n\n{}",
        out.render()
    );
    block.push_str(
        "\nPaper's claim: Grain (ball-D) wins on the citation corpora and the \
         papers corpus; Grain (NN-D) wins on the dense Reddit corpus; AGE/ANRMAB \
         are OOT at papers scale.\n",
    );
    flags.emit(&block);
}

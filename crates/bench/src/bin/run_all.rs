//! Runs every experiment binary in sequence, collecting the Markdown
//! blocks into one report (default `results/experiments.md`).
//!
//! ```text
//! cargo run -p grain-bench --release --bin run_all             # full
//! cargo run -p grain-bench --release --bin run_all -- --fast   # smoke
//! ```

use grain_bench::Flags;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "dataset_stats",
    "fig2_influence_vs_accuracy",
    "fig4_al_budget_sweep",
    "table2_final_accuracy",
    "fig5_fig8_coreset",
    "fig6_fig9_runtime",
    "table3_ablation",
    "table4_generalization",
    "fig7_interpretability",
    "sensitivity",
];

fn main() {
    let flags = Flags::from_env();
    let out_path = flags
        .out
        .clone()
        .unwrap_or_else(|| "results/experiments.md".to_string());
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("cannot create results directory");
    }
    // Start the report fresh.
    std::fs::write(
        &out_path,
        format!(
            "# Grain reproduction — experiment report\n\nseed {}, mode {}\n\n",
            flags.seed,
            if flags.fast { "fast" } else { "full" }
        ),
    )
    .expect("cannot write report header");

    let self_path = std::env::current_exe().expect("cannot locate current executable");
    let bin_dir = self_path.parent().expect("executable has no parent dir");
    for name in EXPERIMENTS {
        let started = std::time::Instant::now();
        eprintln!("==> running {name}");
        let mut cmd = Command::new(bin_dir.join(name));
        cmd.arg("--seed").arg(flags.seed.to_string());
        cmd.arg("--out").arg(&out_path);
        if flags.fast {
            cmd.arg("--fast");
        }
        if let Some(r) = flags.repeats {
            cmd.arg("--repeats").arg(r.to_string());
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "experiment {name} failed with {status}");
        eprintln!(
            "==> {name} finished in {:.1}s",
            started.elapsed().as_secs_f64()
        );
    }
    println!("report written to {out_path}");
}

//! Table 4 — generalization across downstream GNNs.
//!
//! The seven selection methods pick B = 20C nodes on PubMed-like once per
//! seed; each selection is then evaluated by training four different
//! downstream models (SGC, APPNP, GCN, MVGRL-sim) on it. Grain is
//! model-free, so the same selection serves every model.

use grain_bench::lineup::al_lineup;
use grain_bench::{evaluate_selection, EvalSpec, Flags, MarkdownTable};
use grain_gnn::TrainConfig;
use grain_select::{ModelKind, SelectionContext};

fn main() {
    let flags = Flags::from_env();
    let seeds = flags.repeats_or(3);
    let dataset = if flags.fast {
        grain_data::synthetic::citeseer_like(flags.seed)
    } else {
        grain_data::synthetic::pubmed_like(flags.seed)
    };
    let budget = 20 * dataset.num_classes;
    let models = ModelKind::table4_lineup();
    let method_names: Vec<&'static str> = al_lineup(0, flags.fast, ModelKind::default())
        .iter()
        .map(|s| s.name())
        .collect();
    // accs[method][model]
    let mut accs = vec![vec![0.0f64; models.len()]; method_names.len()];
    for seed_rep in 0..seeds {
        let seed = flags.seed.wrapping_add(seed_rep as u64 * 23);
        let ctx = SelectionContext::new(&dataset, seed);
        let mut methods = al_lineup(seed, flags.fast, ModelKind::default());
        for (mi, method) in methods.iter_mut().enumerate() {
            let selected = method.select(&ctx, budget);
            for (kind, acc) in models.iter().zip(accs[mi].iter_mut()) {
                let spec = EvalSpec {
                    model: *kind,
                    train: TrainConfig {
                        seed,
                        ..TrainConfig::fast()
                    },
                    model_repeats: 1,
                };
                *acc += evaluate_selection(&dataset, &selected, &spec) / seeds as f64;
            }
        }
    }
    let mut header: Vec<String> = vec!["method".into()];
    header.extend(models.iter().map(|m| m.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut out = MarkdownTable::new(&header_refs);
    for (name, acc_row) in method_names.iter().zip(&accs) {
        let mut row = vec![name.to_string()];
        row.extend(acc_row.iter().map(|a| format!("{:.1}", a * 100.0)));
        out.push_row(row);
    }
    let mut block = format!(
        "## Table 4: test accuracy (%) of different downstream models on {} (B = 20C, {seeds} seeds)\n\n{}",
        dataset.name,
        out.render()
    );
    block.push_str(
        "\nPaper's claim: both Grain variants beat every baseline for all four \
         model families — coupled (GCN), decoupled (SGC, APPNP) and \
         self-supervised (MVGRL).\n",
    );
    flags.emit(&block);
}

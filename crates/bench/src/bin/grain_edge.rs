//! `grain-edge` — the framed-TCP serving edge as a standalone process.
//!
//! Boots a synthetic corpus, registers a demo tenant table (gold 10× /
//! silver 3× / bronze 1× weighted-fair shares), binds the edge server,
//! and serves until `--duration-secs` elapses (0, the default, serves
//! until killed). Pair with the `edge_loadgen` binary, or speak the
//! protocol directly with `grain_core::edge::EdgeClient`.
//!
//! Flags: `--addr HOST:PORT` (default `127.0.0.1:7461`), `--nodes N`
//! (corpus size, default 2000), `--duration-secs N`, `--max-conns N`
//! (also settable via `GRAIN_EDGE_MAX_CONNS`), `--seed N`, `--fast`.

use grain_bench::cli::Flags;
use grain_core::edge::{EdgeConfig, EdgeServer, TenantSpec};
use grain_core::{Budget, GrainConfig, GrainService, SchedulerConfig, SelectionRequest};
use grain_data::synthetic::papers_like;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The connection cap: `--max-conns`, else `GRAIN_EDGE_MAX_CONNS`, else
/// the default (64).
fn max_conns(flags: &Flags) -> usize {
    flags
        .get("max-conns")
        .and_then(|v| v.parse().ok())
        .or_else(|| {
            std::env::var("GRAIN_EDGE_MAX_CONNS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(64)
}

fn main() {
    let flags = Flags::from_env();
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7461").to_string();
    let nodes: usize = flags
        .get("nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if flags.fast { 500 } else { 2000 });
    let duration_secs: u64 = flags
        .get("duration-secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let dataset = papers_like(nodes, flags.seed);
    let service = Arc::new(GrainService::new());
    service
        .register_graph("papers", dataset.graph.clone(), dataset.features.clone())
        .expect("corpus registers");
    // Prime the pool so the first wire request lands on warm artifacts.
    let prime = SelectionRequest::new(
        "papers",
        GrainConfig::ball_d(),
        Budget::Fixed(2 * dataset.num_classes),
    )
    .with_candidates(dataset.split.train.clone());
    service.select(&prime).expect("priming selection succeeds");

    let config = EdgeConfig {
        max_connections: max_conns(&flags),
        tenants: vec![
            TenantSpec::open("gold", 10).with_rate(4000.0, 400.0),
            TenantSpec::open("silver", 3).with_rate(2000.0, 200.0),
            TenantSpec::open("bronze", 1).with_rate(1000.0, 100.0),
        ],
        scheduler: SchedulerConfig::default(),
        ..EdgeConfig::default()
    };
    let mut server = EdgeServer::bind(addr.as_str(), service, config).expect("edge binds");
    println!(
        "grain-edge serving {nodes}-node corpus \"papers\" on {} \
         (tenants gold/10x silver/3x bronze/1x, max {} conns)",
        server.local_addr(),
        max_conns(&flags)
    );

    let started = Instant::now();
    loop {
        std::thread::sleep(Duration::from_secs(2));
        let stats = server.stats();
        println!(
            "conns {} active / {} accepted | served {} | rate-limited {} | \
             protocol-errors {} | disconnect-cancels {}",
            stats.active_connections,
            stats.connections_accepted,
            stats.requests_served,
            stats.rate_limited,
            stats.protocol_errors,
            stats.disconnect_cancels
        );
        if duration_secs > 0 && started.elapsed() >= Duration::from_secs(duration_secs) {
            break;
        }
    }
    for tenant in server.tenant_stats() {
        println!(
            "tenant {} (w{}): admitted {} coalesced {} completed {} shed {} \
             cancelled {} p50 {:?} p99 {:?}",
            tenant.tenant,
            tenant.weight,
            tenant.admitted,
            tenant.coalesced,
            tenant.completed,
            tenant.shed,
            tenant.cancelled,
            tenant.p50,
            tenant.p99
        );
    }
    server.shutdown();
}

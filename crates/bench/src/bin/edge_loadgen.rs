//! `edge_loadgen` — open-loop load generator for the serving edge,
//! emitting `results/BENCH_edge.json`.
//!
//! Drives two tenants (gold, weight 10; bronze, weight 1) through real
//! sockets at a ladder of offered rates, one stage per rate. Senders
//! pace requests open-loop (send at the scheduled instant regardless of
//! outstanding responses, pipelined down one connection per tenant);
//! receivers match responses back by correlation id and record exact
//! latencies. Every request carries a deadline, so when the offered
//! load exceeds the warm-selection capacity the scheduler *sheds* the
//! backlog instead of stretching the queue — the JSON records, per
//! stage and at saturation: exact p50/p99 latency, shed rate
//! (admission refusals + deadline drops over sent), and goodput
//! (completed selections per second).
//!
//! By default the binary embeds its own `EdgeServer` over a synthetic
//! corpus (self-contained, used by the CI smoke run under
//! `GRAIN_EDGE_MAX_CONNS`); point `--addr HOST:PORT` at a running
//! `grain-edge` to load-test over a real network instead.
//!
//! Flags: `--addr HOST:PORT`, `--nodes N` (default 2000), `--rates
//! CSV` (offered rps per tenant per stage, default `100,400,1600`),
//! `--stage-secs N` (default 2), `--deadline-ms N` (default 200),
//! `--distinct N` (budgets cycled in the request mix, default 4 —
//! small = duplicate-heavy/coalescing-bound, large = compute-bound),
//! `--seed N`, `--fast` (shrinks everything for smoke runs).

use grain_bench::cli::Flags;
use grain_core::cancel::OnDeadline;
use grain_core::edge::proto::{self, Frame, WireRequest, CODE_RATE_LIMITED};
use grain_core::edge::{EdgeClient, EdgeConfig, EdgeServer, TenantSpec};
use grain_core::{Budget, GrainConfig, GrainService, SchedulerConfig, SelectionRequest};
use grain_data::synthetic::papers_like;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const TENANTS: [&str; 2] = ["gold", "bronze"];

#[derive(Clone, Default)]
struct TenantOutcome {
    tenant: String,
    sent: usize,
    ok: usize,
    rate_limited: usize,
    shed: usize,
    other_errors: usize,
    /// Exact latencies of `ok` responses, milliseconds.
    latencies_ms: Vec<f64>,
}

impl TenantOutcome {
    fn percentile(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

struct StageResult {
    offered_rps_per_tenant: u64,
    wall_secs: f64,
    tenants: Vec<TenantOutcome>,
}

impl StageResult {
    fn sent(&self) -> usize {
        self.tenants.iter().map(|t| t.sent).sum()
    }
    fn ok(&self) -> usize {
        self.tenants.iter().map(|t| t.ok).sum()
    }
    fn goodput_rps(&self) -> f64 {
        self.ok() as f64 / self.wall_secs.max(1e-9)
    }
    fn shed_rate(&self) -> f64 {
        let refused: usize = self.tenants.iter().map(|t| t.rate_limited + t.shed).sum();
        refused as f64 / (self.sent().max(1)) as f64
    }
    fn pooled_percentile(&self, q: f64) -> f64 {
        let mut all: Vec<f64> = self
            .tenants
            .iter()
            .flat_map(|t| t.latencies_ms.iter().copied())
            .collect();
        if all.is_empty() {
            return 0.0;
        }
        all.sort_by(f64::total_cmp);
        let rank = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
        all[rank - 1]
    }
}

/// The request mix: `distinct` budgets cycled round-robin. Small values
/// make the traffic duplicate-heavy (every `distinct`-th request is an
/// exact duplicate, so the scheduler's coalescing gets real wire traffic
/// to merge and the edge saturates on transport, not compute); large
/// values defeat coalescing and saturate the scheduler itself, which is
/// where queue-full and deadline shedding appear.
fn request_for(
    i: u64,
    tenant_seed: u64,
    distinct: u64,
    base_budget: usize,
    candidates: &[u32],
) -> SelectionRequest {
    SelectionRequest::new(
        "papers",
        GrainConfig::ball_d(),
        Budget::Fixed(base_budget + (i % distinct) as usize),
    )
    .with_candidates(candidates.to_vec())
    // The seed is part of the coalesce key (results are unaffected):
    // tagging each tenant's traffic with its own seed keeps duplicate
    // suppression *within* a tenant but stops tenants from riding each
    // other's slots, so per-tenant shed/goodput numbers are honest.
    .with_seed(tenant_seed)
}

#[allow(clippy::too_many_arguments)]
fn run_tenant_stage(
    addr: std::net::SocketAddr,
    tenant: &str,
    rate_rps: u64,
    stage: Duration,
    deadline_ms: u32,
    distinct: u64,
    base_budget: usize,
    candidates: Arc<Vec<u32>>,
) -> TenantOutcome {
    let tenant_seed = 1 + TENANTS.iter().position(|t| *t == tenant).unwrap_or(0) as u64;
    let client = match EdgeClient::connect(addr, tenant, "") {
        Ok(client) => client,
        Err(e) => {
            eprintln!("{tenant}: connect failed: {e}");
            return TenantOutcome {
                tenant: tenant.to_string(),
                ..TenantOutcome::default()
            };
        }
    };
    let write_stream = client.into_stream();
    let read_stream = write_stream.try_clone().expect("stream clones");
    let in_flight: Arc<Mutex<HashMap<u64, Instant>>> = Arc::default();
    let sent = Arc::new(AtomicUsize::new(0));
    let done_sending = Arc::new(AtomicBool::new(false));

    // --- Receiver: match responses by id, record exact latency --------
    let recv_in_flight = Arc::clone(&in_flight);
    let recv_sent = Arc::clone(&sent);
    let recv_done = Arc::clone(&done_sending);
    let tenant_name = tenant.to_string();
    let receiver = std::thread::spawn(move || {
        let mut stream = read_stream;
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let mut outcome = TenantOutcome {
            tenant: tenant_name,
            ..TenantOutcome::default()
        };
        loop {
            let received = outcome.ok + outcome.rate_limited + outcome.shed + outcome.other_errors;
            if recv_done.load(Ordering::Acquire) && received >= recv_sent.load(Ordering::Acquire) {
                break;
            }
            match proto::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME_LEN) {
                Ok(Frame::Response(report)) => {
                    let sent_at = recv_in_flight.lock().unwrap().remove(&report.request_id);
                    if let Some(sent_at) = sent_at {
                        outcome
                            .latencies_ms
                            .push(sent_at.elapsed().as_secs_f64() * 1e3);
                    }
                    outcome.ok += 1;
                }
                Ok(Frame::Error(err)) => {
                    recv_in_flight.lock().unwrap().remove(&err.request_id);
                    match err.code {
                        CODE_RATE_LIMITED => outcome.rate_limited += 1,
                        // QueueFull + the three deadline stages: load the
                        // scheduler refused or dropped — the shed signal.
                        8..=11 => outcome.shed += 1,
                        _ => outcome.other_errors += 1,
                    }
                }
                Ok(_) => outcome.other_errors += 1,
                Err(_) => break, // drain timeout or peer gone
            }
        }
        outcome
    });

    // --- Sender: open-loop pacing -------------------------------------
    let interval = Duration::from_secs_f64(1.0 / rate_rps as f64);
    let started = Instant::now();
    let mut stream = write_stream;
    let mut i = 0u64;
    while started.elapsed() < stage {
        let target = started + interval.mul_f64(i as f64);
        if let Some(wait) = target.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let request_id = i + 1;
        in_flight.lock().unwrap().insert(request_id, Instant::now());
        let frame = Frame::Request(Box::new(WireRequest {
            request_id,
            priority: 0,
            deadline_ms,
            on_deadline: OnDeadline::Fail,
            request: request_for(i, tenant_seed, distinct, base_budget, &candidates),
        }));
        if proto::write_frame(&mut stream, &frame).is_err() {
            in_flight.lock().unwrap().remove(&request_id);
            break;
        }
        sent.fetch_add(1, Ordering::Release);
        i += 1;
    }
    done_sending.store(true, Ordering::Release);

    let mut outcome = receiver.join().expect("receiver joins");
    outcome.sent = sent.load(Ordering::Acquire);
    outcome
}

fn write_json(
    nodes: usize,
    deadline_ms: u32,
    distinct: u64,
    stages: &[StageResult],
    saturation: &StageResult,
) {
    let dir = format!("{}/../../results", env!("CARGO_MANIFEST_DIR"));
    let mut body = String::from("{\n  \"bench\": \"edge\",\n");
    body.push_str(&format!("  \"corpus_nodes\": {nodes},\n"));
    body.push_str(&format!("  \"deadline_ms\": {deadline_ms},\n"));
    body.push_str(&format!("  \"distinct_requests_in_mix\": {distinct},\n"));
    body.push_str("  \"tenant_weights\": {\"gold\": 10, \"bronze\": 1},\n");
    body.push_str("  \"stages\": [\n");
    for (s, stage) in stages.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"offered_rps_per_tenant\": {}, \"wall_secs\": {:.3}, \
             \"goodput_rps\": {:.1}, \"shed_rate\": {:.4}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"tenants\": [\n",
            stage.offered_rps_per_tenant,
            stage.wall_secs,
            stage.goodput_rps(),
            stage.shed_rate(),
            stage.pooled_percentile(0.50),
            stage.pooled_percentile(0.99),
        ));
        for (t, tenant) in stage.tenants.iter().enumerate() {
            body.push_str(&format!(
                "      {{\"tenant\": \"{}\", \"sent\": {}, \"ok\": {}, \
                 \"rate_limited\": {}, \"shed\": {}, \"other_errors\": {}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
                tenant.tenant,
                tenant.sent,
                tenant.ok,
                tenant.rate_limited,
                tenant.shed,
                tenant.other_errors,
                tenant.percentile(0.50),
                tenant.percentile(0.99),
                if t + 1 == stage.tenants.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        body.push_str(if s + 1 == stages.len() {
            "    ]}\n"
        } else {
            "    ]},\n"
        });
    }
    body.push_str("  ],\n");
    let gold_ok = saturation
        .tenants
        .iter()
        .find(|t| t.tenant == "gold")
        .map_or(0, |t| t.ok);
    let bronze_ok = saturation
        .tenants
        .iter()
        .find(|t| t.tenant == "bronze")
        .map_or(0, |t| t.ok);
    body.push_str(&format!(
        "  \"saturation\": {{\"offered_rps_per_tenant\": {}, \"goodput_rps\": {:.1}, \
         \"shed_rate\": {:.4}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"gold_ok\": {gold_ok}, \"bronze_ok\": {bronze_ok}}}\n}}\n",
        saturation.offered_rps_per_tenant,
        saturation.goodput_rps(),
        saturation.shed_rate(),
        saturation.pooled_percentile(0.50),
        saturation.pooled_percentile(0.99),
    ));
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = format!("{dir}/BENCH_edge.json");
        match std::fs::write(&path, body) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn main() {
    let flags = Flags::from_env();
    let nodes: usize = flags
        .get("nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if flags.fast { 500 } else { 2000 });
    let stage_secs: u64 = flags
        .get("stage-secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if flags.fast { 1 } else { 2 });
    let deadline_ms: u32 = flags
        .get("deadline-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let distinct: u64 = flags
        .get("distinct")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(1);
    let rates: Vec<u64> = flags
        .get("rates")
        .map(|csv| {
            csv.split(',')
                .filter_map(|v| v.trim().parse().ok())
                .collect()
        })
        .unwrap_or_else(|| {
            if flags.fast {
                vec![50, 200]
            } else {
                vec![100, 400, 1600]
            }
        });

    // --- Target: external `grain-edge`, or an embedded server ---------
    let dataset = papers_like(nodes, flags.seed);
    let base_budget = 2 * dataset.num_classes;
    let candidates = Arc::new(dataset.split.train.clone());
    let embedded = if flags.get("addr").is_none() {
        let service = Arc::new(GrainService::new());
        service
            .register_graph("papers", dataset.graph.clone(), dataset.features.clone())
            .expect("corpus registers");
        let prime =
            SelectionRequest::new("papers", GrainConfig::ball_d(), Budget::Fixed(base_budget))
                .with_candidates(dataset.split.train.clone());
        service.select(&prime).expect("priming selection succeeds");
        let max_connections = std::env::var("GRAIN_EDGE_MAX_CONNS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(16);
        let config = EdgeConfig {
            max_connections,
            tenants: vec![
                // Buckets are provisioned above the ladder's top rate so
                // the measured shedding isolates scheduler saturation,
                // not admission throttling.
                TenantSpec::open("gold", 10).with_rate(100_000.0, 10_000.0),
                TenantSpec::open("bronze", 1).with_rate(100_000.0, 10_000.0),
            ],
            // Production defaults: coalescing and ride-along grouping
            // stay on. Both are work-conserving and shared across
            // tenants, so wire-level *completed counts* only mildly
            // favor the heavy tenant — the exact 10:1 dispatch ratio is
            // proven by the deterministic fairness tests instead.
            scheduler: SchedulerConfig::default(),
            ..EdgeConfig::default()
        };
        Some(EdgeServer::bind("127.0.0.1:0", service, config).expect("edge binds"))
    } else {
        None
    };
    let addr: std::net::SocketAddr = match (&embedded, flags.get("addr")) {
        (Some(server), _) => server.local_addr(),
        (None, Some(addr)) => addr.parse().expect("--addr parses as HOST:PORT"),
        (None, None) => unreachable!(),
    };
    // Warm the corpus over the wire before measuring (cold-build time is
    // the store/persistence benches' story, not the serving edge's).
    if let Ok(mut client) = EdgeClient::connect(addr, "gold", "") {
        let _ = client.request(
            request_for(0, 0, distinct, base_budget, &candidates),
            grain_core::edge::client::RequestOptions::default(),
        );
    }

    println!(
        "edge loadgen: target {addr}, corpus n={nodes}, stages {rates:?} rps/tenant × {stage_secs}s, \
         deadline {deadline_ms}ms, {distinct} distinct requests in the mix"
    );
    let stage = Duration::from_secs(stage_secs);
    let mut results: Vec<StageResult> = Vec::new();
    for &rate in &rates {
        let started = Instant::now();
        let handles: Vec<_> = TENANTS
            .iter()
            .map(|&tenant| {
                let candidates = Arc::clone(&candidates);
                std::thread::spawn(move || {
                    run_tenant_stage(
                        addr,
                        tenant,
                        rate,
                        stage,
                        deadline_ms,
                        distinct,
                        base_budget,
                        candidates,
                    )
                })
            })
            .collect();
        let tenants: Vec<TenantOutcome> = handles
            .into_iter()
            .map(|h| h.join().expect("tenant stage joins"))
            .collect();
        let result = StageResult {
            offered_rps_per_tenant: rate,
            wall_secs: started.elapsed().as_secs_f64(),
            tenants,
        };
        println!(
            "stage {rate:>5} rps/tenant: sent {:>6} ok {:>6} goodput {:>8.1}/s shed {:>6.2}% \
             p50 {:>7.2}ms p99 {:>7.2}ms",
            result.sent(),
            result.ok(),
            result.goodput_rps(),
            100.0 * result.shed_rate(),
            result.pooled_percentile(0.50),
            result.pooled_percentile(0.99),
        );
        results.push(result);
    }

    // Saturation = the stage with the highest goodput (offered load
    // beyond it only raises the shed rate).
    let saturation = results
        .iter()
        .max_by(|a, b| a.goodput_rps().total_cmp(&b.goodput_rps()))
        .expect("at least one stage");
    write_json(nodes, deadline_ms, distinct, &results, saturation);
    drop(embedded);
}

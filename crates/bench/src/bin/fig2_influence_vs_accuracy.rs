//! Figure 2 — relationship between seed-set influence and GCN accuracy.
//!
//! (a) random seed sets of size 20 on Cora-like: test accuracy grows with
//!     influence magnitude `|sigma(S)|`;
//! (b) at (roughly) fixed magnitude, accuracy grows with the pairwise
//!     diversity of the activated crowd.
//!
//! The binary reports bucketed means plus Pearson correlations, which is
//! the checkable claim behind the scatter plots.

use grain_bench::table;
use grain_bench::{EvalSpec, Flags, MarkdownTable};
use grain_core::{GrainConfig, GrainService};
use grain_data::synthetic::cora_like;
use grain_gnn::TrainConfig;
use grain_linalg::{distance, stats};
use grain_select::ModelKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let flags = Flags::from_env();
    let sets = flags.repeats_or(if flags.fast { 24 } else { 60 });
    let budget = 20usize;
    let dataset = if flags.fast {
        grain_data::synthetic::papers_like(800, flags.seed)
    } else {
        cora_like(flags.seed)
    };
    // One service-pooled engine provides both artifacts (index + X^(2))
    // from one store.
    let service = GrainService::new();
    service
        .register_graph("fig2", dataset.graph.clone(), dataset.features.clone())
        .expect("synthetic corpus is well-formed");
    let (checkout, _) = service
        .engine("fig2", &GrainConfig::ball_d())
        .expect("ball-D defaults are valid");
    let (index, embedding) = {
        let mut engine = checkout.lock();
        (
            engine.activation_index().clone(),
            engine.normalized_embedding(),
        )
    };

    let spec = EvalSpec {
        model: ModelKind::Gcn { hidden: 64 },
        train: TrainConfig::fast(),
        model_repeats: 1,
    };
    let mut rng = StdRng::seed_from_u64(flags.seed ^ 0xf162);
    let mut magnitudes = Vec::with_capacity(sets);
    let mut diversities = Vec::with_capacity(sets);
    let mut accuracies = Vec::with_capacity(sets);
    for rep in 0..sets {
        let mut pool = dataset.split.train.clone();
        pool.shuffle(&mut rng);
        pool.truncate(budget);
        let sigma = index.sigma(&pool);
        let acc = {
            let mut spec = spec;
            spec.train.seed = flags.seed.wrapping_add(rep as u64);
            grain_bench::evaluate_selection(&dataset, &pool, &spec)
        };
        magnitudes.push(sigma.len() as f64);
        diversities.push(mean_pairwise_distance(&embedding, &sigma));
        accuracies.push(acc);
    }

    // (a) magnitude buckets.
    let mut block = String::from("## Figure 2(a): influence magnitude vs accuracy\n\n");
    block.push_str(&bucket_table(&magnitudes, &accuracies, "sigma(S)").render());
    let r_mag = stats::pearson(&magnitudes, &accuracies);
    block.push_str(&format!("\nPearson(|sigma|, accuracy) = {r_mag:.3}\n"));

    // (b) diversity at mid-magnitude band.
    let med = stats::percentile(&magnitudes, 50.0);
    let lo = med * 0.7;
    let hi = med * 1.3;
    let (mut band_div, mut band_acc) = (Vec::new(), Vec::new());
    for i in 0..sets {
        if magnitudes[i] >= lo && magnitudes[i] <= hi {
            band_div.push(diversities[i]);
            band_acc.push(accuracies[i]);
        }
    }
    block.push_str("\n## Figure 2(b): influence diversity vs accuracy (fixed-magnitude band)\n\n");
    block.push_str(&bucket_table(&band_div, &band_acc, "diversity").render());
    let r_div = stats::pearson(&band_div, &band_acc);
    block.push_str(&format!(
        "\nPearson(diversity, accuracy | |sigma| in [{lo:.0},{hi:.0}]) = {r_div:.3}  (band size {})\n",
        band_div.len()
    ));
    block.push_str(&format!(
        "\nPaper's claim: both correlations positive. Measured: r_magnitude={r_mag:.3}, r_diversity={r_div:.3}.\n"
    ));
    flags.emit(&block);
}

/// Mean pairwise grain-distance of a node set (sampled cap for large sets).
fn mean_pairwise_distance(embedding: &grain_linalg::DenseMatrix, nodes: &[u32]) -> f64 {
    if nodes.len() < 2 {
        return 0.0;
    }
    let cap = 200.min(nodes.len());
    let mut total = 0.0f64;
    let mut count = 0usize;
    for i in 0..cap {
        for j in (i + 1)..cap {
            total += distance::grain_distance(
                embedding.row(nodes[i] as usize),
                embedding.row(nodes[j] as usize),
            ) as f64;
            count += 1;
        }
    }
    total / count as f64
}

/// Buckets `xs` into quartiles and reports mean accuracy per bucket.
fn bucket_table(xs: &[f64], accs: &[f64], label: &str) -> MarkdownTable {
    let mut t = MarkdownTable::new(&[label, "sets", "mean accuracy (%)"]);
    if xs.is_empty() {
        return t;
    }
    let q = [
        stats::percentile(xs, 0.0),
        stats::percentile(xs, 25.0),
        stats::percentile(xs, 50.0),
        stats::percentile(xs, 75.0),
        stats::percentile(xs, 100.0),
    ];
    for w in 0..4 {
        let (lo, hi) = (q[w], q[w + 1]);
        let bucket: Vec<f64> = xs
            .iter()
            .zip(accs)
            .filter(|(&x, _)| x >= lo && (x < hi || (w == 3 && x <= hi)))
            .map(|(_, &a)| a)
            .collect();
        if bucket.is_empty() {
            continue;
        }
        // Diversity values live in [0,1]; magnitudes in the hundreds.
        let label_fmt = if q[4] < 10.0 {
            format!("[{lo:.3}, {hi:.3}]")
        } else {
            format!("[{lo:.1}, {hi:.1}]")
        };
        t.push_row(vec![
            label_fmt,
            bucket.len().to_string(),
            table::pct(stats::mean(&bucket)),
        ]);
    }
    t
}

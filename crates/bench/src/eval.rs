//! Selection → training → test-accuracy evaluation loops.

use grain_data::Dataset;
use grain_gnn::metrics::accuracy;
use grain_gnn::TrainConfig;
use grain_select::{ModelKind, NodeSelector, SelectionContext};
use std::time::{Duration, Instant};

/// How to evaluate a selection: which model, how it trains, how often.
#[derive(Clone, Copy, Debug)]
pub struct EvalSpec {
    /// Downstream model.
    pub model: ModelKind,
    /// Training configuration.
    pub train: TrainConfig,
    /// Model-training repetitions averaged per selection.
    pub model_repeats: usize,
}

impl Default for EvalSpec {
    fn default() -> Self {
        Self {
            model: ModelKind::default(),
            train: TrainConfig::fast(),
            model_repeats: 1,
        }
    }
}

/// Trains `spec.model` on `selected` and returns mean test accuracy over
/// `spec.model_repeats` seeds.
pub fn evaluate_selection(dataset: &Dataset, selected: &[u32], spec: &EvalSpec) -> f64 {
    assert!(!selected.is_empty(), "cannot evaluate an empty selection");
    let mut accs = Vec::with_capacity(spec.model_repeats);
    for rep in 0..spec.model_repeats.max(1) {
        let seed = spec.train.seed.wrapping_add(rep as u64 * 7919);
        let mut model = spec.model.build(dataset, seed);
        let mut cfg = spec.train;
        cfg.seed = seed;
        model.train(&dataset.labels, selected, &dataset.split.val, &cfg);
        accs.push(accuracy(
            &model.predict(),
            &dataset.labels,
            &dataset.split.test,
        ));
    }
    grain_linalg::stats::mean(&accs)
}

/// Runs one selector and times it.
pub fn timed_selection(
    selector: &mut dyn NodeSelector,
    ctx: &SelectionContext<'_>,
    budget: usize,
) -> (Vec<u32>, Duration) {
    let t0 = Instant::now();
    let selected = selector.select(ctx, budget);
    (selected, t0.elapsed())
}

/// `(mean, std)` of a sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    (
        grain_linalg::stats::mean(xs),
        grain_linalg::stats::std_dev(xs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_data::synthetic::papers_like;
    use grain_select::random::RandomSelector;

    #[test]
    fn evaluate_selection_returns_sane_accuracy() {
        let ds = papers_like(900, 1);
        let ctx = SelectionContext::new(&ds, 1);
        let mut sel = RandomSelector::new(1);
        let picked = sel.select(&ctx, 4 * ds.num_classes);
        let spec = EvalSpec {
            model: ModelKind::Sgc { k: 2 },
            train: TrainConfig {
                epochs: 80,
                patience: None,
                ..Default::default()
            },
            model_repeats: 2,
        };
        let acc = evaluate_selection(&ds, &picked, &spec);
        assert!((0.0..=1.0).contains(&acc));
        // 64 labels on the 16-class corpus must clearly beat the 6.25% chance level.
        assert!(acc > 2.0 / ds.num_classes as f64, "accuracy {acc}");
    }

    #[test]
    fn timed_selection_reports_duration() {
        let ds = papers_like(200, 2);
        let ctx = SelectionContext::new(&ds, 2);
        let mut sel = RandomSelector::new(3);
        let (picked, dur) = timed_selection(&mut sel, &ctx, 10);
        assert_eq!(picked.len(), 10);
        assert!(dur.as_nanos() > 0);
    }

    #[test]
    fn mean_std_matches_stats() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }
}

//! Minimal flag parsing for the experiment binaries.
//!
//! Supported everywhere: `--fast` (shrunken datasets/repeats for smoke
//! runs), `--seed N`, `--repeats N`, `--out PATH` (append the Markdown
//! block to a file as well as stdout), plus free-form `--key value` pairs
//! individual binaries interpret.

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Clone, Debug, Default)]
pub struct Flags {
    /// `--fast`: smoke-test sizing.
    pub fast: bool,
    /// `--seed N` (default 1).
    pub seed: u64,
    /// `--repeats N` (default depends on the binary).
    pub repeats: Option<usize>,
    /// `--out PATH`.
    pub out: Option<String>,
    /// Remaining `--key value` pairs.
    pub extra: HashMap<String, String>,
}

impl Flags {
    /// Parses `std::env::args()` (skipping the program name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut flags = Flags {
            seed: 1,
            ..Default::default()
        };
        let mut it = args.into_iter().peekable();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--fast" => flags.fast = true,
                "--seed" => {
                    flags.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--repeats" => {
                    flags.repeats = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--repeats needs an integer"),
                    );
                }
                "--out" => {
                    flags.out = Some(it.next().expect("--out needs a path"));
                }
                other => {
                    if let Some(key) = other.strip_prefix("--") {
                        let value = it.next().unwrap_or_default();
                        flags.extra.insert(key.to_string(), value);
                    } else {
                        panic!("unrecognized argument {other:?}");
                    }
                }
            }
        }
        flags
    }

    /// Repeats with a binary-specific default, halved (min 1) in fast mode.
    pub fn repeats_or(&self, default: usize) -> usize {
        let base = self.repeats.unwrap_or(default);
        if self.fast {
            (base / 2).max(1)
        } else {
            base
        }
    }

    /// Extra flag lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.extra.get(key).map(String::as_str)
    }

    /// Emits a report block: stdout always, plus `--out` append if set.
    pub fn emit(&self, block: &str) {
        println!("{block}");
        if let Some(path) = &self.out {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
            writeln!(f, "{block}").expect("write to --out failed");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Flags {
        Flags::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_without_args() {
        let f = parse(&[]);
        assert!(!f.fast);
        assert_eq!(f.seed, 1);
        assert_eq!(f.repeats_or(10), 10);
    }

    #[test]
    fn parses_standard_flags() {
        let f = parse(&["--fast", "--seed", "7", "--repeats", "4"]);
        assert!(f.fast);
        assert_eq!(f.seed, 7);
        assert_eq!(f.repeats_or(10), 2); // fast halves
    }

    #[test]
    fn collects_extra_pairs() {
        let f = parse(&["--dataset", "cora-like"]);
        assert_eq!(f.get("dataset"), Some("cora-like"));
        assert_eq!(f.get("missing"), None);
    }

    #[test]
    #[should_panic(expected = "unrecognized")]
    fn rejects_positional_args() {
        let _ = parse(&["oops"]);
    }
}

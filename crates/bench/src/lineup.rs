//! Method lineups shared across experiment binaries.
//!
//! Both the "prefix trick" and the inner-training budget live here so
//! every experiment treats methods identically:
//!
//! * **Prefix trick.** Every method in the lineup grows its labeled set
//!   monotonically (greedy picks, per-round batches, sorted ranks,
//!   shuffles), so a budget-`B'` selection is the length-`B'` prefix of
//!   the budget-`B` selection for `B' <= B`. Budget sweeps therefore run
//!   one max-budget selection per method and slice prefixes — identical
//!   results to per-budget runs at a fraction of the cost.
//! * **Inner training budget.** AGE/ANRMAB retrain their model every
//!   round; the experiments scale that inner cost with `--fast`.

use grain_core::GrainVariant;
use grain_gnn::TrainConfig;
use grain_select::age::AgeSelector;
use grain_select::anrmab::AnrmabSelector;
use grain_select::degree::DegreeSelector;
use grain_select::grain_adapters::{GrainAblationSelector, GrainBallSelector, GrainNnSelector};
use grain_select::kcenter::KCenterGreedySelector;
use grain_select::random::RandomSelector;
use grain_select::{ModelKind, NodeSelector};

/// Inner training configuration for learning-based selectors.
pub fn inner_train_cfg(fast: bool) -> TrainConfig {
    TrainConfig {
        epochs: if fast { 20 } else { 60 },
        patience: None,
        dropout: 0.5,
        ..Default::default()
    }
}

/// The Figure 4 / Table 2 method lineup, in presentation order:
/// Grain (ball-D), Grain (NN-D), AGE, ANRMAB, Random, Degree, KCG.
pub fn al_lineup(seed: u64, fast: bool, inner_model: ModelKind) -> Vec<Box<dyn NodeSelector>> {
    let cfg = inner_train_cfg(fast);
    vec![
        Box::new(GrainBallSelector::with_defaults()),
        Box::new(GrainNnSelector::with_defaults()),
        Box::new(AgeSelector::new(inner_model, seed).with_train_config(cfg)),
        Box::new(AnrmabSelector::new(inner_model, seed).with_train_config(cfg)),
        Box::new(RandomSelector::new(seed)),
        Box::new(DegreeSelector::new()),
        Box::new(KCenterGreedySelector::new(seed)),
    ]
}

/// The Table 3 ablation lineup.
pub fn ablation_lineup() -> Vec<Box<dyn NodeSelector>> {
    vec![
        Box::new(GrainAblationSelector::new(GrainVariant::NoMagnitude)),
        Box::new(GrainAblationSelector::new(GrainVariant::NoDiversity)),
        Box::new(GrainAblationSelector::new(GrainVariant::ClassicCoverage)),
        Box::new(GrainAblationSelector::new(GrainVariant::Full)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn al_lineup_has_seven_distinct_methods() {
        let lineup = al_lineup(1, true, ModelKind::Sgc { k: 2 });
        let names: std::collections::HashSet<&str> = lineup.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 7);
        assert!(names.contains("grain(ball-d)"));
        assert!(names.contains("age"));
    }

    #[test]
    fn ablation_lineup_matches_table3() {
        let names: Vec<&str> = ablation_lineup().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "no-magnitude",
                "no-diversity",
                "classic-coverage",
                "grain(ball-d)"
            ]
        );
    }

    #[test]
    fn fast_mode_shrinks_inner_epochs() {
        assert!(inner_train_cfg(true).epochs < inner_train_cfg(false).epochs);
    }
}

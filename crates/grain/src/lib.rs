//! # Grain — data-efficient GNN training via diversified influence maximization
//!
//! A from-scratch Rust reproduction of *"Grain: Improving Data Efficiency
//! of Graph Neural Networks via Diversified Influence Maximization"*
//! (Zhang et al., PVLDB 14(11), 2021).
//!
//! Grain answers the question *"which B nodes of a graph should be labeled
//! so that a GNN trained on them performs best?"* by connecting data
//! selection with social influence maximization: GNN feature propagation
//! is influence propagation, and the best training set is the seed set
//! that activates the largest, most diverse crowd.
//!
//! ## Quick start
//!
//! ```
//! use grain::prelude::*;
//!
//! // A synthetic citation-style corpus (Cora-like, scaled-down here).
//! let dataset = grain::data::synthetic::papers_like(500, 42);
//!
//! // Select 20 nodes to label with Grain (ball-D), Appendix A.4 defaults.
//! let selector = GrainSelector::ball_d();
//! let outcome = selector.select(
//!     &dataset.graph,
//!     &dataset.features,
//!     &dataset.split.train,
//!     20,
//! );
//! assert_eq!(outcome.selected.len(), 20);
//!
//! // Train a GCN on the selection and measure test accuracy.
//! let mut model = ModelKind::Gcn { hidden: 32 }.build(&dataset, 0);
//! model.train(
//!     &dataset.labels,
//!     &outcome.selected,
//!     &dataset.split.val,
//!     &TrainConfig::fast(),
//! );
//! let acc = grain::gnn::metrics::accuracy(
//!     &model.predict(),
//!     &dataset.labels,
//!     &dataset.split.test,
//! );
//! assert!(acc > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | DIM objective, ball/NN diversity, greedy + CELF (the paper's §3) |
//! | [`influence`] | feature-influence rows, activation index (§3.1–3.2) |
//! | [`prop`] | the six Table 1 propagation kernels |
//! | [`graph`] | CSR graphs, generators, transition matrices |
//! | [`gnn`] | GCN / SGC / APPNP / MVGRL-sim with manual backprop |
//! | [`select`] | AGE, ANRMAB, KCG, Random, Degree, core-set baselines |
//! | [`data`] | synthetic stand-ins for the five evaluation corpora |
//! | [`linalg`] | dense kernels, k-means, PCA, distances |

pub use grain_core as core;
pub use grain_data as data;
pub use grain_gnn as gnn;
pub use grain_graph as graph;
pub use grain_influence as influence;
pub use grain_linalg as linalg;
pub use grain_prop as prop;
pub use grain_select as select;

/// The items most programs need.
pub mod prelude {
    pub use grain_core::{
        DiversityKind, EngineStats, GrainConfig, GrainSelector, GrainVariant, GreedyAlgorithm,
        PruneStrategy, SelectionEngine, SelectionOutcome,
    };
    pub use grain_data::{Dataset, Split};
    pub use grain_gnn::{Model, TrainConfig, TrainReport};
    pub use grain_graph::{Graph, TransitionKind};
    pub use grain_influence::{ActivationIndex, InfluenceRows, ThetaRule};
    pub use grain_linalg::DenseMatrix;
    pub use grain_prop::Kernel;
    pub use grain_select::{ModelKind, NodeSelector, SelectionContext};
}

//! # Grain — data-efficient GNN training via diversified influence maximization
//!
//! A from-scratch Rust reproduction of *"Grain: Improving Data Efficiency
//! of Graph Neural Networks via Diversified Influence Maximization"*
//! (Zhang et al., PVLDB 14(11), 2021).
//!
//! Grain answers the question *"which B nodes of a graph should be labeled
//! so that a GNN trained on them performs best?"* by connecting data
//! selection with social influence maximization: GNN feature propagation
//! is influence propagation, and the best training set is the seed set
//! that activates the largest, most diverse crowd.
//!
//! ## Quick start
//!
//! The front door is [`GrainService`](core::service::GrainService):
//! register each graph once, then answer typed
//! [`SelectionRequest`](core::service::SelectionRequest)s from a sharded
//! pool of warm engines. The service is `&self` and `Send + Sync` — put
//! it behind an `Arc` and call it from any number of threads, or hand a
//! whole workload to
//! [`submit_batch`](core::service::GrainService::submit_batch). Repeated
//! and related requests (budget sweeps, ablations, γ scans) share cached
//! pipeline artifacts and come back bit-identical to cold runs at any
//! thread count. For open-loop traffic, wrap the service in a
//! [`Scheduler`](core::scheduler::Scheduler): a bounded queue with
//! admission control, coalescing of identical in-flight selections, and
//! deadline/priority dispatch (see `docs/ARCHITECTURE.md` for the layer
//! map). Execution is resilient end to end: every request is
//! cooperatively cancellable ([`Ticket::cancel`](core::scheduler::Ticket::cancel),
//! deadline-armed [`CancelToken`](core::cancel::CancelToken)s), can opt
//! into anytime partial results
//! ([`OnDeadline::Partial`](core::cancel::OnDeadline)), and runs
//! panic-isolated so one poisoned request never takes down a batch or a
//! worker.
//!
//! ```
//! use grain::prelude::*;
//!
//! // A synthetic citation-style corpus (Cora-like, scaled-down here).
//! let dataset = grain::data::synthetic::papers_like(500, 42);
//!
//! // Register the corpus once; engines share it from then on.
//! let service = GrainService::new();
//! service.register_graph(
//!     "papers",
//!     dataset.graph.clone(),
//!     dataset.features.clone(),
//! )?;
//!
//! // Select 20 nodes to label with Grain (ball-D), Appendix A.4 defaults.
//! let request = SelectionRequest::new("papers", GrainConfig::ball_d(), Budget::Fixed(20))
//!     .with_candidates(dataset.split.train.clone());
//! let report = service.select(&request)?;
//! let outcome = report.outcome();
//! assert_eq!(outcome.selected.len(), 20);
//!
//! // The same request again is a pool hit: zero artifacts rebuilt, the
//! // identical selection.
//! let warm = service.select(&request)?;
//! assert!(warm.fully_warm());
//! assert_eq!(warm.outcome().selected, outcome.selected);
//!
//! // Train a GCN on the selection and measure test accuracy.
//! let mut model = ModelKind::Gcn { hidden: 32 }.build(&dataset, 0);
//! model.train(
//!     &dataset.labels,
//!     &outcome.selected,
//!     &dataset.split.val,
//!     &TrainConfig::fast(),
//! );
//! let acc = grain::gnn::metrics::accuracy(
//!     &model.predict(),
//!     &dataset.labels,
//!     &dataset.split.test,
//! );
//! assert!(acc > 0.0);
//! # Ok::<(), GrainError>(())
//! ```
//!
//! ## Migrating from `GrainSelector::select`
//!
//! The pre-service one-shot API, `GrainSelector::select(&graph,
//! &features, &candidates, budget)` (and its `activation_index`
//! sibling), spent its one deprecation release as a bit-identical shim
//! and is now **removed**. Replace it with either
//!
//! * a [`SelectionRequest`](core::service::SelectionRequest) to a
//!   [`GrainService`](core::service::GrainService) (pooling, typed
//!   [`GrainError`](core::error::GrainError)s, cache observability,
//!   concurrency), or
//! * a [`SelectionEngine`](core::engine::SelectionEngine) held directly
//!   when you manage exactly one corpus/config yourself
//!   ([`SelectionEngine::activation_index`](core::engine::SelectionEngine::activation_index)
//!   covers the removed index shim).
//!
//! [`GrainSelector`](core::selector::GrainSelector) itself remains as a
//! validated-config facade over the engine constructor.
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | DIM objective, diversity, greedy + CELF, engine, service (§3) |
//! | [`influence`] | feature-influence rows, activation index (§3.1–3.2) |
//! | [`prop`] | the six Table 1 propagation kernels + propagation cache |
//! | [`graph`] | CSR graphs, generators, transition matrices |
//! | [`gnn`] | GCN / SGC / APPNP / MVGRL-sim with manual backprop |
//! | [`select`] | AGE, ANRMAB, KCG, Random, Degree, core-set baselines |
//! | [`data`] | synthetic stand-ins for the five evaluation corpora |
//! | [`linalg`] | dense kernels, k-means, PCA, distances |

pub use grain_core as core;
pub use grain_data as data;
pub use grain_gnn as gnn;
pub use grain_graph as graph;
pub use grain_influence as influence;
pub use grain_linalg as linalg;
pub use grain_prop as prop;
pub use grain_select as select;

/// The items most programs need.
pub mod prelude {
    pub use grain_core::{
        ArtifactStore, Budget, CancelCause, CancelToken, Completion, ContentAddress, DeadlineStage,
        DiversityKind, EdgeClient, EdgeConfig, EdgeServer, EdgeStats, EngineCheckout, EngineStats,
        EpochReport, GrainConfig, GrainError, GrainResult, GrainSelector, GrainService,
        GrainVariant, GraphDelta, GreedyAlgorithm, OnDeadline, PoolEvent, PoolStats, PruneStrategy,
        RetryPolicy, ScheduledRequest, Scheduler, SchedulerConfig, SchedulerStats, ScratchDir,
        SelectionEngine, SelectionOutcome, SelectionReport, SelectionRequest, StoreStats,
        TenantSpec, Ticket, TokenBucket,
    };
    pub use grain_data::{Dataset, Split};
    pub use grain_gnn::{Model, TrainConfig, TrainReport};
    pub use grain_graph::{Graph, TransitionKind};
    pub use grain_influence::{ActivationIndex, InfluenceRows, ThetaRule};
    pub use grain_linalg::DenseMatrix;
    pub use grain_prop::Kernel;
    pub use grain_select::{ModelKind, NodeSelector, SelectionContext};
}

//! Property-based tests for the propagation kernels.

use grain_graph::generators;
use grain_linalg::DenseMatrix;
use grain_prop::{propagate, Kernel};
use proptest::prelude::*;

fn features(n: usize, d: usize, seed: u64) -> DenseMatrix {
    let data: Vec<f32> = (0..n * d)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(seed | 1)
                .wrapping_mul(0x9e3779b97f4a7c15);
            ((h >> 40) % 1000) as f32 * 0.002
        })
        .collect();
    DenseMatrix::from_vec(n, d, data)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Row-stochastic kernels preserve constant columns.
    #[test]
    fn stochastic_kernels_preserve_constants(seed in 0u64..200, n in 10usize..40, k in 1usize..4) {
        let g = generators::erdos_renyi_gnm(n, n * 2, seed);
        let ones = DenseMatrix::full(n, 1, 1.0);
        for kernel in [Kernel::RandomWalk { k }, Kernel::Ppr { k, alpha: 0.2 }, Kernel::S2gc { k, alpha: 0.1 }] {
            let y = propagate(&g, kernel, &ones);
            for i in 0..n {
                prop_assert!((y.get(i, 0) - 1.0).abs() < 1e-4, "{} row {}", kernel.name(), i);
            }
        }
    }

    /// Propagation is linear: f(aX + bY) = a f(X) + b f(Y).
    #[test]
    fn kernels_are_linear_operators(seed in 0u64..200, n in 10usize..30) {
        let g = generators::erdos_renyi_gnm(n, n * 2, seed);
        let x = features(n, 3, seed);
        let y = features(n, 3, seed ^ 0xff);
        for kernel in Kernel::all_table1(2) {
            let fx = propagate(&g, kernel, &x);
            let fy = propagate(&g, kernel, &y);
            let mut xy = x.clone();
            grain_linalg::ops::axpy(&mut xy, 2.0, &y);
            let fxy = propagate(&g, kernel, &xy);
            let mut expect = fx.clone();
            grain_linalg::ops::axpy(&mut expect, 2.0, &fy);
            for (a, b) in fxy.as_slice().iter().zip(expect.as_slice()) {
                prop_assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()), "{}", kernel.name());
            }
        }
    }

    /// Deeper smoothing contracts features toward the component mean:
    /// the total variance never grows with k for the random-walk kernel.
    #[test]
    fn random_walk_smoothing_contracts_variance(seed in 0u64..200, n in 12usize..30) {
        let g = generators::erdos_renyi_gnm(n, n * 3, seed);
        let x = features(n, 2, seed);
        let variance = |m: &DenseMatrix| -> f64 {
            let means = grain_linalg::ops::column_means(m);
            let mut v = 0.0f64;
            for i in 0..m.rows() {
                for (j, &mean) in means.iter().enumerate() {
                    let d = (m.get(i, j) - mean) as f64;
                    v += d * d;
                }
            }
            v
        };
        let v1 = variance(&propagate(&g, Kernel::RandomWalk { k: 1 }, &x));
        let v3 = variance(&propagate(&g, Kernel::RandomWalk { k: 3 }, &x));
        prop_assert!(v3 <= v1 + 1e-4, "variance grew: {} -> {}", v1, v3);
    }

    /// All kernels produce finite outputs on arbitrary graphs.
    #[test]
    fn kernels_stay_finite(seed in 0u64..200, n in 8usize..24, k in 0usize..5) {
        let g = generators::erdos_renyi_gnm(n, n, seed);
        let x = features(n, 3, seed);
        for kernel in [
            Kernel::SymNorm { k },
            Kernel::RandomWalk { k },
            Kernel::Ppr { k, alpha: 0.1 },
            Kernel::TriangleIa { k },
            Kernel::Gbp { k, beta: 0.5 },
        ] {
            let y = propagate(&g, kernel, &x);
            prop_assert!(!y.has_non_finite(), "{} produced non-finite values", kernel.name());
        }
    }
}

//! Kernel execution: sparse-times-dense pipelines per Table 1.

use crate::kernel::Kernel;
use grain_graph::{transition_matrix, CsrMatrix, Graph};
use grain_linalg::{ops, DenseMatrix};

/// Propagates `x` through `kernel` on graph `g`, building the kernel's
/// transition matrix internally (with self-loops, the GNN convention).
pub fn propagate(g: &Graph, kernel: Kernel, x: &DenseMatrix) -> DenseMatrix {
    let t = transition_matrix(g, kernel.transition_kind(), true);
    propagate_with(&t, kernel, x)
}

/// Propagates `x` through `kernel` using a prebuilt transition matrix.
///
/// Useful when several kernels share a transition matrix or when the caller
/// wants a non-default normalization.
///
/// # Panics
/// Panics if `t` is not square of size `x.rows()`.
pub fn propagate_with(t: &CsrMatrix, kernel: Kernel, x: &DenseMatrix) -> DenseMatrix {
    propagate_with_par(t, kernel, x, 0)
}

/// [`propagate_with`] running every SpMM round over `threads` workers
/// (`0` = auto). The per-round combination steps (`scale`/`axpy`) are
/// sequential and each SpMM output row is accumulated by exactly one
/// worker, so `X^(k)` is bit-identical at any thread count.
///
/// # Panics
/// Panics if `t` is not square of size `x.rows()`.
pub fn propagate_with_par(
    t: &CsrMatrix,
    kernel: Kernel,
    x: &DenseMatrix,
    threads: usize,
) -> DenseMatrix {
    propagate_with_ctl(t, kernel, x, threads, &|| false)
        .expect("propagation with a never-stopping probe cannot be cancelled")
}

/// [`propagate_with_par`] with a cooperative stop probe, polled **between
/// SpMM power steps** (the expensive unit of work). Returns `None` as
/// soon as the probe reports `true` — no partially combined `X^(k)` is
/// ever returned, so a cancelled propagation leaves nothing to cache.
///
/// A probe that always returns `false` is bit-identical to
/// [`propagate_with_par`].
///
/// # Panics
/// Panics if `t` is not square of size `x.rows()`.
pub fn propagate_with_ctl(
    t: &CsrMatrix,
    kernel: Kernel,
    x: &DenseMatrix,
    threads: usize,
    should_stop: &dyn Fn() -> bool,
) -> Option<DenseMatrix> {
    assert_eq!(t.rows(), t.cols(), "transition matrix must be square");
    assert_eq!(
        t.cols(),
        x.rows(),
        "transition ({}x{}) does not match features ({} rows)",
        t.rows(),
        t.cols(),
        x.rows()
    );
    match kernel {
        Kernel::SymNorm { k } | Kernel::RandomWalk { k } | Kernel::TriangleIa { k } => {
            let mut cur = x.clone();
            for _ in 0..k {
                if should_stop() {
                    return None;
                }
                cur = t.spmm_par(&cur, threads);
            }
            Some(cur)
        }
        Kernel::Ppr { k, alpha } => {
            // X^(k) = (1-a) T X^(k-1) + a X^(0)
            let mut cur = x.clone();
            for _ in 0..k {
                if should_stop() {
                    return None;
                }
                let mut next = t.spmm_par(&cur, threads);
                ops::scale(&mut next, 1.0 - alpha);
                ops::axpy(&mut next, alpha, x);
                cur = next;
            }
            Some(cur)
        }
        Kernel::S2gc { k, alpha } => {
            // X^(k) = (1/k) Σ_{l=1..k} ((1-a) T^l X + a X)
            assert!(k >= 1, "S2GC needs k >= 1");
            let mut power = x.clone(); // T^l X
            let mut acc = DenseMatrix::zeros(x.rows(), x.cols());
            for _ in 0..k {
                if should_stop() {
                    return None;
                }
                power = t.spmm_par(&power, threads);
                ops::axpy(&mut acc, 1.0 - alpha, &power);
                ops::axpy(&mut acc, alpha, x);
            }
            ops::scale(&mut acc, 1.0 / k as f32);
            Some(acc)
        }
        Kernel::Gbp { k, beta } => {
            // X^(k) = Σ_{l=0..k} β^l T^l X
            let mut power = x.clone();
            let mut acc = x.clone(); // l = 0 term
            let mut weight = 1.0f32;
            for _ in 0..k {
                if should_stop() {
                    return None;
                }
                power = t.spmm_par(&power, threads);
                weight *= beta;
                ops::axpy(&mut acc, weight, &power);
            }
            Some(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_graph::generators;
    use grain_graph::TransitionKind;

    fn features(n: usize, d: usize) -> DenseMatrix {
        DenseMatrix::from_vec(
            n,
            d,
            (0..n * d).map(|i| ((i * 37 % 11) as f32) * 0.1).collect(),
        )
    }

    fn test_graph() -> Graph {
        generators::erdos_renyi_gnm(30, 60, 9)
    }

    #[test]
    fn zero_steps_is_identity_for_iterative_kernels() {
        let g = test_graph();
        let x = features(30, 4);
        for kernel in [
            Kernel::SymNorm { k: 0 },
            Kernel::RandomWalk { k: 0 },
            Kernel::Ppr { k: 0, alpha: 0.1 },
        ] {
            let y = propagate(&g, kernel, &x);
            assert_eq!(y, x, "{} should be identity at k=0", kernel.name());
        }
    }

    #[test]
    fn random_walk_preserves_constant_features() {
        // A row-stochastic operator maps the all-ones column to itself.
        let g = test_graph();
        let x = DenseMatrix::full(30, 1, 1.0);
        let y = propagate(&g, Kernel::RandomWalk { k: 3 }, &x);
        for i in 0..30 {
            assert!((y.get(i, 0) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn ppr_preserves_constant_features() {
        let g = test_graph();
        let x = DenseMatrix::full(30, 1, 1.0);
        let y = propagate(&g, Kernel::Ppr { k: 4, alpha: 0.15 }, &x);
        for i in 0..30 {
            assert!((y.get(i, 0) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn s2gc_preserves_constant_features() {
        let g = test_graph();
        let x = DenseMatrix::full(30, 1, 1.0);
        let y = propagate(&g, Kernel::S2gc { k: 3, alpha: 0.1 }, &x);
        for i in 0..30 {
            assert!((y.get(i, 0) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gbp_weights_sum_geometrically() {
        // On constant input, GBP yields Σ β^l = (1-β^{k+1})/(1-β).
        let g = test_graph();
        let x = DenseMatrix::full(30, 1, 1.0);
        let beta = 0.5f32;
        let k = 3usize;
        let y = propagate(&g, Kernel::Gbp { k, beta }, &x);
        let want = (1.0 - beta.powi(k as i32 + 1)) / (1.0 - beta);
        for i in 0..30 {
            assert!(
                (y.get(i, 0) - want).abs() < 1e-4,
                "{} vs {want}",
                y.get(i, 0)
            );
        }
    }

    #[test]
    fn sym_norm_smooths_toward_neighbors() {
        // Path graph: after propagation, the middle node mixes its ends.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let x = DenseMatrix::from_vec(3, 1, vec![1.0, 0.0, -1.0]);
        let y = propagate(&g, Kernel::SymNorm { k: 1 }, &x);
        // Symmetric structure keeps the middle at 0, ends shrink toward it.
        assert!((y.get(1, 0)).abs() < 1e-6);
        assert!(y.get(0, 0) < 1.0 && y.get(0, 0) > 0.0);
    }

    #[test]
    fn propagate_with_accepts_prebuilt_transition() {
        let g = test_graph();
        let x = features(30, 3);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        let a = propagate(&g, Kernel::RandomWalk { k: 2 }, &x);
        let b = propagate_with(&t, Kernel::RandomWalk { k: 2 }, &x);
        assert_eq!(a, b);
    }

    #[test]
    fn propagation_is_thread_count_invariant_per_kernel() {
        let g = generators::erdos_renyi_gnm(200, 500, 21);
        let x = features(200, 4);
        for kernel in Kernel::all_table1(2) {
            let t = transition_matrix(&g, kernel.transition_kind(), true);
            let serial = propagate_with_par(&t, kernel, &x, 1);
            for threads in [2usize, 8] {
                assert_eq!(
                    propagate_with_par(&t, kernel, &x, threads),
                    serial,
                    "{} at {threads} threads",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn ppr_interpolates_between_walk_and_input() {
        let g = test_graph();
        let x = features(30, 2);
        // alpha = 1 keeps the input exactly.
        let y = propagate(&g, Kernel::Ppr { k: 3, alpha: 1.0 }, &x);
        assert_eq!(y, x);
    }

    #[test]
    fn triangle_kernel_runs_on_triangle_rich_graph() {
        let g = generators::erdos_renyi_gnp(40, 0.3, 5);
        let x = features(40, 3);
        let y = propagate(&g, Kernel::TriangleIa { k: 2 }, &x);
        assert_eq!(y.shape(), (40, 3));
        assert!(!y.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn shape_mismatch_panics() {
        let g = test_graph();
        let x = features(10, 2);
        let _ = propagate(&g, Kernel::RandomWalk { k: 1 }, &x);
    }

    #[test]
    fn never_stopping_probe_is_bit_identical() {
        let g = test_graph();
        let x = features(30, 3);
        for kernel in Kernel::all_table1(2) {
            let t = transition_matrix(&g, kernel.transition_kind(), true);
            let plain = propagate_with_par(&t, kernel, &x, 1);
            let ctl = propagate_with_ctl(&t, kernel, &x, 1, &|| false).unwrap();
            assert_eq!(plain, ctl, "{}", kernel.name());
        }
    }

    #[test]
    fn stop_probe_cancels_between_power_steps() {
        use std::cell::Cell;
        let g = test_graph();
        let x = features(30, 3);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        // Stop before the very first step...
        assert!(propagate_with_ctl(&t, Kernel::RandomWalk { k: 3 }, &x, 1, &|| true).is_none());
        // ...and between steps: the probe is polled once per power.
        let polls = Cell::new(0usize);
        let stop_after_two = || {
            polls.set(polls.get() + 1);
            polls.get() > 2
        };
        assert!(
            propagate_with_ctl(&t, Kernel::RandomWalk { k: 5 }, &x, 1, &stop_after_two).is_none()
        );
        assert_eq!(polls.get(), 3, "polled at each of the first three powers");
    }
}

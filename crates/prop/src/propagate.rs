//! Kernel execution: sparse-times-dense pipelines per Table 1.

use crate::kernel::Kernel;
use grain_graph::{transition_matrix, CsrMatrix, Graph};
use grain_linalg::{ops, DenseMatrix};

/// Propagates `x` through `kernel` on graph `g`, building the kernel's
/// transition matrix internally (with self-loops, the GNN convention).
pub fn propagate(g: &Graph, kernel: Kernel, x: &DenseMatrix) -> DenseMatrix {
    let t = transition_matrix(g, kernel.transition_kind(), true);
    propagate_with(&t, kernel, x)
}

/// Propagates `x` through `kernel` using a prebuilt transition matrix.
///
/// Useful when several kernels share a transition matrix or when the caller
/// wants a non-default normalization.
///
/// # Panics
/// Panics if `t` is not square of size `x.rows()`.
pub fn propagate_with(t: &CsrMatrix, kernel: Kernel, x: &DenseMatrix) -> DenseMatrix {
    propagate_with_par(t, kernel, x, 0)
}

/// [`propagate_with`] running every SpMM round over `threads` workers
/// (`0` = auto). The per-round combination steps (`scale`/`axpy`) are
/// sequential and each SpMM output row is accumulated by exactly one
/// worker, so `X^(k)` is bit-identical at any thread count.
///
/// # Panics
/// Panics if `t` is not square of size `x.rows()`.
pub fn propagate_with_par(
    t: &CsrMatrix,
    kernel: Kernel,
    x: &DenseMatrix,
    threads: usize,
) -> DenseMatrix {
    propagate_with_ctl(t, kernel, x, threads, &|| false)
        .expect("propagation with a never-stopping probe cannot be cancelled")
}

/// [`propagate_with_par`] with a cooperative stop probe, polled **between
/// SpMM power steps** (the expensive unit of work). Returns `None` as
/// soon as the probe reports `true` — no partially combined `X^(k)` is
/// ever returned, so a cancelled propagation leaves nothing to cache.
///
/// A probe that always returns `false` is bit-identical to
/// [`propagate_with_par`].
///
/// # Panics
/// Panics if `t` is not square of size `x.rows()`.
pub fn propagate_with_ctl(
    t: &CsrMatrix,
    kernel: Kernel,
    x: &DenseMatrix,
    threads: usize,
    should_stop: &dyn Fn() -> bool,
) -> Option<DenseMatrix> {
    propagate_ctl_impl(t, kernel, x, threads, should_stop, None)
}

/// [`propagate_with_ctl`] that additionally returns the **power ladder**:
/// the intermediate per-step state matrices (the SpMM *input* of steps
/// `2..=k`, i.e. the state after steps `1..=k-1`). For the iterative
/// kernels that state is `X^(l)` itself; for S2GC/GBP it is the power
/// `T^l X` feeding the accumulator.
///
/// The ladder is what makes [`repropagate_rows_laddered`]
/// output-proportional: with per-level clean values on hand, a delta only
/// recomputes its dirty rows at each level instead of expanding a reverse
/// neighbor cone. The extra cost over [`propagate_with_ctl`] is `k-1`
/// dense clones (each `n·d` floats) — noise next to the SpMM rounds.
///
/// # Panics
/// Panics if `t` is not square of size `x.rows()`.
pub fn propagate_ladder_with_ctl(
    t: &CsrMatrix,
    kernel: Kernel,
    x: &DenseMatrix,
    threads: usize,
    should_stop: &dyn Fn() -> bool,
) -> Option<(DenseMatrix, Vec<DenseMatrix>)> {
    let mut ladder = Vec::with_capacity(kernel.steps().saturating_sub(1));
    let out = propagate_ctl_impl(t, kernel, x, threads, should_stop, Some(&mut ladder))?;
    Some((out, ladder))
}

/// Shared implementation: the single float path behind both public
/// variants. `ladder`, when present, receives a clone of the step state
/// *after* each of steps `1..=k-1` — capture never alters the arithmetic.
fn propagate_ctl_impl(
    t: &CsrMatrix,
    kernel: Kernel,
    x: &DenseMatrix,
    threads: usize,
    should_stop: &dyn Fn() -> bool,
    mut ladder: Option<&mut Vec<DenseMatrix>>,
) -> Option<DenseMatrix> {
    assert_eq!(t.rows(), t.cols(), "transition matrix must be square");
    assert_eq!(
        t.cols(),
        x.rows(),
        "transition ({}x{}) does not match features ({} rows)",
        t.rows(),
        t.cols(),
        x.rows()
    );
    let steps = kernel.steps();
    let mut capture = |state: &DenseMatrix, step: usize| {
        if let Some(ladder) = ladder.as_deref_mut() {
            if step < steps {
                ladder.push(state.clone());
            }
        }
    };
    let out = match kernel {
        Kernel::SymNorm { k } | Kernel::RandomWalk { k } | Kernel::TriangleIa { k } => {
            let mut cur = x.clone();
            for step in 1..=k {
                if should_stop() {
                    return None;
                }
                cur = t.spmm_par(&cur, threads);
                capture(&cur, step);
            }
            cur
        }
        Kernel::Ppr { k, alpha } => {
            // X^(k) = (1-a) T X^(k-1) + a X^(0)
            let mut cur = x.clone();
            for step in 1..=k {
                if should_stop() {
                    return None;
                }
                let mut next = t.spmm_par(&cur, threads);
                ops::scale(&mut next, 1.0 - alpha);
                ops::axpy(&mut next, alpha, x);
                cur = next;
                capture(&cur, step);
            }
            cur
        }
        Kernel::S2gc { k, alpha } => {
            // X^(k) = (1/k) Σ_{l=1..k} ((1-a) T^l X + a X)
            assert!(k >= 1, "S2GC needs k >= 1");
            let mut power = x.clone(); // T^l X
            let mut acc = DenseMatrix::zeros(x.rows(), x.cols());
            for step in 1..=k {
                if should_stop() {
                    return None;
                }
                power = t.spmm_par(&power, threads);
                ops::axpy(&mut acc, 1.0 - alpha, &power);
                ops::axpy(&mut acc, alpha, x);
                capture(&power, step);
            }
            ops::scale(&mut acc, 1.0 / k as f32);
            acc
        }
        Kernel::Gbp { k, beta } => {
            // X^(k) = Σ_{l=0..k} β^l T^l X
            let mut power = x.clone();
            let mut acc = x.clone(); // l = 0 term
            let mut weight = 1.0f32;
            for step in 1..=k {
                if should_stop() {
                    return None;
                }
                power = t.spmm_par(&power, threads);
                weight *= beta;
                ops::axpy(&mut acc, weight, &power);
                capture(&power, step);
            }
            acc
        }
    };
    Some(out)
}

/// Incremental re-propagation: recomputes only the `dirty` rows of
/// `X^(k)` against a (possibly edited) transition matrix and feature
/// matrix, splicing them into a copy of `old` — the prop-layer half of
/// the streaming bit-identity contract.
///
/// The caller guarantees that every row of `X^(k)` that differs between
/// `old` and a cold `propagate_with(t, kernel, x)` build is listed in
/// `dirty` (the k-hop ball of the touched transition rows and feature
/// seeds — see `grain_graph::edit::k_hop_ball`); a superset is always
/// safe. Under that contract the result is **bit-identical** to the cold
/// build: dirty rows are recomputed level by level with exactly the
/// per-row accumulation order of [`CsrMatrix::spmm_par`] and the same
/// per-element combination steps as [`propagate_with_ctl`], and clean
/// rows are memcpy'd from `old`.
///
/// Intermediate levels are not cached anywhere, so the recomputation
/// works over *shrinking needed-row sets*: the rows whose level-`l`
/// values feed a dirty level-`k` row are the reverse cone of `dirty`
/// under `t`'s sparsity, seeded from the fully known level 0 (`x`).
/// Work is `O(Σ_l |cone_l| · nnz/row · d)` — output-proportional, never
/// `O(n)` in the number of clean rows beyond the final memcpy.
///
/// Runs serially: artifacts are thread-count invariant anyway, and dirty
/// cones are small by construction.
///
/// # Panics
/// Panics on shape mismatches, an unsorted/duplicate/out-of-range
/// `dirty` list, or an S2GC kernel with `k = 0`.
pub fn repropagate_rows(
    t: &CsrMatrix,
    kernel: Kernel,
    x: &DenseMatrix,
    old: &DenseMatrix,
    dirty: &[u32],
) -> DenseMatrix {
    use std::collections::HashMap;
    assert_eq!(t.rows(), t.cols(), "transition matrix must be square");
    assert_eq!(
        t.cols(),
        x.rows(),
        "transition ({}x{}) does not match features ({} rows)",
        t.rows(),
        t.cols(),
        x.rows()
    );
    assert_eq!(
        old.shape(),
        x.shape(),
        "old X^(k) shape {:?} does not match features shape {:?}",
        old.shape(),
        x.shape()
    );
    for w in dirty.windows(2) {
        assert!(w[0] < w[1], "dirty rows must be sorted and unique");
    }
    if let Some(&last) = dirty.last() {
        assert!(
            (last as usize) < t.rows(),
            "dirty row {last} out of range ({} rows)",
            t.rows()
        );
    }
    if let Kernel::S2gc { k, .. } = kernel {
        assert!(k >= 1, "S2GC needs k >= 1");
    }
    let mut out = old.clone();
    if dirty.is_empty() {
        return out;
    }
    let k = kernel.steps();
    if k == 0 {
        // Every k=0 kernel is the identity: X^(0) = X.
        for &r in dirty {
            out.row_mut(r as usize).copy_from_slice(x.row(r as usize));
        }
        return out;
    }
    let d = x.cols();
    // Needed-row cone per level, top down: level k needs exactly `dirty`,
    // level l needs every transition-neighbor of level l+1's rows (union
    // with the set itself — not relying on T carrying self-loops).
    let mut sets: Vec<Vec<u32>> = vec![Vec::new(); k + 1];
    sets[k] = dirty.to_vec();
    for l in (1..k).rev() {
        let mut need: Vec<u32> = Vec::new();
        for &r in &sets[l + 1] {
            need.push(r);
            need.extend_from_slice(t.row_indices(r as usize));
        }
        need.sort_unstable();
        need.dedup();
        sets[l] = need;
    }
    // One SpMM output row, in spmm_par's exact accumulation order.
    let spmm_row = |r: u32, level: usize, prev: &HashMap<u32, Vec<f32>>| -> Vec<f32> {
        let mut row = vec![0.0f32; d];
        let (idx, vals) = t.row(r as usize);
        for (&c, &w) in idx.iter().zip(vals) {
            if w == 0.0 {
                continue;
            }
            let prev_row: &[f32] = if level == 1 {
                x.row(c as usize)
            } else {
                prev.get(&c)
                    .expect("needed row missing from previous level")
            };
            for (o, &xv) in row.iter_mut().zip(prev_row) {
                *o += w * xv;
            }
        }
        row
    };
    match kernel {
        Kernel::SymNorm { .. } | Kernel::RandomWalk { .. } | Kernel::TriangleIa { .. } => {
            // cur = T cur, k times.
            let mut prev: HashMap<u32, Vec<f32>> = HashMap::new();
            for (l, set) in sets.iter().enumerate().skip(1) {
                let mut cur = HashMap::with_capacity(set.len());
                for &r in set {
                    cur.insert(r, spmm_row(r, l, &prev));
                }
                prev = cur;
            }
            for &r in dirty {
                out.row_mut(r as usize).copy_from_slice(&prev[&r]);
            }
        }
        Kernel::Ppr { alpha, .. } => {
            // cur = (1-a) T cur + a X, per element in scale-then-axpy order.
            let mut prev: HashMap<u32, Vec<f32>> = HashMap::new();
            for (l, set) in sets.iter().enumerate().skip(1) {
                let mut cur = HashMap::with_capacity(set.len());
                for &r in set {
                    let mut row = spmm_row(r, l, &prev);
                    for (v, &x0) in row.iter_mut().zip(x.row(r as usize)) {
                        *v *= 1.0 - alpha;
                        *v += alpha * x0;
                    }
                    cur.insert(r, row);
                }
                prev = cur;
            }
            for &r in dirty {
                out.row_mut(r as usize).copy_from_slice(&prev[&r]);
            }
        }
        Kernel::S2gc { alpha, .. } => {
            // acc += (1-a) T^l X + a X per step, then acc /= k. The power
            // iterates over the full cone; acc only over dirty rows.
            let mut acc: HashMap<u32, Vec<f32>> =
                dirty.iter().map(|&r| (r, vec![0.0f32; d])).collect();
            let mut prev: HashMap<u32, Vec<f32>> = HashMap::new();
            for (l, set) in sets.iter().enumerate().skip(1) {
                let mut power = HashMap::with_capacity(set.len());
                for &r in set {
                    power.insert(r, spmm_row(r, l, &prev));
                }
                for &r in dirty {
                    let p = &power[&r];
                    let a = acc.get_mut(&r).expect("acc row exists");
                    for (v, &pv) in a.iter_mut().zip(p) {
                        *v += (1.0 - alpha) * pv;
                    }
                    for (v, &x0) in a.iter_mut().zip(x.row(r as usize)) {
                        *v += alpha * x0;
                    }
                }
                prev = power;
            }
            let inv = 1.0 / k as f32;
            for &r in dirty {
                let a = acc.get_mut(&r).expect("acc row exists");
                for v in a.iter_mut() {
                    *v *= inv;
                }
                out.row_mut(r as usize).copy_from_slice(a);
            }
        }
        Kernel::Gbp { beta, .. } => {
            // acc = Σ β^l T^l X, l = 0 term included up front.
            let mut acc: HashMap<u32, Vec<f32>> = dirty
                .iter()
                .map(|&r| (r, x.row(r as usize).to_vec()))
                .collect();
            let mut prev: HashMap<u32, Vec<f32>> = HashMap::new();
            let mut weight = 1.0f32;
            for (l, set) in sets.iter().enumerate().skip(1) {
                let mut power = HashMap::with_capacity(set.len());
                for &r in set {
                    power.insert(r, spmm_row(r, l, &prev));
                }
                weight *= beta;
                for &r in dirty {
                    let p = &power[&r];
                    let a = acc.get_mut(&r).expect("acc row exists");
                    for (v, &pv) in a.iter_mut().zip(p) {
                        *v += weight * pv;
                    }
                }
                prev = power;
            }
            for &r in dirty {
                out.row_mut(r as usize).copy_from_slice(&acc[&r]);
            }
        }
    }
    out
}

/// [`repropagate_rows`] with a **power ladder** from
/// [`propagate_ladder_with_ctl`]: because every level's clean rows are on
/// hand, only the `dirty` rows are recomputed at each of the `k` steps —
/// `O(k · |dirty| · nnz/row · d)` work, with no reverse-cone expansion
/// over clean neighbors. Returns the patched `X^(k)` **and** the patched
/// ladder (each level's dirty rows spliced over a copy), so the caller
/// can re-cache both and the *next* delta patches just as cheaply.
///
/// Bit-identity contract is the cone version's, extended one axis: every
/// level-`l` row that differs from a cold build must be in `dirty` (true
/// for any `dirty ⊇ ball_k(seeds)`, since per-level dirt is the nested
/// `ball_l(seeds)`), and `old_ladder` must be the cold build's ladder
/// over the pre-delta corpus.
///
/// # Panics
/// Panics on shape mismatches, an unsorted/duplicate/out-of-range
/// `dirty` list, a ladder whose length is not `k - 1` (or whose levels
/// mismatch `x`'s shape), or an S2GC kernel with `k = 0`.
pub fn repropagate_rows_laddered(
    t: &CsrMatrix,
    kernel: Kernel,
    x: &DenseMatrix,
    old: &DenseMatrix,
    old_ladder: &[&DenseMatrix],
    dirty: &[u32],
) -> (DenseMatrix, Vec<DenseMatrix>) {
    assert_eq!(t.rows(), t.cols(), "transition matrix must be square");
    assert_eq!(
        t.cols(),
        x.rows(),
        "transition ({}x{}) does not match features ({} rows)",
        t.rows(),
        t.cols(),
        x.rows()
    );
    assert_eq!(
        old.shape(),
        x.shape(),
        "old X^(k) shape {:?} does not match features shape {:?}",
        old.shape(),
        x.shape()
    );
    let k = kernel.steps();
    assert_eq!(
        old_ladder.len(),
        k.saturating_sub(1),
        "ladder has {} levels, kernel {} needs {}",
        old_ladder.len(),
        kernel.name(),
        k.saturating_sub(1)
    );
    for level in old_ladder {
        assert_eq!(
            level.shape(),
            x.shape(),
            "ladder level shape {:?} does not match features shape {:?}",
            level.shape(),
            x.shape()
        );
    }
    for w in dirty.windows(2) {
        assert!(w[0] < w[1], "dirty rows must be sorted and unique");
    }
    if let Some(&last) = dirty.last() {
        assert!(
            (last as usize) < t.rows(),
            "dirty row {last} out of range ({} rows)",
            t.rows()
        );
    }
    if let Kernel::S2gc { k, .. } = kernel {
        assert!(k >= 1, "S2GC needs k >= 1");
    }
    let mut out = old.clone();
    let mut new_ladder: Vec<DenseMatrix> =
        old_ladder.iter().map(|level| (*level).clone()).collect();
    if dirty.is_empty() {
        return (out, new_ladder);
    }
    if k == 0 {
        // Every k=0 kernel is the identity: X^(0) = X.
        for &r in dirty {
            out.row_mut(r as usize).copy_from_slice(x.row(r as usize));
        }
        return (out, new_ladder);
    }
    let d = x.cols();
    let m = dirty.len();
    // Flat per-dirty-row buffers; `dirty` is sorted so membership is a
    // binary search, no hashing.
    fn row_slice(buf: &[f32], j: usize, d: usize) -> &[f32] {
        &buf[j * d..(j + 1) * d]
    }
    // One SpMM output row per dirty row, in spmm_par's exact accumulation
    // order: dirty prev values from `prev_dirty`, clean ones from the
    // level's cold-state source (`x` at level 1, the old ladder above).
    let spmm_dirty = |level: usize, prev_dirty: &[f32], cur: &mut [f32]| {
        for (j, &r) in dirty.iter().enumerate() {
            let row = &mut cur[j * d..(j + 1) * d];
            row.fill(0.0);
            let (idx, vals) = t.row(r as usize);
            for (&c, &w) in idx.iter().zip(vals) {
                if w == 0.0 {
                    continue;
                }
                let prev_row: &[f32] = match dirty.binary_search(&c) {
                    Ok(p) => row_slice(prev_dirty, p, d),
                    Err(_) if level == 1 => x.row(c as usize),
                    Err(_) => old_ladder[level - 2].row(c as usize),
                };
                for (o, &xv) in row.iter_mut().zip(prev_row) {
                    *o += w * xv;
                }
            }
        }
    };
    let splice = |dst: &mut DenseMatrix, src: &[f32]| {
        for (j, &r) in dirty.iter().enumerate() {
            dst.row_mut(r as usize)
                .copy_from_slice(row_slice(src, j, d));
        }
    };
    let mut prev: Vec<f32> = Vec::with_capacity(m * d);
    for &r in dirty {
        prev.extend_from_slice(x.row(r as usize));
    }
    let mut cur = vec![0.0f32; m * d];
    match kernel {
        Kernel::SymNorm { .. } | Kernel::RandomWalk { .. } | Kernel::TriangleIa { .. } => {
            // cur = T cur, k times.
            for l in 1..=k {
                spmm_dirty(l, &prev, &mut cur);
                if l < k {
                    splice(&mut new_ladder[l - 1], &cur);
                }
                std::mem::swap(&mut prev, &mut cur);
            }
            splice(&mut out, &prev);
        }
        Kernel::Ppr { alpha, .. } => {
            // cur = (1-a) T cur + a X, per element in scale-then-axpy order.
            for l in 1..=k {
                spmm_dirty(l, &prev, &mut cur);
                for (j, &r) in dirty.iter().enumerate() {
                    let row = &mut cur[j * d..(j + 1) * d];
                    for (v, &x0) in row.iter_mut().zip(x.row(r as usize)) {
                        *v *= 1.0 - alpha;
                        *v += alpha * x0;
                    }
                }
                if l < k {
                    splice(&mut new_ladder[l - 1], &cur);
                }
                std::mem::swap(&mut prev, &mut cur);
            }
            splice(&mut out, &prev);
        }
        Kernel::S2gc { alpha, .. } => {
            // acc += (1-a) T^l X + a X per step (two axpy passes, matching
            // the full build), then acc /= k. The ladder holds powers.
            let mut acc = vec![0.0f32; m * d];
            for l in 1..=k {
                spmm_dirty(l, &prev, &mut cur);
                for (a, &pv) in acc.iter_mut().zip(cur.iter()) {
                    *a += (1.0 - alpha) * pv;
                }
                for (j, &r) in dirty.iter().enumerate() {
                    let a = &mut acc[j * d..(j + 1) * d];
                    for (v, &x0) in a.iter_mut().zip(x.row(r as usize)) {
                        *v += alpha * x0;
                    }
                }
                if l < k {
                    splice(&mut new_ladder[l - 1], &cur);
                }
                std::mem::swap(&mut prev, &mut cur);
            }
            let inv = 1.0 / k as f32;
            for v in acc.iter_mut() {
                *v *= inv;
            }
            splice(&mut out, &acc);
        }
        Kernel::Gbp { beta, .. } => {
            // acc = Σ β^l T^l X, l = 0 term included up front.
            let mut acc = prev.clone();
            let mut weight = 1.0f32;
            for l in 1..=k {
                spmm_dirty(l, &prev, &mut cur);
                weight *= beta;
                for (a, &pv) in acc.iter_mut().zip(cur.iter()) {
                    *a += weight * pv;
                }
                if l < k {
                    splice(&mut new_ladder[l - 1], &cur);
                }
                std::mem::swap(&mut prev, &mut cur);
            }
            splice(&mut out, &acc);
        }
    }
    (out, new_ladder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_graph::generators;
    use grain_graph::TransitionKind;

    fn features(n: usize, d: usize) -> DenseMatrix {
        DenseMatrix::from_vec(
            n,
            d,
            (0..n * d).map(|i| ((i * 37 % 11) as f32) * 0.1).collect(),
        )
    }

    fn test_graph() -> Graph {
        generators::erdos_renyi_gnm(30, 60, 9)
    }

    #[test]
    fn zero_steps_is_identity_for_iterative_kernels() {
        let g = test_graph();
        let x = features(30, 4);
        for kernel in [
            Kernel::SymNorm { k: 0 },
            Kernel::RandomWalk { k: 0 },
            Kernel::Ppr { k: 0, alpha: 0.1 },
        ] {
            let y = propagate(&g, kernel, &x);
            assert_eq!(y, x, "{} should be identity at k=0", kernel.name());
        }
    }

    #[test]
    fn random_walk_preserves_constant_features() {
        // A row-stochastic operator maps the all-ones column to itself.
        let g = test_graph();
        let x = DenseMatrix::full(30, 1, 1.0);
        let y = propagate(&g, Kernel::RandomWalk { k: 3 }, &x);
        for i in 0..30 {
            assert!((y.get(i, 0) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn ppr_preserves_constant_features() {
        let g = test_graph();
        let x = DenseMatrix::full(30, 1, 1.0);
        let y = propagate(&g, Kernel::Ppr { k: 4, alpha: 0.15 }, &x);
        for i in 0..30 {
            assert!((y.get(i, 0) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn s2gc_preserves_constant_features() {
        let g = test_graph();
        let x = DenseMatrix::full(30, 1, 1.0);
        let y = propagate(&g, Kernel::S2gc { k: 3, alpha: 0.1 }, &x);
        for i in 0..30 {
            assert!((y.get(i, 0) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gbp_weights_sum_geometrically() {
        // On constant input, GBP yields Σ β^l = (1-β^{k+1})/(1-β).
        let g = test_graph();
        let x = DenseMatrix::full(30, 1, 1.0);
        let beta = 0.5f32;
        let k = 3usize;
        let y = propagate(&g, Kernel::Gbp { k, beta }, &x);
        let want = (1.0 - beta.powi(k as i32 + 1)) / (1.0 - beta);
        for i in 0..30 {
            assert!(
                (y.get(i, 0) - want).abs() < 1e-4,
                "{} vs {want}",
                y.get(i, 0)
            );
        }
    }

    #[test]
    fn sym_norm_smooths_toward_neighbors() {
        // Path graph: after propagation, the middle node mixes its ends.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let x = DenseMatrix::from_vec(3, 1, vec![1.0, 0.0, -1.0]);
        let y = propagate(&g, Kernel::SymNorm { k: 1 }, &x);
        // Symmetric structure keeps the middle at 0, ends shrink toward it.
        assert!((y.get(1, 0)).abs() < 1e-6);
        assert!(y.get(0, 0) < 1.0 && y.get(0, 0) > 0.0);
    }

    #[test]
    fn propagate_with_accepts_prebuilt_transition() {
        let g = test_graph();
        let x = features(30, 3);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        let a = propagate(&g, Kernel::RandomWalk { k: 2 }, &x);
        let b = propagate_with(&t, Kernel::RandomWalk { k: 2 }, &x);
        assert_eq!(a, b);
    }

    #[test]
    fn propagation_is_thread_count_invariant_per_kernel() {
        let g = generators::erdos_renyi_gnm(200, 500, 21);
        let x = features(200, 4);
        for kernel in Kernel::all_table1(2) {
            let t = transition_matrix(&g, kernel.transition_kind(), true);
            let serial = propagate_with_par(&t, kernel, &x, 1);
            for threads in [2usize, 8] {
                assert_eq!(
                    propagate_with_par(&t, kernel, &x, threads),
                    serial,
                    "{} at {threads} threads",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn ppr_interpolates_between_walk_and_input() {
        let g = test_graph();
        let x = features(30, 2);
        // alpha = 1 keeps the input exactly.
        let y = propagate(&g, Kernel::Ppr { k: 3, alpha: 1.0 }, &x);
        assert_eq!(y, x);
    }

    #[test]
    fn triangle_kernel_runs_on_triangle_rich_graph() {
        let g = generators::erdos_renyi_gnp(40, 0.3, 5);
        let x = features(40, 3);
        let y = propagate(&g, Kernel::TriangleIa { k: 2 }, &x);
        assert_eq!(y.shape(), (40, 3));
        assert!(!y.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn shape_mismatch_panics() {
        let g = test_graph();
        let x = features(10, 2);
        let _ = propagate(&g, Kernel::RandomWalk { k: 1 }, &x);
    }

    #[test]
    fn repropagated_rows_match_cold_build_after_edits() {
        use grain_graph::edit::{apply_edge_edits, k_hop_ball};
        let g = generators::erdos_renyi_gnm(60, 150, 11);
        let x = features(60, 4);
        // Delete two existing edges, insert two fresh ones.
        let (u0, v0) = (0u32, *g.neighbors(0).first().expect("node 0 has neighbors"));
        let (u1, v1) = (5u32, *g.neighbors(5).first().expect("node 5 has neighbors"));
        let mut inserts = Vec::new();
        'outer: for u in 0..60u32 {
            for v in (u + 1)..60 {
                if !g.has_edge(u as usize, v) {
                    inserts.push((u, v, 0.75));
                    if inserts.len() == 2 {
                        break 'outer;
                    }
                }
            }
        }
        let (edited, endpoints) = apply_edge_edits(&g, &inserts, &[(u0, v0), (u1, v1)]).unwrap();
        for kernel in Kernel::all_table1(2) {
            let k = kernel.steps();
            let t_old = transition_matrix(&g, kernel.transition_kind(), true);
            let t_new = transition_matrix(&edited, kernel.transition_kind(), true);
            let old = propagate_with(&t_old, kernel, &x);
            let cold = propagate_with(&t_new, kernel, &x);
            // Generous dirty superset: every changed transition row lies
            // within one hop of a touched endpoint, so the (k+1)-hop ball
            // covers the k-hop ball of the transition-dirty rows.
            let dirty = k_hop_ball(&edited, &endpoints, k + 1);
            let patched = repropagate_rows(&t_new, kernel, &x, &old, &dirty);
            assert_eq!(patched, cold, "{} patched != cold", kernel.name());
        }
    }

    #[test]
    fn laddered_repropagation_matches_cold_build_and_cold_ladder() {
        use grain_graph::edit::{apply_edge_edits, k_hop_ball};
        let g = generators::erdos_renyi_gnm(60, 150, 13);
        let x = features(60, 4);
        let (u0, v0) = (3u32, *g.neighbors(3).first().expect("node 3 has neighbors"));
        let (edited, endpoints) = apply_edge_edits(&g, &[(0, 59, 1.25)], &[(u0, v0)]).unwrap();
        for kernel in Kernel::all_table1(3) {
            let k = kernel.steps();
            let t_old = transition_matrix(&g, kernel.transition_kind(), true);
            let t_new = transition_matrix(&edited, kernel.transition_kind(), true);
            let (old, old_ladder) =
                propagate_ladder_with_ctl(&t_old, kernel, &x, 1, &|| false).unwrap();
            let (cold, cold_ladder) =
                propagate_ladder_with_ctl(&t_new, kernel, &x, 1, &|| false).unwrap();
            assert_eq!(old_ladder.len(), k.saturating_sub(1), "{}", kernel.name());
            let dirty = k_hop_ball(&edited, &endpoints, k + 1);
            let refs: Vec<&DenseMatrix> = old_ladder.iter().collect();
            let (patched, patched_ladder) =
                repropagate_rows_laddered(&t_new, kernel, &x, &old, &refs, &dirty);
            assert_eq!(patched, cold, "{} patched != cold", kernel.name());
            assert_eq!(
                patched_ladder,
                cold_ladder,
                "{} patched ladder != cold ladder",
                kernel.name()
            );
        }
    }

    #[test]
    fn ladder_capture_does_not_perturb_the_result() {
        let g = test_graph();
        let x = features(30, 3);
        for kernel in Kernel::all_table1(3) {
            let t = transition_matrix(&g, kernel.transition_kind(), true);
            let plain = propagate_with_par(&t, kernel, &x, 1);
            let (laddered, ladder) =
                propagate_ladder_with_ctl(&t, kernel, &x, 1, &|| false).unwrap();
            assert_eq!(plain, laddered, "{}", kernel.name());
            assert_eq!(ladder.len(), kernel.steps().saturating_sub(1));
        }
    }

    #[test]
    fn repropagate_with_empty_dirty_set_is_identity() {
        let g = test_graph();
        let x = features(30, 3);
        let kernel = Kernel::RandomWalk { k: 2 };
        let t = transition_matrix(&g, kernel.transition_kind(), true);
        let old = propagate_with(&t, kernel, &x);
        assert_eq!(repropagate_rows(&t, kernel, &x, &old, &[]), old);
    }

    #[test]
    fn repropagate_at_k0_copies_features() {
        let g = test_graph();
        let x = features(30, 3);
        let kernel = Kernel::RandomWalk { k: 0 };
        let t = transition_matrix(&g, kernel.transition_kind(), true);
        // Pretend rows 3 and 7 are stale.
        let mut old = x.clone();
        old.row_mut(3).fill(99.0);
        old.row_mut(7).fill(-1.0);
        let patched = repropagate_rows(&t, kernel, &x, &old, &[3, 7]);
        assert_eq!(patched, x);
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn repropagate_rejects_unsorted_dirty() {
        let g = test_graph();
        let x = features(30, 2);
        let kernel = Kernel::RandomWalk { k: 1 };
        let t = transition_matrix(&g, kernel.transition_kind(), true);
        let old = propagate_with(&t, kernel, &x);
        let _ = repropagate_rows(&t, kernel, &x, &old, &[7, 3]);
    }

    #[test]
    fn never_stopping_probe_is_bit_identical() {
        let g = test_graph();
        let x = features(30, 3);
        for kernel in Kernel::all_table1(2) {
            let t = transition_matrix(&g, kernel.transition_kind(), true);
            let plain = propagate_with_par(&t, kernel, &x, 1);
            let ctl = propagate_with_ctl(&t, kernel, &x, 1, &|| false).unwrap();
            assert_eq!(plain, ctl, "{}", kernel.name());
        }
    }

    #[test]
    fn stop_probe_cancels_between_power_steps() {
        use std::cell::Cell;
        let g = test_graph();
        let x = features(30, 3);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        // Stop before the very first step...
        assert!(propagate_with_ctl(&t, Kernel::RandomWalk { k: 3 }, &x, 1, &|| true).is_none());
        // ...and between steps: the probe is polled once per power.
        let polls = Cell::new(0usize);
        let stop_after_two = || {
            polls.set(polls.get() + 1);
            polls.get() > 2
        };
        assert!(
            propagate_with_ctl(&t, Kernel::RandomWalk { k: 5 }, &x, 1, &stop_after_two).is_none()
        );
        assert_eq!(polls.get(), 3, "polled at each of the first three powers");
    }
}

//! Propagation kernel descriptors (one per Table 1 row).

use grain_graph::TransitionKind;
use serde::{Deserialize, Serialize};

/// A parameter-free propagation mechanism from Table 1 of the paper.
///
/// `k` is the propagation depth, inherited from the target GNN's layer
/// count (2 everywhere in the paper's experiments).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum Kernel {
    /// GCN: `X^(k) = T_sym X^(k-1)`.
    SymNorm {
        /// Propagation depth.
        k: usize,
    },
    /// SGC: `X^(k) = T_rw X^(k-1)`.
    RandomWalk {
        /// Propagation depth.
        k: usize,
    },
    /// APPNP / PPR: `X^(k) = (1-α) T_rw X^(k-1) + α X^(0)`.
    Ppr {
        /// Propagation depth.
        k: usize,
        /// Teleport probability `α`.
        alpha: f32,
    },
    /// SIGN: `X^(k) = T_tr X^(k-1)` on triangle-induced adjacency.
    TriangleIa {
        /// Propagation depth.
        k: usize,
    },
    /// S2GC: `X^(k) = (1/k) Σ_{l=1..k} ((1-α) T^l X^(0) + α X^(0))`.
    S2gc {
        /// Propagation depth.
        k: usize,
        /// Residual weight `α`.
        alpha: f32,
    },
    /// GBP: `X^(k) = Σ_{l=0..k} β^l T^l X^(0)` (θ_l = β^l weighting).
    Gbp {
        /// Propagation depth.
        k: usize,
        /// Geometric layer-weight decay `β`.
        beta: f32,
    },
}

impl Kernel {
    /// Propagation depth `K`.
    pub fn steps(&self) -> usize {
        match *self {
            Kernel::SymNorm { k }
            | Kernel::RandomWalk { k }
            | Kernel::Ppr { k, .. }
            | Kernel::TriangleIa { k }
            | Kernel::S2gc { k, .. }
            | Kernel::Gbp { k, .. } => k,
        }
    }

    /// The transition matrix this kernel propagates with.
    pub fn transition_kind(&self) -> TransitionKind {
        match self {
            Kernel::SymNorm { .. } => TransitionKind::Symmetric,
            Kernel::TriangleIa { .. } => TransitionKind::TriangleInduced,
            Kernel::RandomWalk { .. }
            | Kernel::Ppr { .. }
            | Kernel::S2gc { .. }
            | Kernel::Gbp { .. } => TransitionKind::RandomWalk,
        }
    }

    /// Display name matching the paper's Table 1 terminology.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::SymNorm { .. } => "normalized-adjacency",
            Kernel::RandomWalk { .. } => "random-walk",
            Kernel::Ppr { .. } => "ppr",
            Kernel::TriangleIa { .. } => "triangle-ia",
            Kernel::S2gc { .. } => "s2gc",
            Kernel::Gbp { .. } => "gbp",
        }
    }

    /// Stable key for caching propagated embeddings (`f32` params are
    /// bit-encoded so the key is exact).
    pub fn cache_key(&self) -> String {
        match *self {
            Kernel::SymNorm { k } => format!("sym:{k}"),
            Kernel::RandomWalk { k } => format!("rw:{k}"),
            Kernel::Ppr { k, alpha } => format!("ppr:{k}:{:08x}", alpha.to_bits()),
            Kernel::TriangleIa { k } => format!("tri:{k}"),
            Kernel::S2gc { k, alpha } => format!("s2gc:{k}:{:08x}", alpha.to_bits()),
            Kernel::Gbp { k, beta } => format!("gbp:{k}:{:08x}", beta.to_bits()),
        }
    }

    /// All Table 1 kernels at depth `k` with the paper's default parameters
    /// (α = 0.1 as in APPNP's Appendix A.4 setting, β = 0.5).
    pub fn all_table1(k: usize) -> Vec<Kernel> {
        vec![
            Kernel::SymNorm { k },
            Kernel::RandomWalk { k },
            Kernel::Ppr { k, alpha: 0.1 },
            Kernel::TriangleIa { k },
            Kernel::S2gc { k, alpha: 0.1 },
            Kernel::Gbp { k, beta: 0.5 },
        ]
    }
}

impl PartialEq for Kernel {
    fn eq(&self, other: &Self) -> bool {
        self.cache_key() == other.cache_key()
    }
}

impl Eq for Kernel {}

impl std::hash::Hash for Kernel {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.cache_key().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_extracts_depth() {
        assert_eq!(Kernel::SymNorm { k: 3 }.steps(), 3);
        assert_eq!(Kernel::Ppr { k: 5, alpha: 0.2 }.steps(), 5);
    }

    #[test]
    fn transition_kinds_match_table1() {
        assert_eq!(
            Kernel::SymNorm { k: 2 }.transition_kind(),
            TransitionKind::Symmetric
        );
        assert_eq!(
            Kernel::RandomWalk { k: 2 }.transition_kind(),
            TransitionKind::RandomWalk
        );
        assert_eq!(
            Kernel::TriangleIa { k: 2 }.transition_kind(),
            TransitionKind::TriangleInduced
        );
    }

    #[test]
    fn cache_keys_distinguish_params() {
        let a = Kernel::Ppr { k: 2, alpha: 0.1 };
        let b = Kernel::Ppr { k: 2, alpha: 0.2 };
        assert_ne!(a.cache_key(), b.cache_key());
        assert_ne!(a, b);
        assert_eq!(a, Kernel::Ppr { k: 2, alpha: 0.1 });
    }

    #[test]
    fn all_table1_covers_six_mechanisms() {
        let ks = Kernel::all_table1(2);
        assert_eq!(ks.len(), 6);
        let names: std::collections::HashSet<_> = ks.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 6);
    }
}

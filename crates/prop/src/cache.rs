//! Cache of propagated embeddings keyed by kernel.
//!
//! The selection pipeline evaluates several components (influence rows,
//! diversity, downstream GNN inputs) that all consume `X^(k)`; the cache
//! makes sure each kernel propagates exactly once per graph.
//!
//! The cache owns its corpus through [`Arc`] handles and stores each
//! artifact as an `Arc<DenseMatrix>`, so a long-lived serving tier (an
//! engine pool, a selection context feeding baselines) can hold the cache
//! without borrowing and hand out shared `X^(k)` views without copying.

use crate::kernel::Kernel;
use crate::propagate::{propagate, propagate_with_ctl, propagate_with_par};
use grain_graph::{CsrMatrix, Graph};
use grain_linalg::DenseMatrix;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-graph memoization of `X^(k)` per kernel.
pub struct PropagationCache {
    graph: Arc<Graph>,
    features: Arc<DenseMatrix>,
    cache: HashMap<String, Arc<DenseMatrix>>,
}

impl PropagationCache {
    /// New cache over a graph and its raw feature matrix `X^(0)`.
    ///
    /// Accepts anything convertible into shared handles: owned values or
    /// preexisting `Arc`s (the engine-pool path, zero copies).
    ///
    /// # Panics
    /// Panics if `features.rows() != graph.num_nodes()`.
    pub fn new(graph: impl Into<Arc<Graph>>, features: impl Into<Arc<DenseMatrix>>) -> Self {
        let graph = graph.into();
        let features = features.into();
        assert_eq!(
            graph.num_nodes(),
            features.rows(),
            "feature rows ({}) must match node count ({})",
            features.rows(),
            graph.num_nodes()
        );
        Self {
            graph,
            features,
            cache: HashMap::new(),
        }
    }

    /// The propagated embedding for `kernel`, computed on first use.
    /// The returned handle shares the cached allocation.
    pub fn get(&mut self, kernel: Kernel) -> Arc<DenseMatrix> {
        let key = kernel.cache_key();
        if !self.cache.contains_key(&key) {
            let value = propagate(&self.graph, kernel, &self.features);
            self.cache.insert(key.clone(), Arc::new(value));
        }
        Arc::clone(&self.cache[&key])
    }

    /// Like [`PropagationCache::get`], but propagates over a prebuilt
    /// transition matrix on a miss — callers that already hold `T` (the
    /// selection engine caches it for the influence rows) avoid rebuilding
    /// it here.
    ///
    /// # Panics
    /// Panics if `transition` does not match the cached graph's node count.
    pub fn get_with(&mut self, kernel: Kernel, transition: &CsrMatrix) -> Arc<DenseMatrix> {
        self.get_with_par(kernel, transition, 0)
    }

    /// [`PropagationCache::get_with`] propagating over `threads` workers
    /// on a miss (`0` = auto). Because propagation is bit-identical at
    /// any thread count (see [`propagate_with_par`]), the cached artifact
    /// does not depend on the thread count it was built with — which is
    /// why a serving parallelism knob can be excluded from engine cache
    /// keys.
    ///
    /// # Panics
    /// Panics if `transition` does not match the cached graph's node count.
    pub fn get_with_par(
        &mut self,
        kernel: Kernel,
        transition: &CsrMatrix,
        threads: usize,
    ) -> Arc<DenseMatrix> {
        let key = kernel.cache_key();
        if !self.cache.contains_key(&key) {
            let value = propagate_with_par(transition, kernel, &self.features, threads);
            self.cache.insert(key.clone(), Arc::new(value));
        }
        Arc::clone(&self.cache[&key])
    }

    /// [`PropagationCache::get_with_par`] with a cooperative stop probe
    /// (see [`propagate_with_ctl`]): a cache miss whose build observes
    /// the probe returns `None` and caches **nothing** — the next request
    /// for this kernel starts a fresh, complete build, so cancellation
    /// can never tear an artifact. Cache hits ignore the probe entirely
    /// (the work is already done; handing it out is free).
    ///
    /// # Panics
    /// Panics if `transition` does not match the cached graph's node count.
    pub fn get_with_ctl(
        &mut self,
        kernel: Kernel,
        transition: &CsrMatrix,
        threads: usize,
        should_stop: &dyn Fn() -> bool,
    ) -> Option<Arc<DenseMatrix>> {
        let key = kernel.cache_key();
        if !self.cache.contains_key(&key) {
            let value =
                propagate_with_ctl(transition, kernel, &self.features, threads, should_stop)?;
            self.cache.insert(key.clone(), Arc::new(value));
        }
        Some(Arc::clone(&self.cache[&key]))
    }

    /// Inserts a precomputed `X^(k)` for `kernel`, sharing the allocation.
    /// A caller that already holds the artifact (e.g. a pooled engine
    /// handing its propagation to a private companion cache) seeds it here
    /// so the kernel never re-propagates.
    ///
    /// # Panics
    /// Panics if `value` does not have one row per graph node.
    pub fn seed(&mut self, kernel: Kernel, value: Arc<DenseMatrix>) {
        assert_eq!(
            value.rows(),
            self.graph.num_nodes(),
            "seeded rows ({}) must match node count ({})",
            value.rows(),
            self.graph.num_nodes()
        );
        self.cache.insert(kernel.cache_key(), value);
    }

    /// The cached `X^(k)` for `kernel` if it has already been propagated
    /// (or seeded), without computing anything on a miss.
    pub fn get_cached(&self, kernel: Kernel) -> Option<Arc<DenseMatrix>> {
        self.cache.get(&kernel.cache_key()).map(Arc::clone)
    }

    /// True if `kernel` has already been propagated.
    pub fn contains(&self, kernel: Kernel) -> bool {
        self.cache.contains_key(&kernel.cache_key())
    }

    /// Number of kernels materialized so far.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True if nothing has been propagated yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The raw (unpropagated) feature matrix.
    pub fn raw_features(&self) -> &DenseMatrix {
        &self.features
    }

    /// Shared handle to the raw feature matrix.
    pub fn features_arc(&self) -> Arc<DenseMatrix> {
        Arc::clone(&self.features)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Shared handle to the underlying graph.
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_graph::generators;

    #[test]
    fn caches_one_entry_per_kernel() {
        let g = generators::erdos_renyi_gnm(20, 40, 3);
        let x = DenseMatrix::full(20, 4, 1.0);
        let mut cache = PropagationCache::new(g, x);
        assert!(cache.is_empty());
        let _ = cache.get(Kernel::RandomWalk { k: 2 });
        let _ = cache.get(Kernel::RandomWalk { k: 2 });
        assert_eq!(cache.len(), 1);
        let _ = cache.get(Kernel::SymNorm { k: 2 });
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_value_matches_direct_propagation() {
        let g = generators::erdos_renyi_gnm(15, 30, 4);
        let x = DenseMatrix::from_vec(15, 2, (0..30).map(|i| i as f32 * 0.1).collect());
        let kernel = Kernel::Ppr { k: 2, alpha: 0.1 };
        let direct = propagate(&g, kernel, &x);
        let mut cache = PropagationCache::new(g, x);
        assert_eq!(&*cache.get(kernel), &direct);
    }

    #[test]
    fn repeated_gets_share_one_allocation() {
        let g = generators::erdos_renyi_gnm(12, 24, 6);
        let x = DenseMatrix::full(12, 3, 0.5);
        let mut cache = PropagationCache::new(g, x);
        let a = cache.get(Kernel::RandomWalk { k: 2 });
        let b = cache.get(Kernel::RandomWalk { k: 2 });
        assert!(Arc::ptr_eq(&a, &b), "cache must hand out shared views");
    }

    #[test]
    fn arc_corpus_is_not_copied() {
        let g = Arc::new(generators::erdos_renyi_gnm(10, 20, 7));
        let x = Arc::new(DenseMatrix::zeros(10, 2));
        let cache = PropagationCache::new(Arc::clone(&g), Arc::clone(&x));
        assert!(Arc::ptr_eq(&cache.graph_arc(), &g));
        assert!(Arc::ptr_eq(&cache.features_arc(), &x));
    }

    #[test]
    #[should_panic(expected = "must match node count")]
    fn rejects_mismatched_features() {
        let g = generators::erdos_renyi_gnm(10, 20, 5);
        let x = DenseMatrix::zeros(5, 2);
        let _ = PropagationCache::new(g, x);
    }

    #[test]
    fn cancelled_build_caches_nothing_and_next_build_succeeds() {
        use grain_graph::{transition_matrix, TransitionKind};
        let g = generators::erdos_renyi_gnm(20, 40, 3);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        let x = DenseMatrix::full(20, 4, 1.0);
        let kernel = Kernel::RandomWalk { k: 2 };
        let mut cache = PropagationCache::new(g, x);
        assert!(cache.get_with_ctl(kernel, &t, 0, &|| true).is_none());
        assert!(!cache.contains(kernel), "cancelled build left no artifact");
        // A fresh uncancelled build produces the full, correct artifact.
        let full = cache.get_with_ctl(kernel, &t, 0, &|| false).unwrap();
        assert_eq!(&*full, &*cache.get(kernel));
        // Hits ignore the probe: the work already happened.
        assert!(cache.get_with_ctl(kernel, &t, 0, &|| true).is_some());
    }
}

//! Cache of propagated embeddings keyed by kernel.
//!
//! The selection pipeline evaluates several components (influence rows,
//! diversity, downstream GNN inputs) that all consume `X^(k)`; the cache
//! makes sure each kernel propagates exactly once per graph.
//!
//! The cache owns its corpus through [`Arc`] handles and stores each
//! artifact as an `Arc<DenseMatrix>`, so a long-lived serving tier (an
//! engine pool, a selection context feeding baselines) can hold the cache
//! without borrowing and hand out shared `X^(k)` views without copying.

use crate::kernel::Kernel;
use crate::propagate::propagate_ladder_with_ctl;
use grain_graph::{transition_matrix, CsrMatrix, Graph};
use grain_linalg::DenseMatrix;
use std::collections::HashMap;
use std::sync::Arc;

/// One kernel's cached propagation: the final `X^(k)` plus the power
/// ladder (intermediate step states, see
/// [`crate::propagate::propagate_ladder_with_ctl`]) that keeps delta
/// repair output-proportional. Seeded entries carry an empty ladder and
/// fall back to reverse-cone repair.
struct CachedKernel {
    value: Arc<DenseMatrix>,
    ladder: Vec<Arc<DenseMatrix>>,
}

/// Per-graph memoization of `X^(k)` per kernel.
pub struct PropagationCache {
    graph: Arc<Graph>,
    features: Arc<DenseMatrix>,
    cache: HashMap<String, CachedKernel>,
}

impl PropagationCache {
    /// New cache over a graph and its raw feature matrix `X^(0)`.
    ///
    /// Accepts anything convertible into shared handles: owned values or
    /// preexisting `Arc`s (the engine-pool path, zero copies).
    ///
    /// # Panics
    /// Panics if `features.rows() != graph.num_nodes()`.
    pub fn new(graph: impl Into<Arc<Graph>>, features: impl Into<Arc<DenseMatrix>>) -> Self {
        let graph = graph.into();
        let features = features.into();
        assert_eq!(
            graph.num_nodes(),
            features.rows(),
            "feature rows ({}) must match node count ({})",
            features.rows(),
            graph.num_nodes()
        );
        Self {
            graph,
            features,
            cache: HashMap::new(),
        }
    }

    /// The propagated embedding for `kernel`, computed on first use.
    /// The returned handle shares the cached allocation.
    pub fn get(&mut self, kernel: Kernel) -> Arc<DenseMatrix> {
        if !self.cache.contains_key(&kernel.cache_key()) {
            let t = transition_matrix(&self.graph, kernel.transition_kind(), true);
            return self.get_with(kernel, &t);
        }
        Arc::clone(&self.cache[&kernel.cache_key()].value)
    }

    /// Like [`PropagationCache::get`], but propagates over a prebuilt
    /// transition matrix on a miss — callers that already hold `T` (the
    /// selection engine caches it for the influence rows) avoid rebuilding
    /// it here.
    ///
    /// # Panics
    /// Panics if `transition` does not match the cached graph's node count.
    pub fn get_with(&mut self, kernel: Kernel, transition: &CsrMatrix) -> Arc<DenseMatrix> {
        self.get_with_par(kernel, transition, 0)
    }

    /// [`PropagationCache::get_with`] propagating over `threads` workers
    /// on a miss (`0` = auto). Because propagation is bit-identical at
    /// any thread count (see [`crate::propagate_with_par`]), the cached artifact
    /// does not depend on the thread count it was built with — which is
    /// why a serving parallelism knob can be excluded from engine cache
    /// keys.
    ///
    /// # Panics
    /// Panics if `transition` does not match the cached graph's node count.
    pub fn get_with_par(
        &mut self,
        kernel: Kernel,
        transition: &CsrMatrix,
        threads: usize,
    ) -> Arc<DenseMatrix> {
        self.get_with_ctl(kernel, transition, threads, &|| false)
            .expect("propagation with a never-stopping probe cannot be cancelled")
    }

    /// [`PropagationCache::get_with_par`] with a cooperative stop probe
    /// (see [`crate::propagate::propagate_with_ctl`]): a cache miss whose build observes
    /// the probe returns `None` and caches **nothing** — the next request
    /// for this kernel starts a fresh, complete build, so cancellation
    /// can never tear an artifact. Cache hits ignore the probe entirely
    /// (the work is already done; handing it out is free).
    ///
    /// # Panics
    /// Panics if `transition` does not match the cached graph's node count.
    pub fn get_with_ctl(
        &mut self,
        kernel: Kernel,
        transition: &CsrMatrix,
        threads: usize,
        should_stop: &dyn Fn() -> bool,
    ) -> Option<Arc<DenseMatrix>> {
        let key = kernel.cache_key();
        if !self.cache.contains_key(&key) {
            let (value, ladder) = propagate_ladder_with_ctl(
                transition,
                kernel,
                &self.features,
                threads,
                should_stop,
            )?;
            self.cache.insert(
                key.clone(),
                CachedKernel {
                    value: Arc::new(value),
                    ladder: ladder.into_iter().map(Arc::new).collect(),
                },
            );
        }
        Some(Arc::clone(&self.cache[&key].value))
    }

    /// Incrementally patches `X^(k)` for `kernel` after a graph/feature
    /// delta: recomputes only the `dirty` rows against `transition` (the
    /// **edited** graph's transition matrix), splices them into a copy
    /// of `old` (the pre-delta artifact), caches the patched matrix under
    /// the kernel's key, and returns it.
    ///
    /// `old_ladder` is the donor engine's power ladder for this kernel
    /// ([`PropagationCache::cached_ladder`]). When complete (`k - 1`
    /// levels, the invariant every non-seeded cache entry holds), repair
    /// runs level-local via
    /// [`crate::propagate::repropagate_rows_laddered`] — `O(k · |dirty|)`
    /// rows of SpMM — and the patched ladder is cached here so the next
    /// delta repairs just as cheaply. A missing/incomplete ladder (seeded
    /// artifacts) falls back to the reverse-cone
    /// [`crate::propagate::repropagate_rows`], which needs no
    /// intermediate state but expands over clean neighbors.
    ///
    /// The cache must already be over the post-delta corpus — its
    /// `features` are the new `X^(0)`. Bit-identity contract: given a
    /// `dirty` set covering every row the delta can perturb (see
    /// `grain_graph::edit::k_hop_ball`), the cached artifact is
    /// byte-identical to a cold build over the edited corpus.
    ///
    /// # Panics
    /// Panics on shape mismatches or an unsorted/out-of-range `dirty`
    /// list (see [`crate::propagate::repropagate_rows`]).
    pub fn repropagate_rows(
        &mut self,
        kernel: Kernel,
        transition: &CsrMatrix,
        old: &DenseMatrix,
        old_ladder: &[Arc<DenseMatrix>],
        dirty: &[u32],
    ) -> Arc<DenseMatrix> {
        let entry = if old_ladder.len() == kernel.steps().saturating_sub(1) {
            let refs: Vec<&DenseMatrix> = old_ladder.iter().map(|l| l.as_ref()).collect();
            let (patched, ladder) = crate::propagate::repropagate_rows_laddered(
                transition,
                kernel,
                &self.features,
                old,
                &refs,
                dirty,
            );
            CachedKernel {
                value: Arc::new(patched),
                ladder: ladder.into_iter().map(Arc::new).collect(),
            }
        } else {
            let patched =
                crate::propagate::repropagate_rows(transition, kernel, &self.features, old, dirty);
            CachedKernel {
                value: Arc::new(patched),
                ladder: Vec::new(),
            }
        };
        let value = Arc::clone(&entry.value);
        self.cache.insert(kernel.cache_key(), entry);
        value
    }

    /// Inserts a precomputed `X^(k)` for `kernel`, sharing the allocation.
    /// A caller that already holds the artifact (e.g. a pooled engine
    /// handing its propagation to a private companion cache) seeds it here
    /// so the kernel never re-propagates. Seeded entries carry no power
    /// ladder, so a later delta repair on this cache takes the
    /// reverse-cone path.
    ///
    /// # Panics
    /// Panics if `value` does not have one row per graph node.
    pub fn seed(&mut self, kernel: Kernel, value: Arc<DenseMatrix>) {
        assert_eq!(
            value.rows(),
            self.graph.num_nodes(),
            "seeded rows ({}) must match node count ({})",
            value.rows(),
            self.graph.num_nodes()
        );
        self.cache.insert(
            kernel.cache_key(),
            CachedKernel {
                value,
                ladder: Vec::new(),
            },
        );
    }

    /// [`PropagationCache::seed`] carrying the power ladder alongside the
    /// final `X^(k)` — the adoption path for artifacts deserialized from
    /// the on-disk store, which persists the ladder so a store-loaded
    /// engine repairs deltas as cheaply as a cold-built one. A ladder of
    /// the wrong depth (anything but `kernel.steps() - 1` levels) is
    /// discarded and the entry seeded ladder-free, preserving the
    /// reverse-cone fallback instead of corrupting level-local repair.
    /// Mis-shaped ladder levels are discarded the same way.
    ///
    /// # Panics
    /// Panics if `value` does not have one row per graph node.
    pub fn seed_with_ladder(
        &mut self,
        kernel: Kernel,
        value: Arc<DenseMatrix>,
        ladder: Vec<Arc<DenseMatrix>>,
    ) {
        assert_eq!(
            value.rows(),
            self.graph.num_nodes(),
            "seeded rows ({}) must match node count ({})",
            value.rows(),
            self.graph.num_nodes()
        );
        let complete = ladder.len() == kernel.steps().saturating_sub(1)
            && ladder.iter().all(|l| l.rows() == self.graph.num_nodes());
        self.cache.insert(
            kernel.cache_key(),
            CachedKernel {
                value,
                ladder: if complete { ladder } else { Vec::new() },
            },
        );
    }

    /// The cached `X^(k)` for `kernel` if it has already been propagated
    /// (or seeded), without computing anything on a miss.
    pub fn get_cached(&self, kernel: Kernel) -> Option<Arc<DenseMatrix>> {
        self.cache
            .get(&kernel.cache_key())
            .map(|c| Arc::clone(&c.value))
    }

    /// The cached power ladder for `kernel` — empty for misses, seeded
    /// entries, and `k <= 1` kernels (which need no intermediate state).
    /// Handles share the cached allocations.
    pub fn cached_ladder(&self, kernel: Kernel) -> Vec<Arc<DenseMatrix>> {
        self.cache
            .get(&kernel.cache_key())
            .map(|c| c.ladder.iter().map(Arc::clone).collect())
            .unwrap_or_default()
    }

    /// Resident heap bytes of everything cached for `kernel`: the final
    /// `X^(k)` plus its power ladder. Zero on a miss.
    pub fn resident_bytes(&self, kernel: Kernel) -> usize {
        let dense = |m: &DenseMatrix| m.rows() * m.cols() * std::mem::size_of::<f32>();
        self.cache.get(&kernel.cache_key()).map_or(0, |c| {
            dense(&c.value) + c.ladder.iter().map(|l| dense(l)).sum::<usize>()
        })
    }

    /// True if `kernel` has already been propagated.
    pub fn contains(&self, kernel: Kernel) -> bool {
        self.cache.contains_key(&kernel.cache_key())
    }

    /// Number of kernels materialized so far.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True if nothing has been propagated yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The raw (unpropagated) feature matrix.
    pub fn raw_features(&self) -> &DenseMatrix {
        &self.features
    }

    /// Shared handle to the raw feature matrix.
    pub fn features_arc(&self) -> Arc<DenseMatrix> {
        Arc::clone(&self.features)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Shared handle to the underlying graph.
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::propagate;
    use grain_graph::generators;

    #[test]
    fn caches_one_entry_per_kernel() {
        let g = generators::erdos_renyi_gnm(20, 40, 3);
        let x = DenseMatrix::full(20, 4, 1.0);
        let mut cache = PropagationCache::new(g, x);
        assert!(cache.is_empty());
        let _ = cache.get(Kernel::RandomWalk { k: 2 });
        let _ = cache.get(Kernel::RandomWalk { k: 2 });
        assert_eq!(cache.len(), 1);
        let _ = cache.get(Kernel::SymNorm { k: 2 });
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_value_matches_direct_propagation() {
        let g = generators::erdos_renyi_gnm(15, 30, 4);
        let x = DenseMatrix::from_vec(15, 2, (0..30).map(|i| i as f32 * 0.1).collect());
        let kernel = Kernel::Ppr { k: 2, alpha: 0.1 };
        let direct = propagate(&g, kernel, &x);
        let mut cache = PropagationCache::new(g, x);
        assert_eq!(&*cache.get(kernel), &direct);
    }

    #[test]
    fn repeated_gets_share_one_allocation() {
        let g = generators::erdos_renyi_gnm(12, 24, 6);
        let x = DenseMatrix::full(12, 3, 0.5);
        let mut cache = PropagationCache::new(g, x);
        let a = cache.get(Kernel::RandomWalk { k: 2 });
        let b = cache.get(Kernel::RandomWalk { k: 2 });
        assert!(Arc::ptr_eq(&a, &b), "cache must hand out shared views");
    }

    #[test]
    fn arc_corpus_is_not_copied() {
        let g = Arc::new(generators::erdos_renyi_gnm(10, 20, 7));
        let x = Arc::new(DenseMatrix::zeros(10, 2));
        let cache = PropagationCache::new(Arc::clone(&g), Arc::clone(&x));
        assert!(Arc::ptr_eq(&cache.graph_arc(), &g));
        assert!(Arc::ptr_eq(&cache.features_arc(), &x));
    }

    #[test]
    #[should_panic(expected = "must match node count")]
    fn rejects_mismatched_features() {
        let g = generators::erdos_renyi_gnm(10, 20, 5);
        let x = DenseMatrix::zeros(5, 2);
        let _ = PropagationCache::new(g, x);
    }

    #[test]
    fn repropagate_rows_caches_the_patched_artifact() {
        use grain_graph::edit::{apply_edge_edits, k_hop_ball};
        use grain_graph::{transition_matrix, TransitionKind};
        let g = generators::erdos_renyi_gnm(40, 100, 8);
        let x = DenseMatrix::from_vec(40, 3, (0..120).map(|i| (i % 7) as f32 * 0.2).collect());
        let kernel = Kernel::RandomWalk { k: 2 };
        let t_old = transition_matrix(&g, TransitionKind::RandomWalk, true);
        let old = propagate(&g, kernel, &x);
        let (edited, endpoints) = apply_edge_edits(&g, &[], &[(0, g.neighbors(0)[0])]).unwrap();
        let t_new = transition_matrix(&edited, TransitionKind::RandomWalk, true);
        let dirty = k_hop_ball(&edited, &endpoints, 3);
        // A donor cache that built cold carries the ladder; the patching
        // cache adopts and repairs it.
        let mut donor = PropagationCache::new(g.clone(), x.clone());
        let _ = donor.get_with(kernel, &t_old);
        let old_ladder = donor.cached_ladder(kernel);
        assert_eq!(old_ladder.len(), 1, "k=2 ladder is one level");
        let mut cache = PropagationCache::new(edited.clone(), x.clone());
        let patched = cache.repropagate_rows(kernel, &t_new, &old, &old_ladder, &dirty);
        assert_eq!(&*patched, &propagate(&edited, kernel, &x));
        // The patch is cached: the next get hands out the same allocation.
        assert!(Arc::ptr_eq(&patched, &cache.get_with(kernel, &t_new)));
        // The patched ladder matches a cold build's over the edited graph,
        // so the next delta can repair level-locally too.
        let mut cold = PropagationCache::new(edited.clone(), x.clone());
        let _ = cold.get_with(kernel, &t_new);
        assert_eq!(
            cache.cached_ladder(kernel)[0],
            cold.cached_ladder(kernel)[0],
            "patched ladder != cold ladder"
        );
        // A donor without a ladder (seeded artifact) still patches via the
        // reverse-cone fallback.
        let mut bare = PropagationCache::new(edited.clone(), x.clone());
        let fallback = bare.repropagate_rows(kernel, &t_new, &old, &[], &dirty);
        assert_eq!(&*fallback, &*patched);
        assert!(bare.cached_ladder(kernel).is_empty());
    }

    #[test]
    fn cancelled_build_caches_nothing_and_next_build_succeeds() {
        use grain_graph::{transition_matrix, TransitionKind};
        let g = generators::erdos_renyi_gnm(20, 40, 3);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        let x = DenseMatrix::full(20, 4, 1.0);
        let kernel = Kernel::RandomWalk { k: 2 };
        let mut cache = PropagationCache::new(g, x);
        assert!(cache.get_with_ctl(kernel, &t, 0, &|| true).is_none());
        assert!(!cache.contains(kernel), "cancelled build left no artifact");
        // A fresh uncancelled build produces the full, correct artifact.
        let full = cache.get_with_ctl(kernel, &t, 0, &|| false).unwrap();
        assert_eq!(&*full, &*cache.get(kernel));
        // Hits ignore the probe: the work already happened.
        assert!(cache.get_with_ctl(kernel, &t, 0, &|| true).is_some());
    }
}

//! Cache of propagated embeddings keyed by kernel.
//!
//! The selection pipeline evaluates several components (influence rows,
//! diversity, downstream GNN inputs) that all consume `X^(k)`; the cache
//! makes sure each kernel propagates exactly once per graph.

use crate::kernel::Kernel;
use crate::propagate::{propagate, propagate_with};
use grain_graph::{CsrMatrix, Graph};
use grain_linalg::DenseMatrix;
use std::collections::HashMap;

/// Per-graph memoization of `X^(k)` per kernel.
pub struct PropagationCache<'g> {
    graph: &'g Graph,
    features: &'g DenseMatrix,
    cache: HashMap<String, DenseMatrix>,
}

impl<'g> PropagationCache<'g> {
    /// New cache over a graph and its raw feature matrix `X^(0)`.
    pub fn new(graph: &'g Graph, features: &'g DenseMatrix) -> Self {
        assert_eq!(
            graph.num_nodes(),
            features.rows(),
            "feature rows ({}) must match node count ({})",
            features.rows(),
            graph.num_nodes()
        );
        Self {
            graph,
            features,
            cache: HashMap::new(),
        }
    }

    /// The propagated embedding for `kernel`, computed on first use.
    pub fn get(&mut self, kernel: Kernel) -> &DenseMatrix {
        let key = kernel.cache_key();
        if !self.cache.contains_key(&key) {
            let value = propagate(self.graph, kernel, self.features);
            self.cache.insert(key.clone(), value);
        }
        &self.cache[&key]
    }

    /// Like [`PropagationCache::get`], but propagates over a prebuilt
    /// transition matrix on a miss — callers that already hold `T` (the
    /// selection engine caches it for the influence rows) avoid rebuilding
    /// it here.
    ///
    /// # Panics
    /// Panics if `transition` does not match the cached graph's node count.
    pub fn get_with(&mut self, kernel: Kernel, transition: &CsrMatrix) -> &DenseMatrix {
        let key = kernel.cache_key();
        if !self.cache.contains_key(&key) {
            let value = propagate_with(transition, kernel, self.features);
            self.cache.insert(key.clone(), value);
        }
        &self.cache[&key]
    }

    /// True if `kernel` has already been propagated.
    pub fn contains(&self, kernel: Kernel) -> bool {
        self.cache.contains_key(&kernel.cache_key())
    }

    /// Number of kernels materialized so far.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True if nothing has been propagated yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The raw (unpropagated) feature matrix.
    pub fn raw_features(&self) -> &DenseMatrix {
        self.features
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_graph::generators;

    #[test]
    fn caches_one_entry_per_kernel() {
        let g = generators::erdos_renyi_gnm(20, 40, 3);
        let x = DenseMatrix::full(20, 4, 1.0);
        let mut cache = PropagationCache::new(&g, &x);
        assert!(cache.is_empty());
        let _ = cache.get(Kernel::RandomWalk { k: 2 });
        let _ = cache.get(Kernel::RandomWalk { k: 2 });
        assert_eq!(cache.len(), 1);
        let _ = cache.get(Kernel::SymNorm { k: 2 });
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_value_matches_direct_propagation() {
        let g = generators::erdos_renyi_gnm(15, 30, 4);
        let x = DenseMatrix::from_vec(15, 2, (0..30).map(|i| i as f32 * 0.1).collect());
        let mut cache = PropagationCache::new(&g, &x);
        let kernel = Kernel::Ppr { k: 2, alpha: 0.1 };
        let direct = propagate(&g, kernel, &x);
        assert_eq!(cache.get(kernel), &direct);
    }

    #[test]
    #[should_panic(expected = "must match node count")]
    fn rejects_mismatched_features() {
        let g = generators::erdos_renyi_gnm(10, 20, 5);
        let x = DenseMatrix::zeros(5, 2);
        let _ = PropagationCache::new(&g, &x);
    }
}

//! Decoupled, parameter-free feature propagation (Grain Eq. 6 / Table 1).
//!
//! Grain's central efficiency idea is to run the GNN's *feature propagation*
//! once, up front, without any trainable weights:
//!
//! ```text
//! X^(k) = f(X^(k-1), T, X^(0)),   k = 1..K
//! ```
//!
//! This crate implements every propagation mechanism listed in Table 1 of
//! the paper — normalized adjacency (GCN), random walk (SGC), personalized
//! PageRank (APPNP), triangle-induced adjacency (SIGN), S2GC, and GBP — on
//! top of the sparse transition matrices from `grain-graph`.
//!
//! The aggregated embedding `X^(K)` is the single artifact every other part
//! of the framework consumes: influence rows, diversity functions, and the
//! decoupled GNNs.
//!
//! ```
//! use grain_graph::generators;
//! use grain_linalg::DenseMatrix;
//! use grain_prop::{propagate, Kernel};
//!
//! let g = generators::erdos_renyi_gnm(50, 150, 3);
//! let x = DenseMatrix::full(50, 4, 1.0);
//!
//! // SGC-style propagation: X^(2) = T_rw^2 X^(0). The transition rows
//! // are probability distributions, so a constant signal is a fixed
//! // point — the classic over-smoothing limit, reached here instantly.
//! let xk = propagate(&g, Kernel::RandomWalk { k: 2 }, &x);
//! assert_eq!(xk.shape(), (50, 4));
//! assert!(xk.as_slice().iter().all(|v| (v - 1.0).abs() < 1e-5));
//! ```

pub mod cache;
pub mod kernel;
pub mod propagate;

pub use kernel::Kernel;
pub use propagate::{propagate, propagate_with, propagate_with_par, repropagate_rows};

//! Decoupled, parameter-free feature propagation (Grain Eq. 6 / Table 1).
//!
//! Grain's central efficiency idea is to run the GNN's *feature propagation*
//! once, up front, without any trainable weights:
//!
//! ```text
//! X^(k) = f(X^(k-1), T, X^(0)),   k = 1..K
//! ```
//!
//! This crate implements every propagation mechanism listed in Table 1 of
//! the paper — normalized adjacency (GCN), random walk (SGC), personalized
//! PageRank (APPNP), triangle-induced adjacency (SIGN), S2GC, and GBP — on
//! top of the sparse transition matrices from `grain-graph`.
//!
//! The aggregated embedding `X^(K)` is the single artifact every other part
//! of the framework consumes: influence rows, diversity functions, and the
//! decoupled GNNs.

pub mod cache;
pub mod kernel;
pub mod propagate;

pub use kernel::Kernel;
pub use propagate::{propagate, propagate_with, propagate_with_par};

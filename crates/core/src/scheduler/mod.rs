//! Asynchronous queueing front-end over [`GrainService`]: admission
//! control, per-key coalescing of identical in-flight requests, and
//! deadline/priority-aware dispatch.
//!
//! [`GrainService`] (PR 4) is concurrent but *synchronous*: every caller
//! blocks for the full selection, and nothing stands between a traffic
//! burst and the engine pool. The [`Scheduler`] is the missing front-end:
//! callers [`Scheduler::submit`] a [`ScheduledRequest`] (a
//! [`SelectionRequest`] plus an optional deadline and a priority) and get
//! back a [`Ticket`] immediately; a fixed pool of worker threads drains a
//! bounded queue behind it. The scheduler **composes** the service — all
//! selection work still flows through [`GrainService::submit_batch`]'s
//! warm-engine path, so every invariant the service asserts (bit-identity
//! to the serial oracle above all) holds for every scheduled path too.
//!
//! Three mechanisms, in the order a request meets them:
//!
//! 1. **Admission control.** The queue holds at most
//!    [`SchedulerConfig::queue_capacity`] distinct pending selections;
//!    beyond that, [`Scheduler::submit`] fails fast with
//!    [`GrainError::QueueFull`] instead of letting latency grow without
//!    bound. A request whose deadline has already passed is refused with
//!    [`GrainError::DeadlineExceeded`] at
//!    [`DeadlineStage::AtSubmit`]; one that expires while queued is shed
//!    at dequeue ([`DeadlineStage::InQueue`]) before any selection work
//!    is spent on it.
//! 2. **Per-key coalescing.** Influence-serving traffic is dominated by
//!    repeated near-identical queries, so identical in-flight selections
//!    — same graph, same
//!    [`GrainConfig::selection_fingerprint`](crate::GrainConfig::selection_fingerprint),
//!    same budget, candidates, and seed — resolve **once**: later
//!    submissions attach to the pending slot as extra waiters (even while
//!    it is already running) and the one report fans out to every ticket.
//!    This extends the engine pool's build latch from engine builds to
//!    whole selections; joiners are marked
//!    [`PoolEvent::CoalescedSelection`] and counted in
//!    [`SchedulerStats::coalesced`].
//! 3. **Deadline/priority-aware dispatch.** The queue orders work by
//!    priority first, earliest deadline within a priority, submission
//!    order as the tiebreak — and each dispatch takes up to
//!    [`SchedulerConfig::max_group`] queued selections sharing one engine
//!    key along with the winner, handing them to
//!    [`GrainService::submit_batch`] so they run back to back on a warm
//!    engine.
//!
//! # Multi-tenancy
//!
//! A [`ScheduledRequest`] may carry a tenant id
//! ([`ScheduledRequest::with_tenant`]); slots then queue in per-tenant
//! flows and dispatch is **weighted-fair across tenants** (start-time
//! fair queuing, [`FairShare`]): under saturation, tenants complete work
//! in proportion to the weights set via
//! [`Scheduler::set_tenant_weight`], a weight-1 tenant is never starved,
//! and priority/EDF/FIFO order still holds within each tenant (priority
//! also stays a *global* escape hatch — the highest-priority head
//! anywhere dispatches first). Tenant-less submissions share one
//! anonymous flow, so a scheduler that never names tenants behaves
//! exactly as before. Per-tenant accounting — admitted, coalesced,
//! shed, cancelled, completed, and p50/p90/p99 service time — is
//! snapshotted by [`Scheduler::tenant_stats`]; the network edge
//! ([`crate::edge`]) maps authenticated connections onto these tenants.
//!
//! # Coalescing guarantees
//!
//! Grain selection is deterministic: requests with equal coalesce keys
//! would produce bit-identical [`SelectionReport`]s anyway, so fan-out
//! never changes a result — it only removes duplicate work. The first
//! waiter's report carries the true [`PoolEvent`] of the one execution;
//! every later waiter receives the same outcomes with the event rewritten
//! to [`PoolEvent::CoalescedSelection`]. Requests that differ in *any*
//! result-affecting field (including the bookkeeping seed, which is
//! echoed into the report) never coalesce.
//!
//! # Deadline and cancellation semantics
//!
//! A deadline is enforced at three stages. At submission, an expired
//! deadline is refused ([`DeadlineStage::AtSubmit`]); while queued, an
//! expiring waiter is shed at dequeue ([`DeadlineStage::InQueue`]); and
//! once dispatched, the deadline arms the run's shared
//! [`CancelToken`], which the engine polls at
//! greedy-round boundaries, every
//! [`cancel_check_every`](crate::GrainConfig::cancel_check_every)
//! marginal-gain evaluations, and at each artifact-build stage — a
//! selection **is** cancelled mid-greedy. What a waiter then receives is
//! governed by its own [`OnDeadline`] policy
//! ([`ScheduledRequest::with_on_deadline`]):
//!
//! | policy | trip during an artifact build | trip mid-greedy |
//! |---|---|---|
//! | [`Fail`](crate::OnDeadline::Fail) (default) | [`GrainError::DeadlineExceeded`] at [`DeadlineStage::MidSelection`] | the same typed error |
//! | [`Partial`](crate::OnDeadline::Partial) | the same typed error (artifacts are never partial) | `Ok` with the greedy prefix, marked [`Completion::Partial`](crate::Completion) |
//!
//! Because the objective is submodular, the prefix is itself the
//! `1 - 1/e` greedy answer for its smaller budget — an *anytime* result,
//! byte-for-byte a prefix of what the uncancelled run would have chosen.
//!
//! The shared token is deadline-armed at dispatch only when **every**
//! live waiter carries a deadline (the latest wins — the run stays
//! useful until the last waiter gives up); one deadline-free waiter
//! keeps the run uncancellable, and such a waiter still receives the
//! full report even if its siblings' deadlines pass. Caller-driven
//! cancellation is refcounted the same way: [`Ticket::cancel`] detaches
//! one waiter (resolving that ticket as [`GrainError::Cancelled`]), and
//! only the *last* detachment trips the token and stops the run.
//! Dropping a ticket is **not** a cancel — an abandoned waiter never
//! stops work a coalesced sibling may still be waiting on.
//!
//! # Panic isolation
//!
//! Selections run panic-isolated in the workers
//! ([`GrainService::submit_batch`]'s contract): a panicking request
//! resolves its own waiters with [`GrainError::SelectionPanicked`]
//! (counted in [`SchedulerStats::panicked`]) and never kills a worker
//! thread, wedges a latch, or corrupts a sibling group member's result.
//!
//! ```
//! use grain_core::scheduler::{ScheduledRequest, Scheduler, SchedulerConfig};
//! use grain_core::service::{Budget, GrainService, SelectionRequest};
//! use grain_core::GrainConfig;
//! use grain_graph::generators;
//! use grain_linalg::DenseMatrix;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let service = Arc::new(GrainService::new());
//! let graph = generators::erdos_renyi_gnm(150, 450, 7);
//! service.register_graph("demo", graph, DenseMatrix::full(150, 8, 1.0))?;
//!
//! let scheduler = Scheduler::new(Arc::clone(&service), SchedulerConfig::default());
//! let request = SelectionRequest::new("demo", GrainConfig::ball_d(), Budget::Fixed(8));
//!
//! // Submit returns immediately; the ticket resolves to the report.
//! let ticket = scheduler.submit(
//!     ScheduledRequest::new(request.clone()).with_deadline_in(Duration::from_secs(30)),
//! )?;
//! let report = ticket.wait()?;
//! assert_eq!(report.outcome().selected.len(), 8);
//!
//! // Scheduled answers are bit-identical to direct service calls.
//! assert_eq!(
//!     service.select(&request)?.outcome().selected,
//!     report.outcome().selected
//! );
//! # Ok::<(), grain_core::GrainError>(())
//! ```

mod fair;
mod queue;
mod tenant;

pub use fair::{FairShare, FAIR_COST_SCALE};
pub use tenant::TenantStats;

use crate::cancel::{CancelToken, OnDeadline};
use crate::error::{DeadlineStage, GrainError, GrainResult};
use crate::fault;
use crate::service::{GrainService, PoolEvent, SelectionReport, SelectionRequest};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, TryRecvError};
use grain_linalg::par;
use queue::{Admission, DispatchQueue, Waiter, WaiterHandle};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tenant::{TenantCounters, TenantRegistry};

/// Default bound on distinct queued selections
/// ([`SchedulerConfig::queue_capacity`]).
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Default cap on how many same-engine-key selections one dispatch hands
/// to [`GrainService::submit_batch`] ([`SchedulerConfig::max_group`]).
pub const DEFAULT_MAX_GROUP: usize = 8;

/// Construction-time knobs of a [`Scheduler`].
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Worker threads draining the queue; `0` means auto
    /// (`GRAIN_THREADS` or the machine's available parallelism). Each
    /// worker executes one dispatch group at a time.
    pub workers: usize,
    /// Admission bound: at most this many *distinct* selections may be
    /// queued (running work and coalesced waiters are not counted — a
    /// coalesced submission adds no work). `0` rejects every new
    /// submission, a drain/maintenance mode.
    pub queue_capacity: usize,
    /// At most this many same-engine-key selections ride along per
    /// dispatch (minimum 1). Larger groups keep a warm engine busier per
    /// dispatch but deviate further from strict priority/EDF order.
    pub max_group: usize,
    /// Start with dispatch paused ([`Scheduler::resume`] starts it) —
    /// lets a caller stage a burst and is how the tests make coalescing
    /// deterministic.
    pub start_paused: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            max_group: DEFAULT_MAX_GROUP,
            start_paused: false,
        }
    }
}

/// A [`SelectionRequest`] plus its scheduling envelope.
#[derive(Clone, Debug)]
pub struct ScheduledRequest {
    /// The selection to run.
    pub request: SelectionRequest,
    /// Dispatch priority; higher runs first. Defaults to `0`.
    pub priority: u8,
    /// Latest instant at which starting the selection is still useful;
    /// `None` (the default) never expires. See the module docs for the
    /// exact semantics.
    pub deadline: Option<Instant>,
    /// Degradation policy when the deadline trips *after* dispatch, at a
    /// cancellation checkpoint inside the run (see the module docs'
    /// policy table). Defaults to [`OnDeadline::Fail`].
    pub on_deadline: OnDeadline,
    /// Tenant this submission queues (and is fairness-charged) under;
    /// `None` (the default) uses the shared anonymous flow. See the
    /// module docs' multi-tenancy section.
    pub tenant: Option<Arc<str>>,
}

impl ScheduledRequest {
    /// Wraps a request with default scheduling (priority 0, no deadline,
    /// [`OnDeadline::Fail`]).
    #[must_use]
    pub fn new(request: SelectionRequest) -> Self {
        Self {
            request,
            priority: 0,
            deadline: None,
            on_deadline: OnDeadline::default(),
            tenant: None,
        }
    }

    /// Sets the dispatch priority (higher runs first).
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets an absolute deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline relative to now.
    #[must_use]
    pub fn with_deadline_in(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Sets the mid-run deadline degradation policy:
    /// [`OnDeadline::Partial`] accepts the anytime greedy prefix instead
    /// of a [`GrainError::DeadlineExceeded`] when the deadline trips
    /// after dispatch.
    #[must_use]
    pub fn with_on_deadline(mut self, on_deadline: OnDeadline) -> Self {
        self.on_deadline = on_deadline;
        self
    }

    /// Names the tenant this submission queues under, opting it into
    /// weighted-fair dispatch and per-tenant accounting
    /// ([`Scheduler::set_tenant_weight`], [`Scheduler::tenant_stats`]).
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<Arc<str>>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }
}

impl From<SelectionRequest> for ScheduledRequest {
    fn from(request: SelectionRequest) -> Self {
        Self::new(request)
    }
}

/// Handle to a submitted selection; resolves to the
/// [`SelectionReport`] (or the typed failure) once a worker has answered
/// it.
///
/// Dropping a ticket abandons the waiter **without cancelling** the
/// work: the selection still runs (other coalesced waiters may depend on
/// it) and the undeliverable report is counted in
/// [`SchedulerStats::abandoned`]. Workers never block on an abandoned
/// ticket. To actually stop the work, call [`Ticket::cancel`] — it
/// detaches this waiter, and the run is cancelled once its *last* waiter
/// has done so.
pub struct Ticket {
    rx: Receiver<GrainResult<SelectionReport>>,
    /// `None` only for channel-only tickets built in tests.
    cancel: Option<TicketCancel>,
}

/// The cancellation half of a [`Ticket`]: the slot's refcounted cancel
/// state, this waiter's own flag, and the counters to record the cancel.
#[derive(Clone)]
struct TicketCancel {
    state: Arc<queue::CancelState>,
    cancelled: Arc<AtomicBool>,
    counters: Arc<SchedCounters>,
    tenant: Option<Arc<TenantCounters>>,
}

impl TicketCancel {
    /// Idempotent waiter detach; see [`Ticket::cancel`].
    fn cancel(&self) {
        if !self.cancelled.swap(true, Ordering::AcqRel) {
            SchedCounters::bump(&self.counters.cancelled);
            if let Some(tenant) = &self.tenant {
                SchedCounters::bump(&tenant.cancelled);
            }
            self.state.cancel_one();
        }
    }
}

/// A cloneable, detached handle to one waiter's cancellation, obtained
/// from [`Ticket::cancel_handle`]. It carries none of the result
/// channel, so one thread can block in [`Ticket::wait`] while another —
/// a connection reader noticing a client disconnect, say — cancels the
/// same waiter. Semantics are identical to [`Ticket::cancel`]:
/// idempotent, refcounted across a coalesced group, counted once.
#[derive(Clone)]
pub struct CancelHandle {
    cancel: Option<TicketCancel>,
}

impl std::fmt::Debug for CancelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CancelHandle { .. }")
    }
}

impl CancelHandle {
    /// Cancels the waiter this handle was taken from; see
    /// [`Ticket::cancel`].
    pub fn cancel(&self) {
        if let Some(cancel) = &self.cancel {
            cancel.cancel();
        }
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Ticket { .. }")
    }
}

impl Ticket {
    /// Cancels this waiter. Idempotent; counted once in
    /// [`SchedulerStats::cancelled`].
    ///
    /// Cancellation is **refcounted** across a coalesced group: this
    /// call detaches only this ticket's waiter (later [`Ticket::wait`]
    /// calls return [`GrainError::Cancelled`], and the scheduler will
    /// not deliver to it), while the selection itself keeps running
    /// until the last waiter of its slot cancels — then the shared
    /// [`CancelToken`] trips and the run stops at
    /// its next cancellation checkpoint (or never starts, if still
    /// queued).
    ///
    /// ```
    /// use grain_core::scheduler::{Scheduler, SchedulerConfig};
    /// use grain_core::service::{Budget, GrainService, SelectionRequest};
    /// use grain_core::{GrainConfig, GrainError};
    /// use grain_linalg::DenseMatrix;
    /// use std::sync::Arc;
    ///
    /// let service = Arc::new(GrainService::new());
    /// let graph = grain_graph::generators::erdos_renyi_gnm(80, 240, 7);
    /// service.register_graph("demo", graph, DenseMatrix::full(80, 4, 1.0))?;
    /// let scheduler = Scheduler::new(
    ///     service,
    ///     SchedulerConfig { start_paused: true, ..SchedulerConfig::default() },
    /// );
    ///
    /// let request = SelectionRequest::new("demo", GrainConfig::ball_d(), Budget::Fixed(5));
    /// let ticket = scheduler.submit(request)?;
    /// ticket.cancel();
    /// assert_eq!(ticket.wait().unwrap_err(), GrainError::Cancelled);
    /// assert_eq!(scheduler.stats().cancelled, 1);
    /// # Ok::<(), grain_core::GrainError>(())
    /// ```
    pub fn cancel(&self) {
        if let Some(cancel) = &self.cancel {
            cancel.cancel();
        }
    }

    /// A detached, cloneable cancel handle for this ticket's waiter, so
    /// cancellation can come from a different thread than the one
    /// blocked in [`Ticket::wait`] (the serving edge cancels in-flight
    /// work this way when a client disconnects).
    #[must_use]
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle {
            cancel: self.cancel.clone(),
        }
    }

    fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.cancelled.load(Ordering::Acquire))
    }

    /// Blocks until the selection is answered.
    ///
    /// # Errors
    /// Whatever typed error the selection produced — plus
    /// [`GrainError::DeadlineExceeded`] (stage
    /// [`DeadlineStage::InQueue`]) if the request was shed,
    /// [`GrainError::Cancelled`] after [`Ticket::cancel`], and
    /// [`GrainError::SchedulerShutdown`] if the scheduler was dropped
    /// before answering.
    pub fn wait(self) -> GrainResult<SelectionReport> {
        if self.is_cancelled() {
            return Err(GrainError::Cancelled);
        }
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(GrainError::SchedulerShutdown),
        }
    }

    /// Blocks until the selection is answered or `timeout` elapses,
    /// handing the ticket back on timeout so the caller can keep
    /// polling, escalate, or [`Ticket::cancel`].
    ///
    /// # Errors
    /// On resolution, as for [`Ticket::wait`] (inside the `Ok` arm); on
    /// timeout, `Err(self)`.
    ///
    /// ```
    /// use grain_core::scheduler::{Scheduler, SchedulerConfig};
    /// use grain_core::service::{Budget, GrainService, SelectionRequest};
    /// use grain_core::GrainConfig;
    /// use grain_linalg::DenseMatrix;
    /// use std::sync::Arc;
    /// use std::time::Duration;
    ///
    /// let service = Arc::new(GrainService::new());
    /// let graph = grain_graph::generators::erdos_renyi_gnm(80, 240, 7);
    /// service.register_graph("demo", graph, DenseMatrix::full(80, 4, 1.0))?;
    /// let scheduler = Scheduler::new(
    ///     service,
    ///     SchedulerConfig { start_paused: true, ..SchedulerConfig::default() },
    /// );
    ///
    /// let request = SelectionRequest::new("demo", GrainConfig::ball_d(), Budget::Fixed(5));
    /// let ticket = scheduler.submit(request)?;
    /// // Paused scheduler: nothing resolves within the timeout.
    /// let ticket = ticket
    ///     .wait_timeout(Duration::from_millis(10))
    ///     .expect_err("paused, so the ticket comes back");
    /// scheduler.resume();
    /// assert_eq!(ticket.wait()?.outcome().selected.len(), 5);
    /// # Ok::<(), grain_core::GrainError>(())
    /// ```
    pub fn wait_timeout(self, timeout: Duration) -> Result<GrainResult<SelectionReport>, Self> {
        if self.is_cancelled() {
            return Ok(Err(GrainError::Cancelled));
        }
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Ok(result),
            Err(RecvTimeoutError::Disconnected) => Ok(Err(GrainError::SchedulerShutdown)),
            Err(RecvTimeoutError::Timeout) => Err(self),
        }
    }

    /// Non-blocking poll: the resolution if one is ready, otherwise the
    /// ticket back for a later retry.
    ///
    /// # Errors
    /// As for [`Ticket::wait`], inside the `Ok` arm.
    pub fn try_wait(self) -> Result<GrainResult<SelectionReport>, Self> {
        if self.is_cancelled() {
            return Ok(Err(GrainError::Cancelled));
        }
        match self.rx.try_recv() {
            Ok(result) => Ok(result),
            Err(TryRecvError::Disconnected) => Ok(Err(GrainError::SchedulerShutdown)),
            Err(TryRecvError::Empty) => Err(self),
        }
    }
}

/// Scheduler counters (a lock-free snapshot; see [`Scheduler::stats`]).
///
/// All counters are monotonic with one deliberate wrinkle: `delivered`
/// is bumped just *before* each send so a resolved waiter can always
/// observe its own delivery; if the send then fails (the ticket was
/// dropped) the bump is rolled back and `abandoned` bumped instead. A
/// concurrent snapshot can catch that instant, so `delivered` may
/// transiently overcount by the number of in-flight fan-outs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Submissions admitted as new queued work.
    pub enqueued: usize,
    /// Submissions that attached to an identical queued or running
    /// selection instead of adding work — the coalescing win.
    pub coalesced: usize,
    /// Submissions refused at admission: queue at capacity.
    pub rejected_queue_full: usize,
    /// Submissions refused at admission: deadline already passed.
    pub rejected_deadline: usize,
    /// Waiters shed at dequeue because their deadline passed in-queue.
    pub shed_deadline: usize,
    /// Selections actually executed (each may serve many waiters).
    pub selections: usize,
    /// Dispatch groups handed to [`GrainService::submit_batch`].
    pub dispatch_groups: usize,
    /// Reports (or typed errors) delivered to live tickets.
    pub delivered: usize,
    /// Fan-outs whose ticket had been dropped before resolution.
    pub abandoned: usize,
    /// Tickets explicitly cancelled ([`Ticket::cancel`]; dropped tickets
    /// count as `abandoned`, not here).
    pub cancelled: usize,
    /// Anytime-prefix reports delivered to [`OnDeadline::Partial`]
    /// waiters after a mid-run deadline trip.
    pub partial: usize,
    /// Requests that resolved [`GrainError::SelectionPanicked`] — the
    /// panic was isolated to that request; the worker survived.
    pub panicked: usize,
}

impl SchedulerStats {
    /// Every submission the scheduler has seen.
    #[must_use]
    pub fn submissions(&self) -> usize {
        self.enqueued + self.coalesced + self.rejected_queue_full + self.rejected_deadline
    }

    /// Selections avoided by coalescing plus work never started thanks to
    /// admission control — the front-end's whole reason to exist.
    #[must_use]
    pub fn saved_selections(&self) -> usize {
        self.coalesced + self.shed_deadline + self.rejected_deadline
    }
}

#[derive(Default)]
struct SchedCounters {
    enqueued: AtomicUsize,
    coalesced: AtomicUsize,
    rejected_queue_full: AtomicUsize,
    rejected_deadline: AtomicUsize,
    shed_deadline: AtomicUsize,
    selections: AtomicUsize,
    dispatch_groups: AtomicUsize,
    delivered: AtomicUsize,
    abandoned: AtomicUsize,
    cancelled: AtomicUsize,
    partial: AtomicUsize,
    panicked: AtomicUsize,
}

impl SchedCounters {
    fn bump(counter: &AtomicUsize) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SchedulerStats {
        SchedulerStats {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            selections: self.selections.load(Ordering::Relaxed),
            dispatch_groups: self.dispatch_groups.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            partial: self.partial.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
        }
    }
}

/// Queue plus the dispatch flags, all under one mutex so pause/shutdown
/// transitions and queue edits are atomic with respect to the workers.
struct SchedState {
    queue: DispatchQueue,
    paused: bool,
    shutdown: bool,
}

struct Inner {
    service: Arc<GrainService>,
    state: Mutex<SchedState>,
    /// Signals workers: work queued, resumed, or shutdown.
    ready: Condvar,
    /// Shared with tickets (an `Arc` so [`Ticket::cancel`] can count
    /// itself after the scheduler is gone).
    counters: Arc<SchedCounters>,
    /// Per-tenant counter blocks; see [`tenant`].
    tenants: TenantRegistry,
    queue_capacity: usize,
    max_group: usize,
}

impl Inner {
    fn lock_state(&self) -> MutexGuard<'_, SchedState> {
        // Queue mutations are complete per critical section (the same
        // argument as the pool's shards), so serving continues after a
        // poisoning panic.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The queueing front-end; see the module docs.
///
/// Construction spawns the worker pool; dropping the scheduler shuts it
/// down gracefully ([`Scheduler::shutdown`]) and joins every worker, so a
/// scheduler never outlives its threads.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Spawns the worker pool over `service`.
    #[must_use]
    pub fn new(service: Arc<GrainService>, config: SchedulerConfig) -> Self {
        let worker_count = par::resolve_threads(config.workers).max(1);
        let inner = Arc::new(Inner {
            service,
            state: Mutex::new(SchedState {
                queue: DispatchQueue::default(),
                paused: config.start_paused,
                shutdown: false,
            }),
            ready: Condvar::new(),
            counters: Arc::new(SchedCounters::default()),
            tenants: TenantRegistry::default(),
            queue_capacity: config.queue_capacity,
            max_group: config.max_group.max(1),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("grain-sched-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("scheduler worker spawns")
            })
            .collect();
        Self { inner, workers }
    }

    /// Submits a selection for asynchronous execution.
    ///
    /// Returns immediately with a [`Ticket`]; accepts anything
    /// convertible into a [`ScheduledRequest`], so a bare
    /// [`SelectionRequest`] submits with default scheduling.
    ///
    /// # Errors
    /// * [`GrainError::SchedulerShutdown`] after [`Scheduler::shutdown`].
    /// * [`GrainError::DeadlineExceeded`] (stage
    ///   [`DeadlineStage::AtSubmit`]) when the deadline has already
    ///   passed.
    /// * [`GrainError::QueueFull`] when admission control refuses new
    ///   work (identical-to-pending submissions still coalesce in).
    ///
    /// Errors *of the selection itself* (unknown graph, invalid config,
    /// …) are not detected here — they resolve through the ticket, just
    /// like success.
    pub fn submit(&self, scheduled: impl Into<ScheduledRequest>) -> GrainResult<Ticket> {
        let ScheduledRequest {
            request,
            priority,
            deadline,
            on_deadline,
            tenant,
        } = scheduled.into();
        // Coalesce-key construction is O(candidate pool) and engine-key
        // formatting builds fingerprint strings; prepare both before
        // taking the state mutex so heavy submissions don't serialize
        // on it. The submit-time corpus epoch is stamped into the key so
        // selections racing an `apply_update` coalesce only within one
        // corpus version (unknown graphs keep epoch 0 and fail later
        // with the service's own typed error).
        let epoch = self.inner.service.epoch(&request.graph).unwrap_or(0);
        let prepared = queue::PreparedSubmission::new(request, epoch);
        // Resolve the tenant's counter block once; the waiter and ticket
        // carry it so every later bump is a bare atomic increment.
        let tenant_counters = tenant.as_ref().map(|t| self.inner.tenants.get(t));
        let (tx, rx) = bounded(1);
        let waiter = Waiter {
            tx,
            deadline,
            cancelled: Arc::new(AtomicBool::new(false)),
            on_deadline,
            tenant: tenant_counters.clone(),
            submitted_at: Instant::now(),
        };
        let admission = {
            let mut state = self.inner.lock_state();
            // Shutdown outranks every other rejection (the # Errors list
            // order): a dead deadline on a dead scheduler still says
            // "stop submitting", not "retry with a fresh deadline".
            if state.shutdown {
                return Err(GrainError::SchedulerShutdown);
            }
            if deadline.is_some_and(|d| d <= Instant::now()) {
                SchedCounters::bump(&self.inner.counters.rejected_deadline);
                if let Some(tenant) = &tenant_counters {
                    SchedCounters::bump(&tenant.rejected);
                }
                return Err(GrainError::DeadlineExceeded {
                    stage: DeadlineStage::AtSubmit,
                });
            }
            state.queue.admit(
                prepared,
                tenant.as_ref(),
                priority,
                waiter,
                self.inner.queue_capacity,
            )
        };
        match admission {
            Admission::Enqueued(handle) => {
                SchedCounters::bump(&self.inner.counters.enqueued);
                if let Some(tenant) = &tenant_counters {
                    SchedCounters::bump(&tenant.admitted);
                }
                self.inner.ready.notify_one();
                Ok(self.ticket(rx, handle, tenant_counters))
            }
            Admission::Coalesced(handle) => {
                SchedCounters::bump(&self.inner.counters.coalesced);
                if let Some(tenant) = &tenant_counters {
                    SchedCounters::bump(&tenant.coalesced);
                }
                Ok(self.ticket(rx, handle, tenant_counters))
            }
            Admission::RejectedFull => {
                SchedCounters::bump(&self.inner.counters.rejected_queue_full);
                if let Some(tenant) = &tenant_counters {
                    SchedCounters::bump(&tenant.rejected);
                }
                Err(GrainError::QueueFull {
                    capacity: self.inner.queue_capacity,
                })
            }
        }
    }

    fn ticket(
        &self,
        rx: Receiver<GrainResult<SelectionReport>>,
        handle: WaiterHandle,
        tenant: Option<Arc<TenantCounters>>,
    ) -> Ticket {
        Ticket {
            rx,
            cancel: Some(TicketCancel {
                state: handle.cancel,
                cancelled: handle.cancelled,
                counters: Arc::clone(&self.inner.counters),
                tenant,
            }),
        }
    }

    /// Stops dispatching new work (running groups finish; submissions
    /// keep queueing and coalescing). Idempotent.
    pub fn pause(&self) {
        self.inner.lock_state().paused = true;
    }

    /// Resumes dispatch after [`Scheduler::pause`] (or a paused start).
    pub fn resume(&self) {
        self.inner.lock_state().paused = false;
        self.inner.ready.notify_all();
    }

    /// True while dispatch is paused.
    pub fn is_paused(&self) -> bool {
        self.inner.lock_state().paused
    }

    /// Stops admission and wakes every worker to **drain**: queued work
    /// still runs (and queued-but-expired work is still shed), then the
    /// workers exit. Overrides a pause. Further submissions fail with
    /// [`GrainError::SchedulerShutdown`]. Idempotent; called by `Drop`.
    pub fn shutdown(&self) {
        self.inner.lock_state().shutdown = true;
        self.inner.ready.notify_all();
    }

    /// Distinct selections waiting in the queue (running work and
    /// coalesced waiters don't count — the same measure admission control
    /// uses).
    pub fn queue_depth(&self) -> usize {
        self.inner.lock_state().queue.depth()
    }

    /// True when nothing is queued or running.
    pub fn is_idle(&self) -> bool {
        self.inner.lock_state().queue.is_idle()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Lock-free snapshot of the scheduler counters.
    pub fn stats(&self) -> SchedulerStats {
        self.inner.counters.snapshot()
    }

    /// Sets `tenant`'s weighted-fair dispatch weight (clamped to ≥ 1).
    /// Under saturation, always-backlogged tenants complete work in
    /// proportion to their weights; see the module docs' multi-tenancy
    /// section. Also registers the tenant so it appears in
    /// [`Scheduler::tenant_stats`] before its first submission.
    pub fn set_tenant_weight(&self, tenant: &str, weight: u32) {
        let _ = self.inner.tenants.get(tenant);
        self.inner.lock_state().queue.set_weight(tenant, weight);
    }

    /// Per-tenant counter snapshots, sorted by tenant id. Tenants appear
    /// once they have been named — by a submission
    /// ([`ScheduledRequest::with_tenant`]) or a
    /// [`Scheduler::set_tenant_weight`] call. Tenant-less submissions are
    /// counted only in the global [`Scheduler::stats`].
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        let blocks = self.inner.tenants.all();
        let state = self.inner.lock_state();
        blocks
            .iter()
            .map(|block| block.snapshot(state.queue.weight_of(block.name())))
            .collect()
    }

    /// One tenant's counter snapshot, if the tenant has been named.
    pub fn tenant_stats_for(&self, tenant: &str) -> Option<TenantStats> {
        self.tenant_stats().into_iter().find(|s| s.tenant == tenant)
    }

    /// The service this scheduler dispatches into.
    pub fn service(&self) -> &Arc<GrainService> {
        &self.inner.service
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Resolves one waiter. The `delivered` bump happens *before* the send:
/// the instant the send lands the waiter may read the stats, so counting
/// afterwards would let it observe its own delivery missing. A failed
/// send means the ticket was dropped — roll the count back and record the
/// abandonment instead; workers never block on it.
fn deliver(
    inner: &Inner,
    tx: &crossbeam::channel::Sender<GrainResult<SelectionReport>>,
    payload: GrainResult<SelectionReport>,
) {
    SchedCounters::bump(&inner.counters.delivered);
    if tx.send(payload).is_err() {
        inner.counters.delivered.fetch_sub(1, Ordering::Relaxed);
        SchedCounters::bump(&inner.counters.abandoned);
    }
}

/// Delivers `result` to every waiter of a completed slot. The first
/// surviving waiter (the submission that created the slot, unless it
/// cancelled) receives the report as-is; coalesced joiners receive the
/// same outcomes with the pool event rewritten to
/// [`PoolEvent::CoalescedSelection`]. Cancelled waiters are skipped —
/// their tickets already resolved [`GrainError::Cancelled`] caller-side.
/// A partial (anytime-prefix) report is delivered only to
/// [`OnDeadline::Partial`] waiters; `Fail` waiters of the same slot
/// receive the typed deadline error instead.
fn fan_out(inner: &Inner, waiters: Vec<Waiter>, result: &GrainResult<SelectionReport>) {
    if matches!(result, Err(GrainError::SelectionPanicked { .. })) {
        SchedCounters::bump(&inner.counters.panicked);
    }
    let mut creator_seen = false;
    for waiter in waiters {
        if waiter.cancelled.load(Ordering::Acquire) {
            continue;
        }
        let payload = match result {
            Ok(report) => {
                let mut report = report.clone();
                if creator_seen {
                    report.pool_event = PoolEvent::CoalescedSelection;
                }
                if report.is_partial() && waiter.on_deadline != OnDeadline::Partial {
                    Err(GrainError::DeadlineExceeded {
                        stage: DeadlineStage::MidSelection,
                    })
                } else {
                    if report.is_partial() {
                        SchedCounters::bump(&inner.counters.partial);
                    }
                    Ok(report)
                }
            }
            Err(e) => Err(e.clone()),
        };
        creator_seen = true;
        if let Some(tenant) = &waiter.tenant {
            match &payload {
                Ok(report) => {
                    SchedCounters::bump(&tenant.completed);
                    if report.is_partial() {
                        SchedCounters::bump(&tenant.partial);
                    }
                    tenant.record_service_time(waiter.submitted_at.elapsed());
                }
                Err(_) => SchedCounters::bump(&tenant.failed),
            }
        }
        deliver(inner, &waiter.tx, payload);
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Claim work under the state lock; block on the condvar while
        // paused or idle.
        let dispatch = {
            let mut state = inner.lock_state();
            loop {
                if !state.paused || state.shutdown {
                    let dispatch = state.queue.pop_dispatch(Instant::now(), inner.max_group);
                    if !dispatch.is_empty() {
                        break Some(dispatch);
                    }
                    if state.shutdown {
                        break None;
                    }
                }
                state = inner
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(dispatch) = dispatch else {
            return; // shutdown with a drained queue
        };

        // Load-shed: resolve expired waiters without running anything.
        for waiter in dispatch.shed {
            SchedCounters::bump(&inner.counters.shed_deadline);
            if let Some(tenant) = &waiter.tenant {
                SchedCounters::bump(&tenant.shed);
            }
            deliver(
                inner,
                &waiter.tx,
                Err(GrainError::DeadlineExceeded {
                    stage: DeadlineStage::InQueue,
                }),
            );
        }
        if dispatch.group.is_empty() {
            continue;
        }

        // Execute the group through the service's batched warm-engine
        // path: every request shares one engine key, so submit_batch_with
        // runs them back to back on the one warm engine, bit-identical to
        // serial `select` calls, each under its slot's shared cancel
        // token and effective degradation policy, each panic-isolated.
        let mut claims = Vec::with_capacity(dispatch.group.len());
        let mut items: Vec<(SelectionRequest, CancelToken, OnDeadline)> =
            Vec::with_capacity(dispatch.group.len());
        for entry in dispatch.group {
            items.push((
                entry.request,
                entry.cancel.token().clone(),
                entry.on_deadline,
            ));
            claims.push((entry.key, entry.cancel));
        }
        fault::point("scheduler.dispatch", None);
        let results = catch_unwind(AssertUnwindSafe(|| {
            inner.service.submit_batch_with(&items, 0)
        }));
        SchedCounters::bump(&inner.counters.dispatch_groups);
        match results {
            Ok(results) => {
                for ((key, cancel), result) in claims.iter().zip(results) {
                    // `selections` counts work actually executed; a typed
                    // per-request error (unknown graph, bad config) means
                    // no selection ran.
                    if result.is_ok() {
                        SchedCounters::bump(&inner.counters.selections);
                    }
                    // Take the slot under the lock, deliver outside it: the
                    // fan-out clones the report once per waiter and must
                    // not stall submissions or other workers.
                    let slot = inner.lock_state().queue.complete(key, cancel);
                    if let Some(slot) = slot {
                        fan_out(inner, slot.waiters, &result);
                    }
                }
            }
            Err(_) => {
                // Per-request panics are already isolated inside
                // `submit_batch_with`; reaching here means the batch
                // machinery itself panicked. Waiters must not hang on it:
                // fail the whole group typed (same contract as the pool's
                // abandoned-build latch) and keep the worker alive for
                // the rest of the queue.
                for ((key, cancel), (request, _, _)) in claims.iter().zip(&items) {
                    let slot = inner.lock_state().queue.complete(key, cancel);
                    if let Some(slot) = slot {
                        fan_out(
                            inner,
                            slot.waiters,
                            &Err(GrainError::EngineBuildAbandoned {
                                graph: request.graph.clone(),
                            }),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GrainConfig;
    use crate::service::Budget;
    use grain_graph::generators;
    use grain_linalg::DenseMatrix;

    fn service() -> Arc<GrainService> {
        let service = Arc::new(GrainService::new());
        let graph = generators::erdos_renyi_gnm(120, 360, 3);
        let mut features = DenseMatrix::zeros(120, 6);
        for v in 0..120 {
            for (j, value) in features.row_mut(v).iter_mut().enumerate() {
                *value = ((v * 31 + j * 7) % 13) as f32 * 0.1;
            }
        }
        service.register_graph("g", graph, features).unwrap();
        service
    }

    fn request(budget: usize) -> SelectionRequest {
        SelectionRequest::new("g", GrainConfig::ball_d(), Budget::Fixed(budget))
    }

    #[test]
    fn scheduler_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Scheduler>();
        assert_send_sync::<Ticket>();
    }

    #[test]
    fn submit_resolves_to_the_service_answer() {
        let service = service();
        let scheduler = Scheduler::new(Arc::clone(&service), SchedulerConfig::default());
        let ticket = scheduler.submit(request(6)).unwrap();
        let report = ticket.wait().unwrap();
        assert_eq!(report.outcome().selected.len(), 6);
        assert_eq!(
            report.outcome().selected,
            service.select(&request(6)).unwrap().outcome().selected
        );
    }

    #[test]
    fn selection_errors_resolve_through_the_ticket() {
        let scheduler = Scheduler::new(service(), SchedulerConfig::default());
        let missing = SelectionRequest::new("nope", GrainConfig::ball_d(), Budget::Fixed(3));
        let ticket = scheduler.submit(missing).unwrap();
        assert_eq!(
            ticket.wait().unwrap_err(),
            GrainError::UnknownGraph {
                graph: "nope".into()
            }
        );
    }

    #[test]
    fn shutdown_rejects_new_submissions_and_drains_queued_work() {
        let scheduler = Scheduler::new(
            service(),
            SchedulerConfig {
                start_paused: true,
                ..SchedulerConfig::default()
            },
        );
        let ticket = scheduler.submit(request(5)).unwrap();
        scheduler.shutdown();
        assert_eq!(
            scheduler.submit(request(5)).unwrap_err(),
            GrainError::SchedulerShutdown
        );
        // Shutdown drains: the queued request still completes.
        assert_eq!(ticket.wait().unwrap().outcome().selected.len(), 5);
        // Shutdown outranks deadline rejection: an already-expired
        // submission on a dead scheduler says "stop submitting".
        let dead = ScheduledRequest::new(request(5))
            .with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(
            scheduler.submit(dead).unwrap_err(),
            GrainError::SchedulerShutdown
        );
    }

    #[test]
    fn try_wait_returns_the_ticket_until_resolution() {
        let scheduler = Scheduler::new(
            service(),
            SchedulerConfig {
                start_paused: true,
                ..SchedulerConfig::default()
            },
        );
        let ticket = scheduler.submit(request(4)).unwrap();
        let ticket = match ticket.try_wait() {
            Err(ticket) => ticket, // still queued: paused scheduler
            Ok(result) => panic!("resolved while paused: {result:?}"),
        };
        scheduler.resume();
        let report = ticket.wait().unwrap();
        assert_eq!(report.outcome().selected.len(), 4);
    }

    #[test]
    fn dropping_the_scheduler_fails_unresolved_tickets_typed() {
        let scheduler = Scheduler::new(service(), SchedulerConfig::default());
        scheduler.shutdown();
        // Workers have exited (or will); a ticket whose channel sender is
        // dropped resolves SchedulerShutdown instead of hanging.
        let (tx, rx) = bounded::<GrainResult<SelectionReport>>(1);
        drop(tx);
        let orphan = Ticket { rx, cancel: None };
        assert_eq!(orphan.wait().unwrap_err(), GrainError::SchedulerShutdown);
    }

    #[test]
    fn cancelling_a_queued_ticket_resolves_it_and_skips_the_run() {
        let scheduler = Scheduler::new(
            service(),
            SchedulerConfig {
                start_paused: true,
                ..SchedulerConfig::default()
            },
        );
        let ticket = scheduler.submit(request(6)).unwrap();
        ticket.cancel();
        ticket.cancel(); // idempotent: counted once
        assert_eq!(ticket.wait().unwrap_err(), GrainError::Cancelled);
        scheduler.resume();
        // The fully-cancelled slot is discarded at dispatch, never run.
        while !scheduler.is_idle() {
            std::thread::yield_now();
        }
        let stats = scheduler.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.selections, 0, "a fully-cancelled slot never runs");
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn cancelling_one_coalesced_waiter_detaches_only_that_waiter() {
        let scheduler = Scheduler::new(
            service(),
            SchedulerConfig {
                start_paused: true,
                ..SchedulerConfig::default()
            },
        );
        let keeper = scheduler.submit(request(6)).unwrap();
        let quitter = scheduler.submit(request(6)).unwrap();
        quitter.cancel();
        scheduler.resume();
        let report = keeper.wait().unwrap();
        assert_eq!(report.outcome().selected.len(), 6);
        assert_eq!(quitter.wait().unwrap_err(), GrainError::Cancelled);
        let stats = scheduler.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.selections, 1, "the kept waiter's run completed");
        assert_eq!(stats.delivered, 1, "only the live waiter was delivered to");
    }

    #[test]
    fn tenant_stats_track_admissions_completions_and_cancels() {
        let scheduler = Scheduler::new(
            service(),
            SchedulerConfig {
                start_paused: true,
                ..SchedulerConfig::default()
            },
        );
        scheduler.set_tenant_weight("gold", 10);
        let keeper = scheduler
            .submit(ScheduledRequest::new(request(5)).with_tenant("gold"))
            .unwrap();
        let joiner = scheduler
            .submit(ScheduledRequest::new(request(5)).with_tenant("gold"))
            .unwrap();
        let bronze = scheduler
            .submit(ScheduledRequest::new(request(6)).with_tenant("bronze"))
            .unwrap();
        let quitter = scheduler
            .submit(ScheduledRequest::new(request(7)).with_tenant("bronze"))
            .unwrap();
        quitter.cancel();
        scheduler.resume();
        assert_eq!(keeper.wait().unwrap().outcome().selected.len(), 5);
        assert_eq!(joiner.wait().unwrap().outcome().selected.len(), 5);
        assert_eq!(bronze.wait().unwrap().outcome().selected.len(), 6);
        let gold = scheduler.tenant_stats_for("gold").unwrap();
        assert_eq!(gold.weight, 10);
        assert_eq!(gold.admitted, 1);
        assert_eq!(gold.coalesced, 1);
        assert_eq!(gold.completed, 2);
        assert_eq!(gold.served, 2);
        assert!(gold.p50 > Duration::ZERO);
        assert!(gold.p99 >= gold.p50);
        assert!(gold.max >= Duration::ZERO);
        let bronze = scheduler.tenant_stats_for("bronze").unwrap();
        assert_eq!(bronze.weight, 1, "unset weights default to 1");
        assert_eq!(bronze.admitted, 2);
        assert_eq!(bronze.completed, 1);
        assert_eq!(bronze.cancelled, 1);
        // Tenant-less submissions never appear in tenant stats.
        assert_eq!(scheduler.tenant_stats().len(), 2);
        assert!(scheduler.tenant_stats_for("ghost").is_none());
    }

    #[test]
    fn cancel_handle_cancels_from_outside_the_ticket() {
        let scheduler = Scheduler::new(
            service(),
            SchedulerConfig {
                start_paused: true,
                ..SchedulerConfig::default()
            },
        );
        let ticket = scheduler.submit(request(6)).unwrap();
        let handle = ticket.cancel_handle();
        handle.clone().cancel();
        handle.cancel(); // idempotent across clones: counted once
        assert_eq!(ticket.wait().unwrap_err(), GrainError::Cancelled);
        assert_eq!(scheduler.stats().cancelled, 1);
    }

    #[test]
    fn wait_timeout_hands_the_ticket_back_until_resolution() {
        let scheduler = Scheduler::new(
            service(),
            SchedulerConfig {
                start_paused: true,
                ..SchedulerConfig::default()
            },
        );
        let ticket = scheduler.submit(request(4)).unwrap();
        let ticket = ticket
            .wait_timeout(Duration::from_millis(5))
            .expect_err("paused: the timeout elapses and the ticket returns");
        scheduler.resume();
        // Generous timeout: resolves well within it.
        let report = ticket
            .wait_timeout(Duration::from_secs(60))
            .expect("resolves before the timeout")
            .unwrap();
        assert_eq!(report.outcome().selected.len(), 4);
    }
}

//! Start-time fair queuing (SFQ) across tenants — the pure arithmetic
//! core of the scheduler's weighted-fair dispatch.
//!
//! Each tenant is a *flow* with a weight and a **virtual finish tag**.
//! Serving one unit of work from a flow advances its tag by
//! `COST / weight` in fixed-point virtual time; the dispatcher always
//! serves the backlogged flow with the smallest tag, so over any
//! saturated interval the completed-work ratio between two always-backlogged
//! tenants converges to their weight ratio. A flow that goes idle and
//! returns re-enters at the current virtual time (it neither banks
//! credit while idle nor owes debt for its absence), which is what makes
//! the discipline starvation-free: a weight-1 flow's tag is overtaken by
//! at most `Σ weights` services before it is the minimum again.
//!
//! The struct is deliberately free of clocks, threads, and queues: every
//! method is a pure state transition, so the fairness property tests
//! drive it (and the token bucket) with synthetic sequences — no sleeps,
//! no wall time, fully deterministic. The scheduler's
//! [`DispatchQueue`](super::queue) embeds one `FairShare` and consults it
//! between the per-tenant urgency heaps; see the module docs there for
//! how fairness composes with priority/EDF ordering.

use std::collections::HashMap;
use std::sync::Arc;

/// Fixed-point scale of one unit of virtual-time cost: serving one
/// selection advances the flow's finish tag by `FAIR_COST_SCALE / weight`.
/// Integer division truncates, so a weight that does not divide the scale
/// drifts by less than one part in 2³² per service — far below anything a
/// fairness window can observe.
pub const FAIR_COST_SCALE: u128 = 1 << 32;

#[derive(Debug)]
struct FlowShare {
    weight: u32,
    /// Virtual finish tag of the flow's most recent service; meaningful
    /// relative to [`FairShare::virtual_time`].
    vfinish: u128,
}

/// Weighted start-time fair queuing state over named flows (tenants).
///
/// Unknown flows have weight 1 and a finish tag equal to the current
/// virtual time, so a scheduler that never names tenants collapses to a
/// single default flow and fairness is a no-op — exactly the pre-tenant
/// behavior.
///
/// ```
/// use grain_core::scheduler::FairShare;
///
/// let mut fair = FairShare::default();
/// fair.set_weight("gold", 10);
/// fair.set_weight("bronze", 1);
/// let mut served = Vec::new();
/// for _ in 0..22 {
///     let winner = fair.pick(["gold", "bronze"]).unwrap();
///     fair.charge(winner, 1);
///     served.push(winner);
/// }
/// let gold = served.iter().filter(|t| **t == "gold").count();
/// assert_eq!(gold, 20, "10:1 weights serve 10:1 work under saturation");
/// ```
#[derive(Debug, Default)]
pub struct FairShare {
    flows: HashMap<Arc<str>, FlowShare>,
    virtual_now: u128,
}

impl FairShare {
    /// Sets a flow's weight (clamped to at least 1). Takes effect on the
    /// flow's next [`FairShare::charge`]; past tags are not rewritten.
    pub fn set_weight(&mut self, tenant: &str, weight: u32) {
        let weight = weight.max(1);
        match self.flows.get_mut(tenant) {
            Some(flow) => flow.weight = weight,
            None => {
                self.flows.insert(
                    Arc::from(tenant),
                    FlowShare {
                        weight,
                        vfinish: self.virtual_now,
                    },
                );
            }
        }
    }

    /// The flow's weight (1 when never configured).
    #[must_use]
    pub fn weight(&self, tenant: &str) -> u32 {
        self.flows.get(tenant).map_or(1, |f| f.weight)
    }

    /// The current virtual time: the start tag of the most recent service.
    #[must_use]
    pub fn virtual_time(&self) -> u128 {
        self.virtual_now
    }

    /// The flow's *effective* finish tag — its stored tag clamped up to
    /// the current virtual time. The clamp is the SFQ re-entry rule: an
    /// idle flow rejoins at virtual now instead of replaying banked
    /// credit from its idle period.
    #[must_use]
    pub fn effective_vfinish(&self, tenant: &str) -> u128 {
        self.flows
            .get(tenant)
            .map_or(self.virtual_now, |f| f.vfinish.max(self.virtual_now))
    }

    /// Picks the backlogged flow to serve next: minimum effective finish
    /// tag, ties broken by name so the choice is deterministic for any
    /// iteration order of `backlogged`.
    #[must_use]
    pub fn pick<'a, I>(&self, backlogged: I) -> Option<&'a str>
    where
        I: IntoIterator<Item = &'a str>,
    {
        backlogged
            .into_iter()
            .min_by_key(|tenant| (self.effective_vfinish(tenant), *tenant))
    }

    /// Records one service of `cost` work units against `tenant`,
    /// advancing its finish tag by `cost × FAIR_COST_SCALE / weight` from
    /// its effective tag and moving virtual time up to the service's
    /// start tag.
    pub fn charge(&mut self, tenant: &str, cost: u64) {
        let start = self.effective_vfinish(tenant);
        let flow = match self.flows.get_mut(tenant) {
            Some(flow) => flow,
            None => {
                self.flows.insert(
                    Arc::from(tenant),
                    FlowShare {
                        weight: 1,
                        vfinish: self.virtual_now,
                    },
                );
                self.flows.get_mut(tenant).expect("just inserted")
            }
        };
        flow.vfinish = start + u128::from(cost) * FAIR_COST_SCALE / u128::from(flow.weight.max(1));
        self.virtual_now = start;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_alternate() {
        let mut fair = FairShare::default();
        fair.set_weight("a", 1);
        fair.set_weight("b", 1);
        let mut served = Vec::new();
        for _ in 0..6 {
            let w = fair.pick(["a", "b"]).unwrap();
            fair.charge(w, 1);
            served.push(w);
        }
        assert_eq!(served, vec!["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn idle_flow_reenters_at_virtual_now_without_banked_credit() {
        let mut fair = FairShare::default();
        fair.set_weight("busy", 1);
        fair.set_weight("idle", 1);
        // `idle` is absent for a long stretch…
        for _ in 0..100 {
            fair.charge("busy", 1);
        }
        // …and on return it does NOT get 100 services of catch-up: after
        // one service its tag is ahead of `busy`'s again.
        let w = fair.pick(["busy", "idle"]).unwrap();
        assert_eq!(w, "idle");
        fair.charge("idle", 1);
        assert_eq!(fair.pick(["busy", "idle"]).unwrap(), "busy");
    }

    #[test]
    fn unknown_flows_behave_as_weight_one() {
        let fair = FairShare::default();
        assert_eq!(fair.weight("ghost"), 1);
        assert_eq!(fair.effective_vfinish("ghost"), fair.virtual_time());
    }
}

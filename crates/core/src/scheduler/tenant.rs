//! Per-tenant scheduler accounting: lock-free counters plus a log-scale
//! service-time histogram, snapshotted as [`TenantStats`].
//!
//! The global [`SchedulerStats`](super::SchedulerStats) stays a flat
//! `Copy` struct; tenant-resolved accounting lives here instead. Each
//! named tenant gets one [`TenantCounters`] block, resolved once at
//! submission and carried by the waiter (and its ticket), so the hot
//! paths — admission, shedding, fan-out, cancel — bump atomics without a
//! map lookup or a lock. Requests submitted without a tenant are counted
//! only in the global stats, which keeps the pre-tenant behavior (and
//! every pre-tenant test) unchanged.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Power-of-two bucketed latency histogram: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds. Recording is a single relaxed atomic
/// increment; quantiles are read from a snapshot and answer with the
/// containing bucket's upper bound (≤ 2× coarse), clamped to the largest
/// sample seen. Serving dashboards want cheap, monotone, allocation-free
/// percentiles; exact percentiles for benchmarking are computed by the
/// load generator from raw samples instead.
struct LatencyHistogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    max_ns: AtomicU64,
}

impl LatencyHistogram {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let bucket = ns.checked_ilog2().unwrap_or(0) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// The value at or below which a `q` fraction of samples fall,
    /// reported as the containing bucket's upper bound.
    fn quantile(&self, q: f64) -> Duration {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return Duration::ZERO;
        }
        let max_ns = self.max_ns.load(Ordering::Relaxed);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Duration::from_nanos(upper.min(max_ns));
            }
        }
        Duration::from_nanos(max_ns)
    }
}

/// One tenant's atomic counter block. Shared (`Arc`) between the
/// registry, every waiter the tenant has in flight, and their tickets.
pub(super) struct TenantCounters {
    name: Arc<str>,
    /// Submissions admitted as new queued work.
    pub(super) admitted: AtomicUsize,
    /// Submissions that attached to an identical in-flight selection.
    pub(super) coalesced: AtomicUsize,
    /// Submissions refused at admission (queue full or expired deadline).
    pub(super) rejected: AtomicUsize,
    /// Waiters shed at dequeue because their deadline passed in-queue.
    pub(super) shed: AtomicUsize,
    /// Tickets explicitly cancelled.
    pub(super) cancelled: AtomicUsize,
    /// Reports delivered `Ok` (partial prefixes included).
    pub(super) completed: AtomicUsize,
    /// Of `completed`, anytime-prefix reports after a mid-run deadline.
    pub(super) partial: AtomicUsize,
    /// Typed errors delivered through a ticket.
    pub(super) failed: AtomicUsize,
    /// Submit→delivery latency of `Ok` deliveries.
    service_time: LatencyHistogram,
}

impl TenantCounters {
    fn new(name: Arc<str>) -> Self {
        Self {
            name,
            admitted: AtomicUsize::new(0),
            coalesced: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            cancelled: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            partial: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            service_time: LatencyHistogram::new(),
        }
    }

    pub(super) fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// Records one successful delivery's submit→delivery latency.
    pub(super) fn record_service_time(&self, elapsed: Duration) {
        self.service_time.record(elapsed);
    }

    pub(super) fn snapshot(&self, weight: u32) -> TenantStats {
        TenantStats {
            tenant: self.name.to_string(),
            weight,
            admitted: self.admitted.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            partial: self.partial.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            served: self.service_time.count.load(Ordering::Relaxed),
            p50: self.service_time.quantile(0.50),
            p90: self.service_time.quantile(0.90),
            p99: self.service_time.quantile(0.99),
            max: Duration::from_nanos(self.service_time.max_ns.load(Ordering::Relaxed)),
        }
    }
}

/// Registry of tenant counter blocks, keyed by tenant id. Counter blocks
/// are created on first sight and never removed (tenant cardinality is
/// operator-bounded: it is the serving edge's configured tenant table).
#[derive(Default)]
pub(super) struct TenantRegistry {
    map: Mutex<HashMap<Arc<str>, Arc<TenantCounters>>>,
}

impl TenantRegistry {
    /// The tenant's counter block, created on first use.
    pub(super) fn get(&self, tenant: &str) -> Arc<TenantCounters> {
        let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(counters) = map.get(tenant) {
            return Arc::clone(counters);
        }
        let name: Arc<str> = Arc::from(tenant);
        let counters = Arc::new(TenantCounters::new(Arc::clone(&name)));
        map.insert(name, Arc::clone(&counters));
        counters
    }

    /// Every known tenant's counter block, sorted by tenant id.
    pub(super) fn all(&self) -> Vec<Arc<TenantCounters>> {
        let map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        let mut all: Vec<_> = map.values().map(Arc::clone).collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }
}

/// Point-in-time snapshot of one tenant's scheduler accounting; see
/// [`Scheduler::tenant_stats`](super::Scheduler::tenant_stats).
///
/// The latency quantiles come from a power-of-two bucketed histogram, so
/// each is an upper bound within 2× of the true quantile (clamped to the
/// largest observed sample); `served` is the sample count behind them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant id (as authenticated by the edge / named at submission).
    pub tenant: String,
    /// Weighted-fair dispatch weight currently configured for the tenant.
    pub weight: u32,
    /// Submissions admitted as new queued work.
    pub admitted: usize,
    /// Submissions that attached to an identical in-flight selection.
    pub coalesced: usize,
    /// Submissions refused at admission (queue full or expired deadline).
    pub rejected: usize,
    /// Waiters shed at dequeue because their deadline passed in-queue.
    pub shed: usize,
    /// Tickets explicitly cancelled (client disconnects included).
    pub cancelled: usize,
    /// Reports delivered `Ok` (partial prefixes included).
    pub completed: usize,
    /// Of `completed`, anytime-prefix reports after a mid-run deadline.
    pub partial: usize,
    /// Typed errors delivered through a ticket.
    pub failed: usize,
    /// Samples behind the latency quantiles (`Ok` deliveries).
    pub served: u64,
    /// Median submit→delivery latency (bucketed upper bound).
    pub p50: Duration,
    /// 90th-percentile submit→delivery latency (bucketed upper bound).
    pub p90: Duration,
    /// 99th-percentile submit→delivery latency (bucketed upper bound).
    pub p99: Duration,
    /// Largest observed submit→delivery latency.
    pub max: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let h = LatencyHistogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // Bucketed upper bounds: within 2× above the exact quantile and
        // never above the max sample.
        assert!(p50 >= Duration::from_millis(50), "p50 {p50:?}");
        assert!(p50 <= Duration::from_millis(100));
        assert!(p99 >= Duration::from_millis(99), "p99 {p99:?}");
        assert!(p99 <= Duration::from_millis(100));
        assert_eq!(h.quantile(1.0), Duration::from_millis(100));
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn registry_returns_one_block_per_tenant() {
        let reg = TenantRegistry::default();
        let a1 = reg.get("a");
        let a2 = reg.get("a");
        let b = reg.get("b");
        assert!(Arc::ptr_eq(&a1, &a2));
        assert!(!Arc::ptr_eq(&a1, &b));
        let names: Vec<_> = reg.all().iter().map(|c| c.name.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}

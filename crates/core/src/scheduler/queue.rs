//! The scheduler's dispatch queue: a pure, single-threaded data structure
//! (the [`super::Scheduler`] wraps it in one mutex) combining
//!
//! * a **coalescing map** — one slot per distinct in-flight selection,
//!   keyed by [`CoalesceKey`]; identical submissions attach as extra
//!   waiters instead of new work,
//! * an **urgency heap** — priority first, earliest-deadline-first within
//!   a priority, FIFO as the tiebreak; entries are invalidated lazily via
//!   per-slot stamps so urgency upgrades never rebuild the heap, and
//! * **deadline triage** — expired waiters are shed at dequeue, before
//!   any selection work is spent on them.
//!
//! Dispatch is *group-at-a-time*: once the most urgent slot is chosen, up
//! to `max_group - 1` further queued slots with the same **engine key**
//! `(graph, artifact fingerprint)` ride along (in submission order), so a
//! worker hands [`crate::GrainService::submit_batch`] work that lands on
//! one warm engine. This deliberately relaxes strict global EDF — a
//! same-engine sibling may overtake a more urgent foreign-key slot — but
//! only within one bounded group, and it is exactly the trade that keeps
//! artifact caches hot under mixed traffic.
//!
//! # Tenant-weighted fairness
//!
//! Slots are partitioned into per-tenant **flows** (submissions without a
//! tenant share one anonymous flow), each with its own urgency heap, and
//! a [`FairShare`] start-time-fair-queuing state arbitrates *between*
//! flows. Head selection is lexicographic:
//!
//! 1. **priority** — the highest head priority anywhere still dispatches
//!    first (priority stays a global urgency escape hatch, trusted the
//!    same way it always was);
//! 2. **weighted fairness** — among flows whose heads tie on priority,
//!    the flow with the smallest effective virtual-finish tag wins, so
//!    saturated tenants complete work in proportion to their weights and
//!    a weight-1 tenant is never starved;
//! 3. **urgency** — within a flow (and as the final cross-flow tiebreak)
//!    the existing EDF-then-FIFO order applies unchanged.
//!
//! Every dispatched slot charges one cost unit to its own flow — a
//! same-engine ride-along from another tenant is still charged to that
//! tenant, so engine-key batching never becomes a fairness loophole.
//! With no tenants configured there is exactly one flow and the order
//! reduces to the original priority/EDF/FIFO.

use super::fair::FairShare;
use super::tenant::TenantCounters;
use crate::cancel::{CancelCause, CancelToken, OnDeadline};
use crate::error::GrainResult;
use crate::service::{Budget, SelectionReport, SelectionRequest};
use crossbeam::channel::Sender;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Instant;

/// One party waiting on a queued or in-flight selection: the sending half
/// of its [`super::Ticket`] plus its own deadline and degradation policy
/// (waiters coalesced onto one slot keep individual deadlines and
/// policies; triage and fan-out are per waiter).
pub(super) struct Waiter {
    pub(super) tx: Sender<GrainResult<SelectionReport>>,
    pub(super) deadline: Option<Instant>,
    /// Set by [`super::Ticket::cancel`]; triage and fan-out skip
    /// cancelled waiters (the ticket already resolved itself).
    pub(super) cancelled: Arc<AtomicBool>,
    /// What this waiter receives when the run is cancelled by deadline.
    pub(super) on_deadline: OnDeadline,
    /// This waiter's tenant counter block (`None` for tenant-less
    /// submissions). Resolved once at submission so shedding and fan-out
    /// bump per-tenant counters without a registry lookup.
    pub(super) tenant: Option<Arc<TenantCounters>>,
    /// When the waiter was admitted; fan-out records the submit→delivery
    /// latency into the tenant's service-time histogram.
    pub(super) submitted_at: Instant,
}

/// Refcounted cancellation state shared by a slot's waiters and their
/// tickets. Dropping a ticket abandons its waiter **without** cancelling
/// (coalesced siblings may depend on the run); only an explicit
/// [`super::Ticket::cancel`] detaches a waiter, and the shared
/// [`CancelToken`] trips only when the *last* live waiter detaches — so
/// one impatient caller can never kill a result someone else is still
/// waiting for.
pub(super) struct CancelState {
    /// Waiters that have not cancelled. Joins increment, explicit
    /// cancels decrement; abandoned (dropped) tickets never decrement.
    live: AtomicUsize,
    token: CancelToken,
}

impl CancelState {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            live: AtomicUsize::new(1),
            token: CancelToken::new(),
        })
    }

    /// The token the dispatch threads into the service and engine.
    pub(super) fn token(&self) -> &CancelToken {
        &self.token
    }

    fn join(&self) {
        self.live.fetch_add(1, AtomicOrdering::Relaxed);
    }

    /// Detaches one waiter; the last detachment trips the token (caller
    /// cause), stopping the run at its next cancellation checkpoint.
    pub(super) fn cancel_one(&self) {
        if self.live.fetch_sub(1, AtomicOrdering::AcqRel) == 1 {
            self.token.cancel();
        }
    }
}

/// The identity under which two submissions are "the same selection":
/// graph, the full [`crate::GrainConfig::selection_fingerprint`] of the
/// effective config, the budget, the candidate pool, and the bookkeeping
/// seed (the seed is echoed into the report, so submissions differing
/// only in seed must not share one report). The candidate pool is
/// compared by content (shared behind an `Arc` so key clones stay
/// cheap), never by hash alone — coalescing must never conflate two
/// requests that could answer differently. Construction is O(pool)
/// (fingerprint formatting + one pool copy + one pool hash), so
/// [`super::Scheduler::submit`] builds the key *before* taking the
/// scheduler's state mutex; the pool hash is cached in the key so map
/// operations under the mutex never re-hash the slice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(super) struct CoalesceKey {
    graph: String,
    selection: String,
    budget: String,
    candidates: Option<Arc<[u32]>>,
    /// Content hash of `candidates`, computed once at construction.
    /// Equal pools always produce the equal cached hash, so the manual
    /// `Hash` impl below stays consistent with the derived `Eq`.
    candidates_hash: u64,
    seed: u64,
    /// The corpus epoch observed at submission. Selections racing an
    /// [`apply_update`](crate::service::GrainService::apply_update) only
    /// coalesce within one corpus version: a waiter never receives a
    /// result computed on a snapshot newer (or older) than the one it
    /// submitted against.
    epoch: u64,
}

impl Hash for CoalesceKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.graph.hash(state);
        self.selection.hash(state);
        self.budget.hash(state);
        self.candidates_hash.hash(state);
        self.seed.hash(state);
        self.epoch.hash(state);
    }
}

impl CoalesceKey {
    pub(super) fn of(request: &SelectionRequest, epoch: u64) -> Self {
        let budget = match &request.budget {
            Budget::Fixed(n) => format!("fix:{n}"),
            Budget::Fraction(f) => format!("frac:{:016x}", f.to_bits()),
            Budget::Sweep(budgets) => format!("sweep:{budgets:?}"),
        };
        let mut hasher = DefaultHasher::new();
        request.candidates.hash(&mut hasher);
        Self {
            graph: request.graph.clone(),
            selection: request.effective_config().selection_fingerprint(),
            budget,
            candidates: request.candidates.as_deref().map(Arc::from),
            candidates_hash: hasher.finish(),
            seed: request.seed,
            epoch,
        }
    }
}

/// A submission prepared *outside* the scheduler's state mutex: the
/// coalesce key, the owned request, and its engine key. Both derived
/// values cost O(candidate pool) / fingerprint formatting, which is why
/// they are computed before locking — [`DispatchQueue::admit`] then does
/// only map/heap work under the mutex.
pub(super) struct PreparedSubmission {
    pub(super) key: CoalesceKey,
    pub(super) request: SelectionRequest,
    pub(super) engine_key: (String, String),
}

impl PreparedSubmission {
    pub(super) fn new(request: SelectionRequest, epoch: u64) -> Self {
        Self {
            key: CoalesceKey::of(&request, epoch),
            engine_key: request.engine_key(),
            request,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Waiting in the queue; owns a live heap entry (`stamp`).
    Queued,
    /// Claimed by a worker; joins still attach until
    /// [`DispatchQueue::complete`] removes the slot.
    Running,
}

/// One distinct pending selection and everyone waiting on it.
pub(super) struct Slot {
    /// Owned while `Queued`; moved (not cloned) into the [`Dispatch`]
    /// when a worker claims the slot.
    request: Option<SelectionRequest>,
    pub(super) engine_key: (String, String),
    /// The flow this slot is queued (and fairness-charged) under: its
    /// creator's tenant id, or the empty anonymous flow. Joiners from
    /// other tenants coalesce in for free — duplicate suppression is a
    /// shared win and charging it to anyone would double-count the work.
    tenant: Arc<str>,
    pub(super) waiters: Vec<Waiter>,
    /// Shared with every waiter's ticket; see [`CancelState`].
    cancel: Arc<CancelState>,
    state: SlotState,
    /// Scheduling urgency: max priority over waiters.
    priority: u8,
    /// Scheduling urgency: earliest concrete deadline over waiters
    /// (`None` only while every waiter is deadline-free).
    deadline: Option<Instant>,
    /// Matches the one live heap entry; stale entries are skipped at pop.
    stamp: u64,
    /// Global submission order, the FIFO tiebreak.
    seq: u64,
}

/// A heap entry referencing a slot at a particular urgency stamp.
struct HeapEntry {
    priority: u8,
    deadline: Option<Instant>,
    seq: u64,
    stamp: u64,
    key: CoalesceKey,
}

impl HeapEntry {
    /// Max-heap order = dispatch urgency: higher priority, then earlier
    /// deadline (a concrete deadline beats none), then earlier submission.
    fn urgency(&self, other: &Self) -> Ordering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| match (self.deadline, other.deadline) {
                (Some(a), Some(b)) => b.cmp(&a),
                (Some(_), None) => Ordering::Greater,
                (None, Some(_)) => Ordering::Less,
                (None, None) => Ordering::Equal,
            })
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.urgency(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.urgency(other)
    }
}

/// The cancellation handles an admitted waiter's [`super::Ticket`]
/// needs: the slot's shared refcounted state plus this waiter's own
/// cancelled flag (read by triage and fan-out).
pub(super) struct WaiterHandle {
    pub(super) cancel: Arc<CancelState>,
    pub(super) cancelled: Arc<AtomicBool>,
}

/// What [`DispatchQueue::admit`] did with a submission.
pub(super) enum Admission {
    /// A new work item was queued.
    Enqueued(WaiterHandle),
    /// The submission attached to an identical queued/running selection;
    /// no new work exists.
    Coalesced(WaiterHandle),
    /// The queue is at capacity; the waiter was dropped unserved.
    RejectedFull,
}

/// One claimed slot inside a [`Dispatch`] group.
pub(super) struct DispatchEntry {
    pub(super) key: CoalesceKey,
    pub(super) request: SelectionRequest,
    /// The slot's shared cancel state; its token is deadline-armed at
    /// claim time (see [`DispatchQueue::pop_dispatch`]).
    pub(super) cancel: Arc<CancelState>,
    /// Effective degradation policy for the run: `Partial` if any live
    /// waiter asked for it (a prefix beats an error for them; `Fail`
    /// waiters of the same slot still receive the typed error at
    /// fan-out).
    pub(super) on_deadline: OnDeadline,
}

/// One unit of work handed to a scheduler worker.
pub(super) struct Dispatch {
    /// Slots to execute, all sharing one engine key, most urgent first
    /// then submission order. Empty when the pass only shed dead work.
    pub(super) group: Vec<DispatchEntry>,
    /// Waiters whose deadline expired while queued — resolve with
    /// [`crate::error::DeadlineStage::InQueue`], no selection run.
    pub(super) shed: Vec<Waiter>,
}

impl Dispatch {
    pub(super) fn is_empty(&self) -> bool {
        self.group.is_empty() && self.shed.is_empty()
    }
}

/// See the module docs. All methods are O(queue) worst case and run under
/// the scheduler's state mutex.
pub(super) struct DispatchQueue {
    slots: HashMap<CoalesceKey, Slot>,
    /// Per-tenant urgency heaps (the flows); arbitration between them is
    /// priority first, then [`FairShare`]. Flow heaps are dropped when
    /// emptied — the fairness state they index outlives them in `fair`.
    flows: HashMap<Arc<str>, BinaryHeap<HeapEntry>>,
    /// Weighted start-time fair queuing state across flows.
    fair: FairShare,
    /// The shared flow key for tenant-less submissions.
    anon: Arc<str>,
    /// Number of slots in `Queued` state — the admission-control measure
    /// (running slots and coalesced waiters consume no queue capacity).
    queued: usize,
    next_seq: u64,
    /// Queue-global stamp source: stamps are never reused across slots,
    /// so a stale heap entry left behind by a completed slot can never
    /// match a later slot that re-queues the same coalesce key.
    next_stamp: u64,
}

impl Default for DispatchQueue {
    fn default() -> Self {
        Self {
            slots: HashMap::new(),
            flows: HashMap::new(),
            fair: FairShare::default(),
            anon: Arc::from(""),
            queued: 0,
            next_seq: 0,
            next_stamp: 0,
        }
    }
}

impl DispatchQueue {
    /// Queued (not yet claimed) work items.
    pub(super) fn depth(&self) -> usize {
        self.queued
    }

    /// True when no work is queued or running.
    pub(super) fn is_idle(&self) -> bool {
        self.slots.is_empty()
    }

    /// Sets a tenant's weighted-fair dispatch weight (clamped ≥ 1).
    pub(super) fn set_weight(&mut self, tenant: &str, weight: u32) {
        self.fair.set_weight(tenant, weight);
    }

    /// A tenant's configured weight (1 when never configured).
    pub(super) fn weight_of(&self, tenant: &str) -> u32 {
        self.fair.weight(tenant)
    }

    /// Admits a submission: coalesce onto an identical pending selection
    /// if one exists, otherwise enqueue a new work item unless `capacity`
    /// queued items already exist. The [`PreparedSubmission`] carries
    /// everything expensive precomputed outside the scheduler's state
    /// mutex, so no O(pool) copy or fingerprint formatting runs under it.
    /// `tenant` names the flow a *new* slot is queued (and
    /// fairness-charged) under; a coalescing submission joins the
    /// existing slot regardless of flow.
    pub(super) fn admit(
        &mut self,
        prepared: PreparedSubmission,
        tenant: Option<&Arc<str>>,
        priority: u8,
        waiter: Waiter,
        capacity: usize,
    ) -> Admission {
        let PreparedSubmission {
            key,
            request,
            engine_key,
        } = prepared;
        let deadline = waiter.deadline;
        let cancelled = Arc::clone(&waiter.cancelled);
        // A slot whose every waiter detached (`super::Ticket::cancel`) is
        // a husk: its run — queued or already dispatched — stops at the
        // next checkpoint with nobody listening. Coalescing onto it would
        // hand this fresh submission a `Cancelled` it never asked for, so
        // evict the husk and enqueue new work under the key instead
        // ([`Self::complete`] matches slots by cancel-state identity, so
        // the doomed run finishing later cannot remove the newcomer).
        let doomed = self
            .slots
            .get(&key)
            .is_some_and(|slot| slot.cancel.token().cause() == Some(CancelCause::Caller));
        if doomed {
            if let Some(husk) = self.slots.remove(&key) {
                if husk.state == SlotState::Queued {
                    self.queued -= 1;
                }
            }
        } else if let Some(slot) = self.slots.get_mut(&key) {
            slot.cancel.join();
            slot.waiters.push(waiter);
            // A more urgent waiter drags the whole slot forward; the old
            // heap entry goes stale (stamp) instead of being dug out.
            if slot.state == SlotState::Queued {
                let priority = slot.priority.max(priority);
                let deadline = match (slot.deadline, deadline) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                if (priority, deadline) != (slot.priority, slot.deadline) {
                    slot.priority = priority;
                    slot.deadline = deadline;
                    slot.stamp = self.next_stamp;
                    self.next_stamp += 1;
                    self.flows
                        .entry(Arc::clone(&slot.tenant))
                        .or_default()
                        .push(HeapEntry {
                            priority,
                            deadline,
                            seq: slot.seq,
                            stamp: slot.stamp,
                            key,
                        });
                }
            }
            return Admission::Coalesced(WaiterHandle {
                cancel: Arc::clone(&slot.cancel),
                cancelled,
            });
        }
        if self.queued >= capacity {
            return Admission::RejectedFull;
        }
        let flow_key = tenant.map_or_else(|| Arc::clone(&self.anon), Arc::clone);
        let seq = self.next_seq;
        self.next_seq += 1;
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.flows
            .entry(Arc::clone(&flow_key))
            .or_default()
            .push(HeapEntry {
                priority,
                deadline,
                seq,
                stamp,
                key: key.clone(),
            });
        let cancel = CancelState::new();
        self.slots.insert(
            key,
            Slot {
                engine_key,
                request: Some(request),
                tenant: flow_key,
                waiters: vec![waiter],
                cancel: Arc::clone(&cancel),
                state: SlotState::Queued,
                priority,
                deadline,
                stamp,
                seq,
            },
        );
        self.queued += 1;
        Admission::Enqueued(WaiterHandle { cancel, cancelled })
    }

    /// Removes and returns `slot`'s waiters whose deadline has passed; if
    /// none remain the slot itself is dead. Order-preserving: fan-out
    /// treats the first surviving waiter as the slot's creator (it alone
    /// receives the unrewritten pool event), so shedding must not shuffle
    /// the survivors.
    fn triage(slot: &mut Slot, now: Instant, shed: &mut Vec<Waiter>) {
        // A cancelled waiter already resolved itself ticket-side
        // (`super::Ticket::cancel`): drop it silently, no shed delivery.
        slot.waiters
            .retain(|w| !w.cancelled.load(AtomicOrdering::Acquire));
        let (dead, live): (Vec<Waiter>, Vec<Waiter>) = std::mem::take(&mut slot.waiters)
            .into_iter()
            .partition(|w| w.deadline.is_some_and(|d| d <= now));
        shed.extend(dead);
        slot.waiters = live;
    }

    /// Builds the dispatch entry for a claimed slot, fixing the run's
    /// cancellation contract at claim time:
    ///
    /// * the shared token's **deadline** is armed only when *every* live
    ///   waiter carries one — a deadline-free waiter wants the result
    ///   regardless, so its run must never be deadline-cancelled — and
    ///   the **latest** deadline wins, because the run stays useful until
    ///   the last waiter gives up;
    /// * the effective [`OnDeadline`] is `Partial` if *any* live waiter
    ///   opted in (fan-out still hands `Fail` waiters the typed error).
    fn entry(key: CoalesceKey, request: SelectionRequest, slot: &Slot) -> DispatchEntry {
        let deadline = if slot.waiters.iter().all(|w| w.deadline.is_some()) {
            slot.waiters.iter().filter_map(|w| w.deadline).max()
        } else {
            None
        };
        slot.cancel.token().set_deadline(deadline);
        let on_deadline = if slot
            .waiters
            .iter()
            .any(|w| w.on_deadline == OnDeadline::Partial)
        {
            OnDeadline::Partial
        } else {
            OnDeadline::Fail
        };
        DispatchEntry {
            key,
            request,
            cancel: Arc::clone(&slot.cancel),
            on_deadline,
        }
    }

    /// Pops the queue-wide winning heap entry: stale heads are discarded
    /// per flow, then the flow whose live head wins — priority first,
    /// smallest effective virtual-finish tag among tied priorities,
    /// EDF/FIFO urgency as the final tiebreak (`seq` is globally unique,
    /// so the order is total and map iteration order never shows) — gives
    /// up its head. Returns the winning flow's key alongside the entry so
    /// the caller can fairness-charge it once the slot actually runs.
    fn pop_fairest(&mut self) -> Option<(Arc<str>, HeapEntry)> {
        // Drop stale heads so every surviving flow's peek is live; empty
        // flow heaps go away entirely (their fairness tags persist in
        // `fair`, which is what makes idle→backlogged re-entry correct).
        let slots = &self.slots;
        self.flows.retain(|_, heap| {
            while let Some(top) = heap.peek() {
                let live = slots
                    .get(&top.key)
                    .is_some_and(|slot| slot.state == SlotState::Queued && slot.stamp == top.stamp);
                if live {
                    break;
                }
                heap.pop();
            }
            !heap.is_empty()
        });
        let mut winner: Option<(&Arc<str>, &HeapEntry, u128)> = None;
        for (tenant, heap) in &self.flows {
            let head = heap.peek().expect("empty flows were retained away");
            let eff = self.fair.effective_vfinish(tenant);
            let wins = match winner {
                None => true,
                Some((_, best_head, best_eff)) => match head.priority.cmp(&best_head.priority) {
                    Ordering::Greater => true,
                    Ordering::Less => false,
                    Ordering::Equal => match eff.cmp(&best_eff) {
                        Ordering::Less => true,
                        Ordering::Greater => false,
                        Ordering::Equal => head.urgency(best_head) == Ordering::Greater,
                    },
                },
            };
            if wins {
                winner = Some((tenant, head, eff));
            }
        }
        let tenant = Arc::clone(winner?.0);
        let entry = self
            .flows
            .get_mut(&tenant)
            .expect("winner flow exists")
            .pop()
            .expect("winner head exists");
        Some((tenant, entry))
    }

    /// Claims the next unit of work: the winning live slot (see
    /// [`Self::pop_fairest`] for the priority/fairness/urgency order)
    /// plus up to `max_group - 1` queued slots sharing its engine key (in
    /// submission order), all marked running. Every claimed slot charges
    /// one fairness cost unit to its own flow — cross-tenant ride-alongs
    /// pay their own way. Expired waiters encountered along the way are
    /// shed, not run. An empty [`Dispatch`] means the queue holds no
    /// queued work.
    pub(super) fn pop_dispatch(&mut self, now: Instant, max_group: usize) -> Dispatch {
        let mut dispatch = Dispatch {
            group: Vec::new(),
            shed: Vec::new(),
        };
        let head_key = loop {
            let Some((tenant, entry)) = self.pop_fairest() else {
                return dispatch;
            };
            let slot = self
                .slots
                .get_mut(&entry.key)
                .expect("pop_fairest returns live entries");
            Self::triage(slot, now, &mut dispatch.shed);
            if slot.waiters.is_empty() {
                self.slots.remove(&entry.key);
                self.queued -= 1;
                continue; // fully expired: shed without running
            }
            self.fair.charge(&tenant, 1);
            break entry.key;
        };
        let engine_key = {
            let slot = self.slots.get_mut(&head_key).expect("head slot exists");
            slot.state = SlotState::Running;
            self.queued -= 1;
            let request = slot.request.take().expect("queued slot owns its request");
            dispatch
                .group
                .push(Self::entry(head_key.clone(), request, slot));
            slot.engine_key.clone()
        };
        if max_group > 1 {
            let mut siblings: Vec<(u64, CoalesceKey)> = self
                .slots
                .iter()
                .filter(|(_, s)| s.state == SlotState::Queued && s.engine_key == engine_key)
                .map(|(k, s)| (s.seq, k.clone()))
                .collect();
            siblings.sort_unstable_by_key(|(seq, _)| *seq);
            for (_, key) in siblings.into_iter().take(max_group - 1) {
                let slot = self.slots.get_mut(&key).expect("sibling slot exists");
                Self::triage(slot, now, &mut dispatch.shed);
                if slot.waiters.is_empty() {
                    self.slots.remove(&key);
                    self.queued -= 1;
                    continue;
                }
                slot.state = SlotState::Running;
                self.queued -= 1;
                let request = slot.request.take().expect("queued slot owns its request");
                let tenant = Arc::clone(&slot.tenant);
                dispatch.group.push(Self::entry(key.clone(), request, slot));
                self.fair.charge(&tenant, 1);
            }
        }
        dispatch
    }

    /// Removes a completed running slot, handing back its waiters —
    /// including any that coalesced onto it *after* dispatch — for
    /// fan-out. The slot is matched by its [`CancelState`] identity, not
    /// the key alone: if a fully-cancelled run's slot was evicted by
    /// [`Self::admit`] and the key re-occupied by fresh work, the doomed
    /// run completing late must not remove (or resolve) the newcomer.
    pub(super) fn complete(
        &mut self,
        key: &CoalesceKey,
        cancel: &Arc<CancelState>,
    ) -> Option<Slot> {
        match self.slots.get(key) {
            Some(slot) if Arc::ptr_eq(&slot.cancel, cancel) => {
                debug_assert!(slot.state == SlotState::Running);
                self.slots.remove(key)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GrainConfig;
    use crate::service::Budget;
    use crossbeam::channel::{bounded, Receiver};
    use std::time::Duration;

    fn request(graph: &str, budget: usize) -> SelectionRequest {
        SelectionRequest::new(graph, GrainConfig::ball_d(), Budget::Fixed(budget))
    }

    fn waiter() -> (
        Sender<GrainResult<SelectionReport>>,
        Receiver<GrainResult<SelectionReport>>,
    ) {
        bounded(1)
    }

    fn make_waiter(
        tx: Sender<GrainResult<SelectionReport>>,
        deadline: Option<Instant>,
        on_deadline: OnDeadline,
    ) -> Waiter {
        Waiter {
            tx,
            deadline,
            cancelled: Arc::new(AtomicBool::new(false)),
            on_deadline,
            tenant: None,
            submitted_at: Instant::now(),
        }
    }

    fn admit(
        q: &mut DispatchQueue,
        r: &SelectionRequest,
        priority: u8,
        deadline: Option<Instant>,
    ) -> Admission {
        admit_as(q, r, None, priority, deadline)
    }

    fn admit_as(
        q: &mut DispatchQueue,
        r: &SelectionRequest,
        tenant: Option<&str>,
        priority: u8,
        deadline: Option<Instant>,
    ) -> Admission {
        let (tx, rx) = waiter();
        std::mem::forget(rx); // keep the channel connected for the test
        let tenant = tenant.map(Arc::from);
        q.admit(
            PreparedSubmission::new(r.clone(), 0),
            tenant.as_ref(),
            priority,
            make_waiter(tx, deadline, OnDeadline::Fail),
            usize::MAX,
        )
    }

    fn admit_capped(
        q: &mut DispatchQueue,
        r: &SelectionRequest,
        tx: Sender<GrainResult<SelectionReport>>,
        capacity: usize,
    ) -> Admission {
        q.admit(
            PreparedSubmission::new(r.clone(), 0),
            None,
            0,
            make_waiter(tx, None, OnDeadline::Fail),
            capacity,
        )
    }

    /// Marks a handle's waiter cancelled exactly as `Ticket::cancel`
    /// does: flag first, then detach from the refcount.
    fn cancel_handle(h: &WaiterHandle) {
        h.cancelled.store(true, AtomicOrdering::Release);
        h.cancel.cancel_one();
    }

    fn popped_budgets(d: &Dispatch) -> Vec<usize> {
        d.group
            .iter()
            .map(|e| match e.request.budget {
                Budget::Fixed(n) => n,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn identical_requests_coalesce_into_one_slot() {
        let mut q = DispatchQueue::default();
        let r = request("g", 5);
        assert!(matches!(admit(&mut q, &r, 0, None), Admission::Enqueued(_)));
        assert!(matches!(
            admit(&mut q, &r, 0, None),
            Admission::Coalesced(_)
        ));
        assert_eq!(q.depth(), 1);
        let d = q.pop_dispatch(Instant::now(), 1);
        assert_eq!(d.group.len(), 1);
        let slot = q.complete(&d.group[0].key, &d.group[0].cancel).unwrap();
        assert_eq!(slot.waiters.len(), 2);
        assert!(q.is_idle());
    }

    #[test]
    fn different_seed_or_budget_does_not_coalesce() {
        let mut q = DispatchQueue::default();
        let r = request("g", 5);
        assert!(matches!(admit(&mut q, &r, 0, None), Admission::Enqueued(_)));
        let other_budget = request("g", 6);
        assert!(matches!(
            admit(&mut q, &other_budget, 0, None),
            Admission::Enqueued(_)
        ));
        let other_seed = request("g", 5).with_seed(9);
        assert!(matches!(
            admit(&mut q, &other_seed, 0, None),
            Admission::Enqueued(_)
        ));
        assert_eq!(q.depth(), 3);
        // Candidate pools are compared by content: a different pool is
        // new work, an identical pool coalesces.
        let pool_a = request("g", 5).with_candidates(vec![1, 2, 3]);
        let pool_b = request("g", 5).with_candidates(vec![1, 2, 4]);
        assert!(matches!(
            admit(&mut q, &pool_a, 0, None),
            Admission::Enqueued(_)
        ));
        assert!(matches!(
            admit(&mut q, &pool_b, 0, None),
            Admission::Enqueued(_)
        ));
        assert!(matches!(
            admit(&mut q, &pool_a, 0, None),
            Admission::Coalesced(_)
        ));
        assert_eq!(q.depth(), 5);
    }

    #[test]
    fn stale_entries_from_a_completed_slot_never_resurrect_urgency() {
        let mut q = DispatchQueue::default();
        let now = Instant::now();
        let k = request("k", 1);
        // An urgency upgrade leaves the original heap entry stale.
        admit(&mut q, &k, 7, None);
        assert!(matches!(
            admit(&mut q, &k, 9, None),
            Admission::Coalesced(_)
        ));
        let d = q.pop_dispatch(now, 1);
        assert_eq!(d.group[0].request.graph, "k");
        q.complete(&d.group[0].key, &d.group[0].cancel);
        // Re-queue the same coalesce key at low priority next to a
        // mid-priority rival: the dead prio-7 entry must not match the
        // new slot and jump it ahead.
        admit(&mut q, &k, 0, None);
        admit(&mut q, &request("rival", 1), 5, None);
        let d = q.pop_dispatch(now, 1);
        assert_eq!(
            d.group[0].request.graph, "rival",
            "a stale heap entry must not boost a re-queued slot"
        );
        q.complete(&d.group[0].key, &d.group[0].cancel);
        let d = q.pop_dispatch(now, 1);
        assert_eq!(d.group[0].request.graph, "k");
        q.complete(&d.group[0].key, &d.group[0].cancel);
        assert!(q.is_idle());
    }

    #[test]
    fn capacity_bounds_new_work_but_not_coalescing() {
        let mut q = DispatchQueue::default();
        let a = request("g", 5);
        let b = request("g", 6);
        let (tx, _rx) = waiter();
        assert!(matches!(
            admit_capped(&mut q, &a, tx, 1),
            Admission::Enqueued(_)
        ));
        let (tx, _rx2) = waiter();
        assert!(matches!(
            admit_capped(&mut q, &b, tx, 1),
            Admission::RejectedFull
        ));
        // Identical to the queued one: still admitted (no new work).
        let (tx, _rx3) = waiter();
        assert!(matches!(
            admit_capped(&mut q, &a, tx, 1),
            Admission::Coalesced(_)
        ));
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn pop_order_is_priority_then_deadline_then_fifo() {
        let mut q = DispatchQueue::default();
        let now = Instant::now();
        let soon = now + Duration::from_secs(1);
        let later = now + Duration::from_secs(60);
        // Distinct graphs so nothing groups; max_group = 1.
        assert!(matches!(
            admit(&mut q, &request("fifo-a", 1), 0, None),
            Admission::Enqueued(_)
        ));
        assert!(matches!(
            admit(&mut q, &request("edf-later", 2), 0, Some(later)),
            Admission::Enqueued(_)
        ));
        assert!(matches!(
            admit(&mut q, &request("edf-soon", 3), 0, Some(soon)),
            Admission::Enqueued(_)
        ));
        assert!(matches!(
            admit(&mut q, &request("prio", 4), 7, None),
            Admission::Enqueued(_)
        ));
        assert!(matches!(
            admit(&mut q, &request("fifo-b", 5), 0, None),
            Admission::Enqueued(_)
        ));
        let mut order = Vec::new();
        loop {
            let d = q.pop_dispatch(now, 1);
            if d.group.is_empty() {
                break;
            }
            order.push(d.group[0].request.graph.clone());
            q.complete(&d.group[0].key.clone(), &d.group[0].cancel);
        }
        assert_eq!(
            order,
            vec!["prio", "edf-soon", "edf-later", "fifo-a", "fifo-b"]
        );
    }

    #[test]
    fn coalesced_urgency_upgrade_reorders_the_queue() {
        let mut q = DispatchQueue::default();
        let now = Instant::now();
        let r_slow = request("a", 1);
        let r_fast = request("b", 1);
        assert!(matches!(
            admit(&mut q, &r_slow, 0, None),
            Admission::Enqueued(_)
        ));
        assert!(matches!(
            admit(&mut q, &r_fast, 0, None),
            Admission::Enqueued(_)
        ));
        // FIFO would run `a` first; a high-priority duplicate of `b`
        // drags its slot to the front.
        assert!(matches!(
            admit(&mut q, &r_fast, 9, None),
            Admission::Coalesced(_)
        ));
        let d = q.pop_dispatch(now, 1);
        assert_eq!(d.group[0].request.graph, "b");
        let slot = q.complete(&d.group[0].key, &d.group[0].cancel).unwrap();
        assert_eq!(slot.waiters.len(), 2, "both waiters ride the one slot");
    }

    #[test]
    fn dispatch_groups_by_engine_key_in_submission_order() {
        let mut q = DispatchQueue::default();
        let now = Instant::now();
        // Same graph + artifact fingerprint, different budgets: one
        // engine key, three distinct coalesce keys.
        for budget in [4, 5, 6] {
            assert!(matches!(
                admit(&mut q, &request("g", budget), 0, None),
                Admission::Enqueued(_)
            ));
        }
        // A foreign engine key queued in between.
        assert!(matches!(
            admit(&mut q, &request("other", 4), 0, None),
            Admission::Enqueued(_)
        ));
        let d = q.pop_dispatch(now, 8);
        assert_eq!(popped_budgets(&d), vec![4, 5, 6]);
        assert!(d.group.iter().all(|e| e.request.graph == "g"));
        assert_eq!(q.depth(), 1, "the foreign key stays queued");
        for e in &d.group {
            q.complete(&e.key, &e.cancel);
        }
        let leftover = q.pop_dispatch(now, 8);
        assert_eq!(leftover.group[0].request.graph, "other");
        q.complete(&leftover.group[0].key, &leftover.group[0].cancel);
        // max_group caps the ride-along count.
        for budget in [4, 5, 6] {
            admit(&mut q, &request("g", budget), 0, None);
        }
        let d = q.pop_dispatch(now, 2);
        assert_eq!(popped_budgets(&d), vec![4, 5]);
    }

    #[test]
    fn expired_waiters_are_shed_at_dequeue_not_run() {
        let mut q = DispatchQueue::default();
        let now = Instant::now();
        let past = now - Duration::from_millis(1);
        let r_dead = request("dead", 1);
        let r_live = request("live", 1);
        assert!(matches!(
            admit(&mut q, &r_dead, 0, Some(past)),
            Admission::Enqueued(_)
        ));
        assert!(matches!(
            admit(&mut q, &r_live, 0, None),
            Admission::Enqueued(_)
        ));
        let d = q.pop_dispatch(now, 1);
        assert_eq!(d.shed.len(), 1, "the expired waiter is shed");
        assert_eq!(d.group.len(), 1);
        assert_eq!(d.group[0].request.graph, "live");
        // A mixed slot sheds only its expired waiters and still runs.
        let r_mixed = request("mixed", 1);
        admit(&mut q, &r_mixed, 0, Some(past));
        admit(&mut q, &r_mixed, 0, None);
        q.complete(&d.group[0].key, &d.group[0].cancel);
        let d = q.pop_dispatch(now, 1);
        assert_eq!(d.shed.len(), 1);
        assert_eq!(d.group.len(), 1);
        let slot = q.complete(&d.group[0].key, &d.group[0].cancel).unwrap();
        assert_eq!(slot.waiters.len(), 1, "the live waiter still runs");
    }

    #[test]
    fn shedding_preserves_surviving_waiter_order() {
        let mut q = DispatchQueue::default();
        let now = Instant::now();
        let past = now - Duration::from_millis(1);
        let soon = now + Duration::from_secs(1);
        let later = now + Duration::from_secs(60);
        // Creator expired; survivors must keep their join order (fan-out
        // hands the first surviving waiter the unrewritten pool event).
        let r = request("g", 1);
        admit(&mut q, &r, 0, Some(past));
        admit(&mut q, &r, 0, Some(soon));
        admit(&mut q, &r, 0, Some(later));
        let d = q.pop_dispatch(now, 1);
        assert_eq!(d.shed.len(), 1);
        let slot = q.complete(&d.group[0].key, &d.group[0].cancel).unwrap();
        let deadlines: Vec<_> = slot.waiters.iter().map(|w| w.deadline.unwrap()).collect();
        assert_eq!(deadlines, vec![soon, later]);
    }

    #[test]
    fn cancel_is_refcounted_and_fully_cancelled_slots_never_run() {
        let mut q = DispatchQueue::default();
        let now = Instant::now();
        let r = request("g", 5);
        let Admission::Enqueued(h1) = admit(&mut q, &r, 0, None) else {
            panic!("first submission enqueues")
        };
        let Admission::Coalesced(h2) = admit(&mut q, &r, 0, None) else {
            panic!("duplicate coalesces")
        };
        // One of two waiters cancels: the shared token must stay
        // untripped — the sibling still wants the result.
        cancel_handle(&h1);
        assert!(!h1.cancel.token().is_cancelled());
        let d = q.pop_dispatch(now, 1);
        assert_eq!(d.group.len(), 1);
        assert!(
            d.shed.is_empty(),
            "cancelled waiters are not shed deliveries"
        );
        let slot = q.complete(&d.group[0].key, &d.group[0].cancel).unwrap();
        assert_eq!(slot.waiters.len(), 1, "the cancelled waiter is dropped");
        // The last waiter cancelling trips the token (caller cause).
        cancel_handle(&h2);
        assert!(h2.cancel.token().is_cancelled());
        // A queued slot whose every waiter cancelled is removed at
        // dispatch without running anything.
        let Admission::Enqueued(h) = admit(&mut q, &request("g2", 3), 0, None) else {
            panic!("fresh submission enqueues")
        };
        cancel_handle(&h);
        let d = q.pop_dispatch(now, 1);
        assert!(d.is_empty());
        assert!(q.is_idle());
    }

    #[test]
    fn a_resubmission_after_full_cancellation_is_fresh_work_not_a_coalesce() {
        let mut q = DispatchQueue::default();
        let now = Instant::now();
        let r = request("g", 5);
        let Admission::Enqueued(h) = admit(&mut q, &r, 0, None) else {
            panic!("first submission enqueues")
        };
        // The run is claimed, then its only waiter cancels mid-flight.
        let d = q.pop_dispatch(now, 1);
        let doomed = Arc::clone(&d.group[0].cancel);
        cancel_handle(&h);
        assert!(doomed.token().is_cancelled());
        // An identical submission now must NOT inherit the doomed run.
        assert!(matches!(admit(&mut q, &r, 0, None), Admission::Enqueued(_)));
        assert_eq!(q.depth(), 1);
        // The doomed run completing late matches by cancel-state identity
        // and finds nothing — the newcomer's slot is untouched.
        assert!(q.complete(&d.group[0].key, &doomed).is_none());
        let d = q.pop_dispatch(now, 1);
        assert_eq!(d.group.len(), 1, "the fresh slot dispatches normally");
        let slot = q.complete(&d.group[0].key, &d.group[0].cancel).unwrap();
        assert_eq!(slot.waiters.len(), 1);
        assert!(q.is_idle());
    }

    #[test]
    fn dispatch_arms_the_token_deadline_only_when_every_waiter_has_one() {
        let mut q = DispatchQueue::default();
        let now = Instant::now();
        let soon = now + Duration::from_secs(1);
        let later = now + Duration::from_secs(60);
        // A deadline-free waiter keeps the run uncancellable.
        let a = request("a", 1);
        admit(&mut q, &a, 0, Some(soon));
        admit(&mut q, &a, 0, None);
        let d = q.pop_dispatch(now, 1);
        assert_eq!(d.group[0].cancel.token().deadline(), None);
        assert_eq!(d.group[0].on_deadline, OnDeadline::Fail);
        q.complete(&d.group[0].key, &d.group[0].cancel);
        // All waiters deadlined: the latest deadline arms the token, and
        // any Partial waiter upgrades the run's effective policy.
        let b = request("b", 1);
        admit(&mut q, &b, 0, Some(soon));
        let (tx, rx) = waiter();
        std::mem::forget(rx);
        q.admit(
            PreparedSubmission::new(b.clone(), 0),
            None,
            0,
            make_waiter(tx, Some(later), OnDeadline::Partial),
            usize::MAX,
        );
        let d = q.pop_dispatch(now, 1);
        assert_eq!(
            d.group[0].cancel.token().deadline(),
            Some(later),
            "the run stays useful until the last waiter gives up"
        );
        assert_eq!(d.group[0].on_deadline, OnDeadline::Partial);
        q.complete(&d.group[0].key, &d.group[0].cancel);
    }

    /// Serially drains the queue with `max_group = 1`, recording the
    /// graph name of each dispatched slot.
    fn drain_order(q: &mut DispatchQueue, now: Instant) -> Vec<String> {
        let mut order = Vec::new();
        loop {
            let d = q.pop_dispatch(now, 1);
            if d.group.is_empty() {
                break;
            }
            order.push(d.group[0].request.graph.clone());
            q.complete(&d.group[0].key.clone(), &d.group[0].cancel);
        }
        order
    }

    #[test]
    fn ten_to_one_weights_dispatch_ten_to_one_work_under_saturation() {
        let mut q = DispatchQueue::default();
        let now = Instant::now();
        q.set_weight("gold", 10);
        q.set_weight("bronze", 1);
        // Both tenants saturate the queue: 60 distinct slots each
        // (distinct graph names keep engine keys apart so nothing
        // ride-along-groups across tenants here).
        for i in 0..60 {
            admit_as(
                &mut q,
                &request(&format!("gold-{i}"), 1),
                Some("gold"),
                0,
                None,
            );
            admit_as(
                &mut q,
                &request(&format!("bronze-{i}"), 1),
                Some("bronze"),
                0,
                None,
            );
        }
        let order = drain_order(&mut q, now);
        assert_eq!(order.len(), 120);
        // While both stay backlogged (the first 66 dispatches), completed
        // work tracks the 10:1 weights; integer fixed-point truncation
        // allows at most ±1 per window.
        let window = &order[..66];
        let gold = window.iter().filter(|g| g.starts_with("gold")).count();
        let bronze = window.len() - gold;
        assert!(
            (59..=61).contains(&gold),
            "gold got {gold}/66 dispatches, bronze {bronze} — expected ~10:1"
        );
        // Starvation-freedom: bronze (weight 1) is served at least once
        // in every weights-sum-plus-slack window while it is backlogged.
        let bronze_positions: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, g)| g.starts_with("bronze"))
            .map(|(i, _)| i)
            .take(5)
            .collect();
        for pair in bronze_positions.windows(2) {
            assert!(
                pair[1] - pair[0] <= 12,
                "bronze starved for {} dispatches: {bronze_positions:?}",
                pair[1] - pair[0]
            );
        }
    }

    #[test]
    fn priority_still_outranks_fairness_and_tenantless_order_is_unchanged() {
        let mut q = DispatchQueue::default();
        let now = Instant::now();
        q.set_weight("heavy", 100);
        // A saturated heavy tenant cannot hold back a high-priority slot
        // from an unweighted flow: priority stays the global escape hatch.
        for i in 0..5 {
            admit_as(
                &mut q,
                &request(&format!("heavy-{i}"), 1),
                Some("heavy"),
                0,
                None,
            );
        }
        admit(&mut q, &request("urgent", 1), 7, None);
        let order = drain_order(&mut q, now);
        assert_eq!(order[0], "urgent");
        // And with a single (anonymous) flow the order is the original
        // FIFO — fairness is invisible until tenants exist.
        for name in ["first", "second", "third"] {
            admit(&mut q, &request(name, 1), 0, None);
        }
        assert_eq!(drain_order(&mut q, now), vec!["first", "second", "third"]);
    }

    #[test]
    fn cross_tenant_ride_alongs_charge_their_own_flow() {
        let mut q = DispatchQueue::default();
        let now = Instant::now();
        q.set_weight("a", 1);
        q.set_weight("b", 1);
        // Same graph ⇒ same engine key: b's slot rides along with a's
        // dispatch. The charge must land on b, so a's next head wins the
        // following dispatch (equal weights alternate).
        admit_as(&mut q, &request("g", 1), Some("a"), 0, None);
        admit_as(&mut q, &request("g", 2), Some("b"), 0, None);
        admit_as(&mut q, &request("solo-a", 3), Some("a"), 0, None);
        admit_as(&mut q, &request("solo-b", 4), Some("b"), 0, None);
        let d = q.pop_dispatch(now, 8);
        assert_eq!(popped_budgets(&d), vec![1, 2], "b rides along on g");
        for e in &d.group {
            q.complete(&e.key, &e.cancel);
        }
        // Both flows were charged once; the tie falls back to urgency
        // (seq), so solo-a dispatches before solo-b — and crucially b was
        // NOT left uncharged ahead of a.
        assert_eq!(drain_order(&mut q, now), vec!["solo-a", "solo-b"]);
    }

    #[test]
    fn waiters_joining_a_running_slot_are_returned_at_complete() {
        let mut q = DispatchQueue::default();
        let r = request("g", 5);
        admit(&mut q, &r, 0, None);
        let d = q.pop_dispatch(Instant::now(), 1);
        assert_eq!(q.depth(), 0, "running work holds no queue capacity");
        // An identical submission while running coalesces, costs no
        // capacity, and is visible at completion.
        let (tx, _rx) = waiter();
        assert!(matches!(
            admit_capped(&mut q, &r, tx, 0),
            Admission::Coalesced(_)
        ));
        let slot = q.complete(&d.group[0].key, &d.group[0].cancel).unwrap();
        assert_eq!(slot.waiters.len(), 2);
    }
}

//! The Diversified Influence Maximization objective (Eq. 11).
//!
//! ```text
//! F(S) = w_mag · |σ(S)| / σ̂  +  γ · D(S) / D̂
//! ```
//!
//! `w_mag ∈ {0, 1}` and the *scope* of the diversity argument (activated
//! nodes vs. raw seeds) encode the Table 3 ablations; the full Grain
//! objective uses `w_mag = 1` and the activated scope.

use crate::diversity::DiversityFunction;
use grain_influence::{ActivationIndex, CoverageState};

/// What the diversity function is fed when a seed is added.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiversityScope {
    /// Newly activated nodes `σ(S ∪ {u}) \ σ(S)` — Grain's formulation.
    Activated,
    /// The seed itself — the classic i.i.d.-style coverage of \[45\].
    Seeds,
}

/// A set objective maximizable by greedy/CELF.
pub trait MarginalObjective {
    /// `F(S ∪ {u}) − F(S)` without mutating state.
    fn marginal_gain(&mut self, candidate: u32) -> f64;

    /// Adds `u` to `S`.
    fn add(&mut self, candidate: u32);

    /// Current `F(S)`.
    fn value(&self) -> f64;
}

/// The DIM objective with incremental coverage and diversity state.
pub struct DimObjective<'a, D: DiversityFunction> {
    coverage: CoverageState<'a>,
    diversity: D,
    gamma: f64,
    magnitude_weight: f64,
    scope: DiversityScope,
    sigma_hat: f64,
    d_hat: f64,
    /// Reused batch buffer for the diversity argument (newly activated
    /// nodes or the seed itself). Owning it here keeps every greedy
    /// marginal-gain evaluation allocation-free — at n=1e6 the hot loop
    /// runs millions of evaluations per selection.
    scratch: Vec<u32>,
}

impl<'a, D: DiversityFunction> DimObjective<'a, D> {
    /// Full Grain objective (`w_mag = 1`, activated scope).
    pub fn new(index: &'a ActivationIndex, diversity: D, gamma: f64) -> Self {
        Self::with_variant(index, diversity, gamma, 1.0, DiversityScope::Activated)
    }

    /// Fully parameterized constructor for ablations.
    pub fn with_variant(
        index: &'a ActivationIndex,
        diversity: D,
        gamma: f64,
        magnitude_weight: f64,
        scope: DiversityScope,
    ) -> Self {
        let sigma_hat = index.max_coverage_bound().max(1) as f64;
        let d_hat = diversity.upper_bound().max(f64::MIN_POSITIVE);
        Self {
            coverage: CoverageState::new(index),
            diversity,
            gamma,
            magnitude_weight,
            scope,
            sigma_hat,
            d_hat,
            scratch: Vec::new(),
        }
    }

    /// `|σ(S)|` of the current seed set.
    pub fn sigma_size(&self) -> usize {
        self.coverage.covered_count()
    }

    /// Current activated set, sorted.
    pub fn sigma(&self) -> Vec<u32> {
        self.coverage.sigma()
    }

    /// Current (unnormalized) diversity value `D(S)`.
    pub fn diversity_value(&self) -> f64 {
        self.diversity.value()
    }

    /// The seeds selected so far, in pick order.
    pub fn seeds(&self) -> &[u32] {
        self.coverage.seeds()
    }

    /// Normalization constant `σ̂`.
    pub fn sigma_hat(&self) -> f64 {
        self.sigma_hat
    }

    /// Normalization constant `D̂`.
    pub fn d_hat(&self) -> f64 {
        self.d_hat
    }

    /// Fills [`Self::scratch`] with the diversity argument for `candidate`
    /// under the configured scope, returning the newly-activated count when
    /// the scope computes it (so magnitude can reuse it without a second
    /// pass over `act[candidate]`).
    fn fill_diversity_batch(&mut self, candidate: u32) -> Option<usize> {
        match self.scope {
            DiversityScope::Activated => Some(
                self.coverage
                    .newly_activated_into(candidate, &mut self.scratch),
            ),
            DiversityScope::Seeds => {
                self.scratch.clear();
                self.scratch.push(candidate);
                None
            }
        }
    }
}

impl<'a, D: DiversityFunction> MarginalObjective for DimObjective<'a, D> {
    fn marginal_gain(&mut self, candidate: u32) -> f64 {
        let mut coverage_gain = None;
        let div = if self.gamma > 0.0 {
            coverage_gain = self.fill_diversity_batch(candidate);
            self.gamma * self.diversity.marginal_gain(&self.scratch) / self.d_hat
        } else {
            0.0
        };
        if self.magnitude_weight > 0.0 {
            let count = coverage_gain.unwrap_or_else(|| self.coverage.marginal_gain(candidate));
            self.magnitude_weight * count as f64 / self.sigma_hat + div
        } else {
            div
        }
    }

    fn add(&mut self, candidate: u32) {
        self.fill_diversity_batch(candidate);
        if self.gamma > 0.0 {
            self.diversity.commit(&self.scratch);
        }
        if self.scope == DiversityScope::Seeds {
            // The scratch holds the seed, not the activation delta; coverage
            // still needs the latter.
            self.coverage
                .newly_activated_into(candidate, &mut self.scratch);
        }
        self.coverage.add_seed_from(candidate, &self.scratch);
    }

    fn value(&self) -> f64 {
        self.magnitude_weight * self.coverage.covered_count() as f64 / self.sigma_hat
            + self.gamma * self.diversity.value() / self.d_hat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diversity::{BallDiversity, NullDiversity};
    use grain_graph::{generators, transition_matrix, TransitionKind};
    use grain_influence::InfluenceRows;
    use grain_linalg::{distance, DenseMatrix};

    fn setup(n: usize, seed: u64) -> (ActivationIndex, DenseMatrix) {
        let g = generators::erdos_renyi_gnm(n, n * 3, seed);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        let rows = InfluenceRows::compute(&t, 2, 0.0);
        let idx = ActivationIndex::build(&rows, 0.05);
        let feats = DenseMatrix::from_vec(
            n,
            4,
            (0..n * 4)
                .map(|i| ((i * 31 % 17) as f32) * 0.1 + 0.01)
                .collect(),
        );
        let emb = distance::normalized_embedding(&feats);
        (idx, emb)
    }

    #[test]
    fn marginal_gain_matches_add_delta() {
        let (idx, emb) = setup(40, 1);
        let div = BallDiversity::new(&emb, 0.05);
        let mut obj = DimObjective::new(&idx, div, 1.0);
        for c in [3u32, 17, 29] {
            let before = obj.value();
            let gain = obj.marginal_gain(c);
            obj.add(c);
            assert!(
                (obj.value() - before - gain).abs() < 1e-9,
                "gain mismatch at {c}: {} vs {}",
                obj.value() - before,
                gain
            );
        }
    }

    #[test]
    fn null_diversity_reduces_to_coverage() {
        let (idx, _) = setup(30, 2);
        let mut obj = DimObjective::new(&idx, NullDiversity, 0.0);
        let g = obj.marginal_gain(5);
        let cov_gain = idx.sigma_size(&[5]) as f64 / idx.max_coverage_bound() as f64;
        assert!((g - cov_gain).abs() < 1e-12);
    }

    #[test]
    fn no_magnitude_variant_ignores_coverage() {
        let (idx, emb) = setup(30, 3);
        let div = BallDiversity::new(&emb, 0.1);
        let mut obj = DimObjective::with_variant(&idx, div, 1.0, 0.0, DiversityScope::Seeds);
        obj.add(2);
        // Magnitude weight 0: value only reflects diversity.
        assert!(obj.value() > 0.0);
        assert!(obj.sigma_size() > 0); // coverage still tracked internally
        let div_term = obj.diversity_value() / obj.d_hat();
        assert!((obj.value() - div_term).abs() < 1e-12);
    }

    #[test]
    fn value_is_monotone_under_adds() {
        let (idx, emb) = setup(50, 4);
        let div = BallDiversity::new(&emb, 0.05);
        let mut obj = DimObjective::new(&idx, div, 1.0);
        let mut last = obj.value();
        for c in [1u32, 8, 21, 33, 47] {
            obj.add(c);
            assert!(obj.value() >= last - 1e-12);
            last = obj.value();
        }
    }

    #[test]
    fn value_stays_bounded_by_one_plus_gamma() {
        let (idx, emb) = setup(25, 5);
        let div = BallDiversity::new(&emb, 0.2);
        let gamma = 1.0;
        let mut obj = DimObjective::new(&idx, div, gamma);
        for c in 0..25u32 {
            obj.add(c);
        }
        assert!(obj.value() <= 1.0 + gamma + 1e-9);
    }

    #[test]
    fn seeds_scope_feeds_seed_itself() {
        let (idx, emb) = setup(20, 6);
        let div = BallDiversity::new(&emb, 0.3);
        let mut classic = DimObjective::with_variant(&idx, div, 1.0, 1.0, DiversityScope::Seeds);
        // Even a seed that activates nothing still contributes its own ball.
        let quiet: u32 = (0..20u32)
            .min_by_key(|&u| idx.activated_by(u as usize).len())
            .unwrap();
        let gain = classic.marginal_gain(quiet);
        assert!(gain > 0.0);
    }
}

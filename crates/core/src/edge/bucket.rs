//! Per-tenant token-bucket admission with an injectable clock.
//!
//! Every method takes `now: Instant` explicitly instead of reading a
//! clock, so the rate-limit property tests drive simulated time forward
//! deterministically — no sleeps, no wall-clock flake — while the server
//! passes real `Instant::now()` values. This is the same
//! dependency-inversion trick the fairness core ([`FairShare`]) uses for
//! virtual time.
//!
//! [`FairShare`]: crate::scheduler::FairShare

use std::time::Instant;

/// A classic token bucket: capacity `burst`, refill `rate_per_sec`
/// tokens per second, one token per admitted request (fractional costs
/// are allowed for future weighted admission).
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A bucket that starts full (a tenant's first burst is admitted).
    /// Rates and bursts are clamped to be non-negative; a zero rate
    /// admits only the initial burst, ever.
    #[must_use]
    pub fn new(rate_per_sec: f64, burst: f64, now: Instant) -> Self {
        let burst = burst.max(0.0);
        Self {
            rate_per_sec: rate_per_sec.max(0.0),
            burst,
            tokens: burst,
            last_refill: now,
        }
    }

    /// The bucket's refill rate, tokens per second.
    #[must_use]
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// The bucket's burst capacity.
    #[must_use]
    pub fn burst(&self) -> f64 {
        self.burst
    }

    fn refill(&mut self, now: Instant) {
        // `saturating_duration_since` tolerates a caller handing
        // instants out of order (never goes backwards, never panics).
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate_per_sec).min(self.burst);
        self.last_refill = self.last_refill.max(now);
    }

    /// Tokens available at `now` (after refill accrual).
    #[must_use]
    pub fn available(&mut self, now: Instant) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Admits a request costing `cost` tokens, or refuses it leaving the
    /// bucket unchanged (failed attempts are not charged).
    pub fn try_take(&mut self, cost: f64, now: Instant) -> bool {
        self.refill(now);
        if self.tokens + 1e-9 >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_is_admitted_then_rate_governs() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(10.0, 3.0, t0);
        // The full burst goes through at t0…
        assert!(bucket.try_take(1.0, t0));
        assert!(bucket.try_take(1.0, t0));
        assert!(bucket.try_take(1.0, t0));
        // …the fourth request is refused and not charged…
        assert!(!bucket.try_take(1.0, t0));
        assert!(!bucket.try_take(1.0, t0));
        // …and 100 ms later exactly one token has accrued at 10/s.
        let t1 = t0 + Duration::from_millis(100);
        assert!(bucket.try_take(1.0, t1));
        assert!(!bucket.try_take(1.0, t1));
    }

    #[test]
    fn refill_caps_at_burst() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(1000.0, 2.0, t0);
        assert!(bucket.try_take(2.0, t0));
        // An hour of idle accrues… still only `burst` tokens.
        let later = t0 + Duration::from_secs(3600);
        assert!((bucket.available(later) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn admitted_count_tracks_rate_exactly_under_simulated_time() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(5.0, 1.0, t0);
        let mut admitted = 0;
        // 9.99 simulated seconds of a 100 Hz open loop against a 5/s
        // bucket: burst (1) + ⌊rate × 9.99 s⌋ (49) = 50 admissions.
        for tick in 0..1000u64 {
            let now = t0 + Duration::from_millis(10 * tick);
            if bucket.try_take(1.0, now) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 50);
    }

    #[test]
    fn out_of_order_instants_never_panic_or_mint_tokens() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(1.0, 1.0, t0 + Duration::from_secs(5));
        assert!(bucket.try_take(1.0, t0)); // earlier than last_refill
        assert!(!bucket.try_take(1.0, t0));
    }
}

//! The network edge: a framed-TCP serving front-end with per-tenant
//! fairness, rate limiting, and disconnect-triggered cancellation.
//!
//! [`EdgeServer`] binds a `std::net::TcpListener` and serves the wire
//! protocol of [`proto`] (length-prefixed flat-binary frames, the
//! store's dialect). Each connection authenticates one tenant via a
//! [`Hello`](proto::Hello) frame, then pipelines
//! [`Request`](proto::Frame::Request) frames; admission charges the
//! tenant's [`TokenBucket`], dispatch goes through the shared
//! [`Scheduler`] under the tenant's weighted-fair flow, and the response
//! carries exactly the deterministic core of the report — **bit-identical
//! to the same [`SelectionRequest`](crate::service::SelectionRequest)
//! submitted in-process**, the contract
//! `tests/edge_serving.rs` asserts against a serial oracle.
//!
//! # Connection lifecycle
//!
//! ```text
//! accept ─ cap check ─ Hello/auth ─ HelloAck ─┬─ Request → bucket → Scheduler → Response
//!                                             ├─ Request → … (pipelined)
//!                                             └─ EOF/error → cancel all in-flight tickets
//! ```
//!
//! Two threads serve each connection: a **reader** that decodes frames,
//! admits and submits work, and a **writer** that waits tickets in FIFO
//! order and owns the write half. The split is what turns a client
//! disconnect into resource reclamation: the reader notices EOF
//! immediately (even while the writer is blocked in
//! [`Ticket::wait`](crate::scheduler::Ticket::wait)) and trips every
//! outstanding request's [`CancelHandle`] — PR 6's cooperative abort
//! path surfacing as a network behavior. Queued work is shed at
//! dispatch; mid-greedy work stops at the next cancellation checkpoint.
//!
//! Failures stay typed end to end: malformed bytes are answered with a
//! [`CODE_PROTOCOL`](proto::CODE_PROTOCOL) error frame and a clean
//! close, refused admissions with
//! [`CODE_RATE_LIMITED`](proto::CODE_RATE_LIMITED) (connection stays
//! open), scheduler/service errors with their
//! [`grain_error_code`](proto::grain_error_code). A connection never
//! takes down its neighbors: each one's threads are panic-isolated, and
//! the fault-injection sites `edge.accept`, `edge.read`, `edge.write`,
//! and `edge.disconnect` (armed via [`crate::fault`]) let the chaos
//! tests prove it.

pub mod bucket;
pub mod client;
pub mod proto;

pub use bucket::TokenBucket;
pub use client::{EdgeClient, EdgeError, RequestOptions};

use crate::fault;
use crate::scheduler::{CancelHandle, ScheduledRequest, Scheduler, SchedulerConfig, TenantStats};
use crate::service::GrainService;
use proto::{Frame, FrameError, HelloAck, WireError, WireReport, WireRequest};
use std::collections::HashMap;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One tenant the edge will serve.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Tenant id presented in the hello frame.
    pub id: String,
    /// Shared secret the hello must present; `None` admits any secret
    /// (including empty) for that tenant id.
    pub secret: Option<String>,
    /// Weighted-fair dispatch weight (clamped to ≥ 1 by the scheduler).
    pub weight: u32,
    /// Token-bucket refill rate, requests per second.
    pub rate_per_sec: f64,
    /// Token-bucket burst capacity.
    pub burst: f64,
}

impl TenantSpec {
    /// An open tenant (no secret) with the given weight and a generous
    /// default bucket (1000 req/s, burst 1000).
    #[must_use]
    pub fn open(id: impl Into<String>, weight: u32) -> Self {
        Self {
            id: id.into(),
            secret: None,
            weight,
            rate_per_sec: 1000.0,
            burst: 1000.0,
        }
    }

    /// Sets the shared secret the hello must present.
    #[must_use]
    pub fn with_secret(mut self, secret: impl Into<String>) -> Self {
        self.secret = Some(secret.into());
        self
    }

    /// Sets the token-bucket admission parameters.
    #[must_use]
    pub fn with_rate(mut self, rate_per_sec: f64, burst: f64) -> Self {
        self.rate_per_sec = rate_per_sec;
        self.burst = burst;
        self
    }
}

/// Construction-time knobs of an [`EdgeServer`].
#[derive(Clone, Debug)]
pub struct EdgeConfig {
    /// Hard cap on concurrently served connections; the `n+1`-th accept
    /// is answered with a [`CODE_AT_CAPACITY`](proto::CODE_AT_CAPACITY)
    /// error frame and closed.
    pub max_connections: usize,
    /// Per-connection frame-size cap (both directions).
    pub max_frame_len: usize,
    /// The tenant table; hellos naming anything else are refused.
    pub tenants: Vec<TenantSpec>,
    /// Configuration of the embedded [`Scheduler`].
    pub scheduler: SchedulerConfig,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            max_frame_len: proto::DEFAULT_MAX_FRAME_LEN,
            tenants: Vec::new(),
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// Point-in-time snapshot of edge-level counters (scheduler-level
/// accounting lives in [`Scheduler::stats`] /
/// [`Scheduler::tenant_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Connections accepted (cap refusals included).
    pub connections_accepted: usize,
    /// Connections refused at the cap.
    pub connections_rejected: usize,
    /// Connections currently being served.
    pub active_connections: usize,
    /// Hellos refused (unknown tenant or bad secret).
    pub auth_failures: usize,
    /// Request frames answered with a response frame.
    pub requests_served: usize,
    /// Request frames refused by a tenant's token bucket.
    pub rate_limited: usize,
    /// Frames that failed to decode (connection torn down after).
    pub protocol_errors: usize,
    /// In-flight requests cancelled because their client disconnected.
    pub disconnect_cancels: usize,
}

#[derive(Default)]
struct EdgeCounters {
    connections_accepted: AtomicUsize,
    connections_rejected: AtomicUsize,
    active_connections: AtomicUsize,
    auth_failures: AtomicUsize,
    requests_served: AtomicUsize,
    rate_limited: AtomicUsize,
    protocol_errors: AtomicUsize,
    disconnect_cancels: AtomicUsize,
}

struct TenantRuntime {
    spec: TenantSpec,
    bucket: Mutex<TokenBucket>,
}

struct EdgeShared {
    service: Arc<GrainService>,
    scheduler: Scheduler,
    tenants: HashMap<String, TenantRuntime>,
    max_frame_len: usize,
    max_connections: usize,
    counters: EdgeCounters,
    shutting_down: AtomicBool,
    /// Read halves of live connections, shut down on server shutdown so
    /// blocked reader threads wake with EOF.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// What the reader hands the writer thread, in write order.
enum WriterMsg {
    Frame(Frame),
    Ticket {
        request_id: u64,
        ticket: crate::scheduler::Ticket,
    },
}

/// A framed-TCP serving edge over one [`GrainService`]; see the module
/// docs for the connection lifecycle and guarantees.
pub struct EdgeServer {
    shared: Arc<EdgeShared>,
    local_addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl EdgeServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `service` under `config`. Tenant weights are registered
    /// with the embedded scheduler before the first accept.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<GrainService>,
        config: EdgeConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let scheduler = Scheduler::new(Arc::clone(&service), config.scheduler);
        let now = Instant::now();
        let mut tenants = HashMap::new();
        for spec in config.tenants {
            scheduler.set_tenant_weight(&spec.id, spec.weight);
            let bucket = Mutex::new(TokenBucket::new(spec.rate_per_sec, spec.burst, now));
            tenants.insert(spec.id.clone(), TenantRuntime { spec, bucket });
        }
        let shared = Arc::new(EdgeShared {
            service,
            scheduler,
            tenants,
            max_frame_len: config.max_frame_len,
            max_connections: config.max_connections.max(1),
            counters: EdgeCounters::default(),
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(1),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("grain-edge-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(Self {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service this edge fronts.
    #[must_use]
    pub fn service(&self) -> &Arc<GrainService> {
        &self.shared.service
    }

    /// The embedded scheduler (per-tenant stats, pause/resume, weights).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.shared.scheduler
    }

    /// Edge-level counters; see [`EdgeStats`].
    #[must_use]
    pub fn stats(&self) -> EdgeStats {
        let c = &self.shared.counters;
        EdgeStats {
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: c.connections_rejected.load(Ordering::Relaxed),
            active_connections: c.active_connections.load(Ordering::Relaxed),
            auth_failures: c.auth_failures.load(Ordering::Relaxed),
            requests_served: c.requests_served.load(Ordering::Relaxed),
            rate_limited: c.rate_limited.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            disconnect_cancels: c.disconnect_cancels.load(Ordering::Relaxed),
        }
    }

    /// Per-tenant scheduler accounting, sorted by tenant id.
    #[must_use]
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.shared.scheduler.tenant_stats()
    }

    /// Stops accepting, severs live connections (waking their reader
    /// threads with EOF, which cancels their in-flight work), and shuts
    /// the embedded scheduler down. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with one last connection to ourselves.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let conns: Vec<TcpStream> = {
            let mut map = lock(&self.shared.conns);
            map.drain().map(|(_, stream)| stream).collect()
        };
        for stream in conns {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Give connection threads a moment to observe EOF and cancel
        // their in-flight tickets before the scheduler goes away.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self
            .shared
            .counters
            .active_connections
            .load(Ordering::Acquire)
            > 0
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.shared.scheduler.shutdown();
    }
}

impl Drop for EdgeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for EdgeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeServer")
            .field("local_addr", &self.local_addr)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn accept_loop(listener: &TcpListener, shared: &Arc<EdgeShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        // Claim a connection slot; over the cap, refuse politely.
        let active = &shared.counters.active_connections;
        if active.fetch_add(1, Ordering::AcqRel) >= shared.max_connections {
            active.fetch_sub(1, Ordering::AcqRel);
            shared
                .counters
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = proto::write_frame(
                &mut stream,
                &Frame::Error(WireError {
                    request_id: 0,
                    code: proto::CODE_AT_CAPACITY,
                    message: format!("server at its {}-connection cap", shared.max_connections),
                }),
            );
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("grain-edge-conn".into())
            .spawn(move || {
                let conn_id = conn_shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    lock(&conn_shared.conns).insert(conn_id, clone);
                }
                // Panic isolation: a fault-injected (or genuine) panic in
                // one connection must not poison the process or skip the
                // slot release below.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    serve_connection(stream, &conn_shared);
                }));
                lock(&conn_shared.conns).remove(&conn_id);
                conn_shared
                    .counters
                    .active_connections
                    .fetch_sub(1, Ordering::AcqRel);
                drop(result);
            });
        if spawned.is_err() {
            active.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Authenticates the hello, then runs the reader loop; the paired
/// writer thread is joined before returning so the connection slot is
/// only released once both halves are done.
fn serve_connection(stream: TcpStream, shared: &Arc<EdgeShared>) {
    fault::point("edge.accept", None);
    let mut read_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut write_half = stream;

    // --- Hello / authentication -------------------------------------
    let hello = match proto::read_frame(&mut read_half, shared.max_frame_len) {
        Ok(Frame::Hello(hello)) => hello,
        Ok(_) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            send_error(
                &mut write_half,
                0,
                proto::CODE_PROTOCOL,
                "expected a hello frame first",
            );
            return;
        }
        Err(err) => {
            refuse_protocol(&mut write_half, shared, &err);
            return;
        }
    };
    let Some(runtime) = shared.tenants.get(&hello.tenant) else {
        shared
            .counters
            .auth_failures
            .fetch_add(1, Ordering::Relaxed);
        send_error(
            &mut write_half,
            0,
            proto::CODE_UNKNOWN_TENANT,
            &format!("unknown tenant {:?}", hello.tenant),
        );
        return;
    };
    if let Some(secret) = &runtime.spec.secret {
        if *secret != hello.secret {
            shared
                .counters
                .auth_failures
                .fetch_add(1, Ordering::Relaxed);
            send_error(
                &mut write_half,
                0,
                proto::CODE_UNAUTHENTICATED,
                "secret mismatch",
            );
            return;
        }
    }

    // --- Writer thread ----------------------------------------------
    let (tx, rx) = mpsc::channel::<WriterMsg>();
    let _ = tx.send(WriterMsg::Frame(Frame::HelloAck(HelloAck {
        weight: runtime.spec.weight,
        rate_per_sec: runtime.spec.rate_per_sec,
        burst: runtime.spec.burst,
    })));
    let outstanding: Arc<Mutex<HashMap<u64, CancelHandle>>> = Arc::default();
    let writer_outstanding = Arc::clone(&outstanding);
    let writer_shared = Arc::clone(shared);
    let writer = std::thread::Builder::new()
        .name("grain-edge-writer".into())
        .spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                writer_loop(&mut write_half, &rx, &writer_outstanding, &writer_shared);
            }));
            // Whether the loop ended normally, on a write error, or on a
            // fault-injected panic: sever both halves so the reader
            // unblocks and tears the connection down.
            let _ = write_half.shutdown(Shutdown::Both);
            drop(result);
        })
        .expect("spawn writer thread");

    // --- Reader loop -------------------------------------------------
    let tenant: Arc<str> = Arc::from(runtime.spec.id.as_str());
    loop {
        fault::point("edge.read", None);
        let frame = match proto::read_frame(&mut read_half, shared.max_frame_len) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => break,
            Err(FrameError::Io(_)) => break,
            Err(FrameError::Protocol(message)) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(WriterMsg::Frame(Frame::Error(WireError {
                    request_id: 0,
                    code: proto::CODE_PROTOCOL,
                    message,
                })));
                break;
            }
        };
        let wire = match frame {
            Frame::Request(wire) => *wire,
            _ => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(WriterMsg::Frame(Frame::Error(WireError {
                    request_id: 0,
                    code: proto::CODE_PROTOCOL,
                    message: "only request frames are valid after the hello".into(),
                })));
                break;
            }
        };
        handle_request(wire, &tenant, runtime, shared, &tx, &outstanding);
    }

    // --- Teardown: disconnect cancels all in-flight work -------------
    let in_flight: Vec<CancelHandle> = {
        let mut map = lock(&outstanding);
        map.drain().map(|(_, handle)| handle).collect()
    };
    if !in_flight.is_empty() {
        shared
            .counters
            .disconnect_cancels
            .fetch_add(in_flight.len(), Ordering::Relaxed);
        for handle in in_flight {
            handle.cancel();
        }
    }
    // Cancellation above guarantees every queued ticket resolves, so the
    // writer drains its channel (flushing any final error frame to a
    // still-listening peer) and exits; join *before* severing the socket
    // so that frame is not raced away.
    drop(tx);
    let _ = writer.join();
}

fn handle_request(
    wire: WireRequest,
    tenant: &Arc<str>,
    runtime: &TenantRuntime,
    shared: &Arc<EdgeShared>,
    tx: &Sender<WriterMsg>,
    outstanding: &Arc<Mutex<HashMap<u64, CancelHandle>>>,
) {
    let request_id = wire.request_id;
    // Admission: one token per request, charged at receipt time.
    if !lock(&runtime.bucket).try_take(1.0, Instant::now()) {
        shared.counters.rate_limited.fetch_add(1, Ordering::Relaxed);
        let _ = tx.send(WriterMsg::Frame(Frame::Error(WireError {
            request_id,
            code: proto::CODE_RATE_LIMITED,
            message: format!(
                "tenant {:?} over its {}/s rate (burst {})",
                runtime.spec.id, runtime.spec.rate_per_sec, runtime.spec.burst
            ),
        })));
        return;
    }
    let mut scheduled = ScheduledRequest::new(wire.request)
        .with_priority(wire.priority)
        .with_on_deadline(wire.on_deadline)
        .with_tenant(Arc::clone(tenant));
    if wire.deadline_ms > 0 {
        scheduled = scheduled
            .with_deadline(Instant::now() + Duration::from_millis(u64::from(wire.deadline_ms)));
    }
    match shared.scheduler.submit(scheduled) {
        Ok(ticket) => {
            lock(outstanding).insert(request_id, ticket.cancel_handle());
            let _ = tx.send(WriterMsg::Ticket { request_id, ticket });
        }
        Err(error) => {
            let _ = tx.send(WriterMsg::Frame(Frame::Error(WireError {
                request_id,
                code: proto::grain_error_code(&error),
                message: error.to_string(),
            })));
        }
    }
}

fn writer_loop(
    write_half: &mut TcpStream,
    rx: &Receiver<WriterMsg>,
    outstanding: &Mutex<HashMap<u64, CancelHandle>>,
    shared: &Arc<EdgeShared>,
) {
    while let Ok(msg) = rx.recv() {
        let frame = match msg {
            WriterMsg::Frame(frame) => frame,
            WriterMsg::Ticket { request_id, ticket } => {
                let result = ticket.wait();
                lock(outstanding).remove(&request_id);
                // "Disconnect before response": armed with a panic
                // action, this simulates the server dying between
                // resolving a ticket and writing its response.
                fault::point("edge.disconnect", None);
                match result {
                    Ok(report) => {
                        shared
                            .counters
                            .requests_served
                            .fetch_add(1, Ordering::Relaxed);
                        Frame::Response(WireReport::from_report(request_id, &report))
                    }
                    Err(error) => Frame::Error(WireError {
                        request_id,
                        code: proto::grain_error_code(&error),
                        message: error.to_string(),
                    }),
                }
            }
        };
        fault::point("edge.write", None);
        if proto::write_frame(write_half, &frame).is_err() {
            return;
        }
        let _ = write_half.flush();
    }
}

fn refuse_protocol(stream: &mut TcpStream, shared: &Arc<EdgeShared>, err: &FrameError) {
    match err {
        FrameError::Protocol(message) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            send_error(stream, 0, proto::CODE_PROTOCOL, message);
        }
        FrameError::Closed | FrameError::Io(_) => {}
    }
}

fn send_error(stream: &mut TcpStream, request_id: u64, code: u16, message: &str) {
    let _ = proto::write_frame(
        stream,
        &Frame::Error(WireError {
            request_id,
            code,
            message: message.to_string(),
        }),
    );
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

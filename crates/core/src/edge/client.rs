//! A blocking client for the edge wire protocol.
//!
//! [`EdgeClient`] is the reference peer the conformance suite, the
//! soak tests, and the load-generator binary all drive. `request` is
//! the one-shot convenience; `send` / `recv` split submission from
//! completion so open-loop generators can pipeline many requests down
//! one connection and match responses back up by correlation id.

use super::proto::{self, Frame, FrameError, Hello, HelloAck, WireError, WireReport, WireRequest};
use crate::cancel::OnDeadline;
use crate::service::SelectionRequest;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

/// How talking to the edge can fail, client-side.
#[derive(Debug)]
pub enum EdgeError {
    /// Transport failure (connect, read, write, or mid-frame EOF).
    Io(std::io::Error),
    /// The server closed the connection.
    Disconnected,
    /// This end received structurally invalid bytes.
    Protocol(String),
    /// The server answered with a typed error frame; `code` is a
    /// [`grain_error_code`](proto::grain_error_code) (1–16) or one of
    /// the edge-level `CODE_*` constants (≥ 64).
    Remote {
        /// Correlation id of the failing request (0 = connection-level).
        request_id: u64,
        /// The wire error code.
        code: u16,
        /// Human-readable rendering from the server.
        message: String,
    },
}

impl EdgeError {
    /// The remote error code, if this is a [`EdgeError::Remote`].
    #[must_use]
    pub fn remote_code(&self) -> Option<u16> {
        match self {
            EdgeError::Remote { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl std::fmt::Display for EdgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeError::Io(e) => write!(f, "edge i/o error: {e}"),
            EdgeError::Disconnected => write!(f, "edge closed the connection"),
            EdgeError::Protocol(message) => write!(f, "edge protocol error: {message}"),
            EdgeError::Remote { code, message, .. } => {
                write!(f, "edge error {code}: {message}")
            }
        }
    }
}

impl std::error::Error for EdgeError {}

impl From<FrameError> for EdgeError {
    fn from(err: FrameError) -> Self {
        match err {
            FrameError::Closed => EdgeError::Disconnected,
            FrameError::Io(e) => EdgeError::Io(e),
            FrameError::Protocol(message) => EdgeError::Protocol(message),
        }
    }
}

impl From<WireError> for EdgeError {
    fn from(err: WireError) -> Self {
        EdgeError::Remote {
            request_id: err.request_id,
            code: err.code,
            message: err.message,
        }
    }
}

/// Scheduling envelope of one client-side request; the default is
/// priority 0, no deadline, fail-on-deadline.
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestOptions {
    /// Dispatch priority; higher runs first.
    pub priority: u8,
    /// Relative deadline in milliseconds (`0` = none).
    pub deadline_ms: u32,
    /// Mid-selection degradation policy.
    pub on_deadline: OnDeadline,
}

/// A connected, authenticated edge connection.
#[derive(Debug)]
pub struct EdgeClient {
    stream: TcpStream,
    ack: HelloAck,
    max_frame_len: usize,
    next_id: u64,
}

impl EdgeClient {
    /// Connects, sends the hello, and waits for the acknowledgement.
    /// Refusals (unknown tenant, bad secret, server at capacity) come
    /// back as [`EdgeError::Remote`].
    pub fn connect(
        addr: impl ToSocketAddrs,
        tenant: impl Into<String>,
        secret: impl Into<String>,
    ) -> Result<Self, EdgeError> {
        let mut stream = TcpStream::connect(addr).map_err(EdgeError::Io)?;
        stream.set_nodelay(true).ok();
        proto::write_frame(
            &mut stream,
            &Frame::Hello(Hello {
                tenant: tenant.into(),
                secret: secret.into(),
            }),
        )
        .map_err(EdgeError::Io)?;
        let max_frame_len = proto::DEFAULT_MAX_FRAME_LEN;
        match proto::read_frame(&mut stream, max_frame_len)? {
            Frame::HelloAck(ack) => Ok(Self {
                stream,
                ack,
                max_frame_len,
                next_id: 1,
            }),
            Frame::Error(err) => Err(err.into()),
            _ => Err(EdgeError::Protocol(
                "expected a hello-ack or error frame".into(),
            )),
        }
    }

    /// The admission parameters the server acknowledged for this tenant.
    #[must_use]
    pub fn ack(&self) -> HelloAck {
        self.ack
    }

    /// Sends one request down the pipe and returns its correlation id
    /// (without waiting for the response — pair with [`EdgeClient::recv`]).
    pub fn send(
        &mut self,
        request: SelectionRequest,
        options: RequestOptions,
    ) -> Result<u64, EdgeError> {
        let request_id = self.next_id;
        self.next_id += 1;
        proto::write_frame(
            &mut self.stream,
            &Frame::Request(Box::new(WireRequest {
                request_id,
                priority: options.priority,
                deadline_ms: options.deadline_ms,
                on_deadline: options.on_deadline,
                request,
            })),
        )
        .map_err(EdgeError::Io)?;
        Ok(request_id)
    }

    /// Receives the next response or error frame in server-write order.
    /// Per-request failures (rate limits, scheduler rejections) are
    /// `Err(EdgeError::Remote { .. })` carrying the request id.
    pub fn recv(&mut self) -> Result<WireReport, EdgeError> {
        match proto::read_frame(&mut self.stream, self.max_frame_len)? {
            Frame::Response(report) => Ok(report),
            Frame::Error(err) => Err(err.into()),
            _ => Err(EdgeError::Protocol(
                "expected a response or error frame".into(),
            )),
        }
    }

    /// One-shot convenience: [`EdgeClient::send`] then
    /// [`EdgeClient::recv`].
    pub fn request(
        &mut self,
        request: SelectionRequest,
        options: RequestOptions,
    ) -> Result<WireReport, EdgeError> {
        self.send(request, options)?;
        self.recv()
    }

    /// Severs the connection without waiting for in-flight responses —
    /// the disconnect the server turns into cancellation of everything
    /// this connection still has queued or running.
    pub fn abandon(self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Escape hatch for protocol tests: the raw connected stream.
    #[must_use]
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }
}

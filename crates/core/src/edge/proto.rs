//! The edge wire protocol: length-prefixed frames in the store's
//! flat-binary dialect.
//!
//! Every frame is a `u32` little-endian payload length followed by the
//! payload itself:
//!
//! | offset | field | encoding |
//! |---|---|---|
//! | 0 | payload length | `u32` LE (≤ the connection's max frame length) |
//! | 4 | magic | `u32` LE, `b"GRNE"` |
//! | 8 | version | `u8`, currently 1 |
//! | 9 | kind | `u8` (1 Hello, 2 HelloAck, 3 Request, 4 Response, 5 Error) |
//! | 10 | body | kind-specific flat binary |
//! | len−4 | checksum | `u64` FNV-1a over payload bytes before it |
//!
//! The body dialect matches `store.rs`: all integers little-endian,
//! strings as `u32` length + UTF-8 bytes, lists as `u32` element count +
//! elements, `f32`/`f64` by IEEE bit pattern (so round-trips are
//! bit-exact — the property the wire bit-identity contract rests on),
//! enums as `u8`/`u16` tags. **Any** structural violation — short
//! payload, bad magic, unknown version or tag, checksum mismatch, lying
//! length prefix, trailing bytes — decodes to [`FrameError::Protocol`],
//! never a panic; payload truncation by the peer surfaces as
//! [`FrameError::Io`] and a clean close at a frame boundary as
//! [`FrameError::Closed`].

use crate::cancel::{CancelCause, OnDeadline};
use crate::config::{DiversityKind, GrainConfig, GrainVariant, GreedyAlgorithm, PruneStrategy};
use crate::error::{DeadlineStage, GrainError};
use crate::selector::{Completion, SelectionOutcome};
use crate::service::{Budget, PoolEvent, SelectionReport, SelectionRequest};
use grain_influence::index::ThetaRule;
use grain_prop::Kernel;
use std::io::{Read, Write};

/// Frame magic, `b"GRNE"` read as a little-endian `u32`.
pub const EDGE_MAGIC: u32 = u32::from_le_bytes(*b"GRNE");

/// Wire codec version; bumped on any layout change.
pub const EDGE_VERSION: u8 = 1;

/// Default per-connection frame-size cap (16 MiB) — large candidate
/// lists fit, but a hostile length prefix cannot reserve unbounded
/// memory.
pub const DEFAULT_MAX_FRAME_LEN: usize = 16 << 20;

/// Smallest structurally possible payload: magic + version + kind +
/// checksum with an empty body.
pub const MIN_PAYLOAD_LEN: usize = 4 + 1 + 1 + 8;

/// 64-bit FNV-1a over a byte string (the store's checksum primitive,
/// restated over the frame payload).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Error codes
// ---------------------------------------------------------------------------

/// Edge-level error code: admission refused by the tenant's token bucket.
pub const CODE_RATE_LIMITED: u16 = 64;
/// Edge-level error code: the peer sent structurally invalid bytes.
pub const CODE_PROTOCOL: u16 = 65;
/// Edge-level error code: hello secret mismatch.
pub const CODE_UNAUTHENTICATED: u16 = 66;
/// Edge-level error code: the connection cap is reached.
pub const CODE_AT_CAPACITY: u16 = 67;
/// Edge-level error code: hello named a tenant the server does not serve.
pub const CODE_UNKNOWN_TENANT: u16 = 68;

/// The wire code of a [`GrainError`]: 1-based declaration order (with
/// the three deadline stages split out), stable per [`EDGE_VERSION`].
/// Codes ≥ 64 are edge-level (see the `CODE_*` constants) and never
/// produced by this function.
#[must_use]
pub fn grain_error_code(error: &GrainError) -> u16 {
    match error {
        GrainError::InvalidConfig { .. } => 1,
        GrainError::FeatureShape { .. } => 2,
        GrainError::UnknownGraph { .. } => 3,
        GrainError::GraphAlreadyRegistered { .. } => 4,
        GrainError::CandidateOutOfRange { .. } => 5,
        GrainError::InvalidBudget { .. } => 6,
        GrainError::EngineBuildAbandoned { .. } => 7,
        GrainError::QueueFull { .. } => 8,
        GrainError::DeadlineExceeded {
            stage: DeadlineStage::AtSubmit,
        } => 9,
        GrainError::DeadlineExceeded {
            stage: DeadlineStage::InQueue,
        } => 10,
        GrainError::DeadlineExceeded {
            stage: DeadlineStage::MidSelection,
        } => 11,
        GrainError::Cancelled => 12,
        GrainError::SelectionPanicked { .. } => 13,
        GrainError::InvalidDelta { .. } => 14,
        GrainError::StoreCorrupt { .. } => 15,
        GrainError::SchedulerShutdown => 16,
    }
}

// ---------------------------------------------------------------------------
// Frame types
// ---------------------------------------------------------------------------

/// First frame of every connection: the client names its tenant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Tenant id to authenticate as.
    pub tenant: String,
    /// Shared secret; empty when the tenant is configured without one.
    pub secret: String,
}

/// Server acknowledgement of a successful [`Hello`], echoing the
/// tenant's admission parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HelloAck {
    /// The tenant's weighted-fair dispatch weight.
    pub weight: u32,
    /// The tenant's token-bucket refill rate, requests per second.
    pub rate_per_sec: f64,
    /// The tenant's token-bucket burst capacity.
    pub burst: f64,
}

/// A [`SelectionRequest`] plus its scheduling envelope, as framed on the
/// wire. `request_id` is client-chosen and echoed on the response so
/// pipelined requests can be matched up.
#[derive(Clone, Debug)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed on the response.
    pub request_id: u64,
    /// Dispatch priority; higher runs first.
    pub priority: u8,
    /// Relative deadline in milliseconds from server receipt; `0` means
    /// no deadline. (Relative, not absolute: the two ends do not share a
    /// clock.)
    pub deadline_ms: u32,
    /// Mid-selection degradation policy when the deadline trips.
    pub on_deadline: OnDeadline,
    /// The selection to run.
    pub request: SelectionRequest,
}

/// The deterministic core of a [`SelectionReport`], as framed on the
/// wire.
///
/// Pool bookkeeping (`pool_stats`, `artifact_builds`, timings) is
/// deliberately *not* carried: those fields describe the serving
/// process, not the selection, and differ between a warm and a cold
/// server answering the same request. Everything that is a pure function
/// of `(corpus, request)` — selections, traces, activated sets,
/// diversity values, evaluation counts — crosses the wire bit-exactly,
/// which is what the wire ⇔ in-process bit-identity tests assert.
#[derive(Clone, Debug, PartialEq)]
pub struct WireReport {
    /// Echo of the request's correlation id.
    pub request_id: u64,
    /// What happened in the server's engine pool (informational; not
    /// part of the bit-identity contract).
    pub pool_event: PoolEvent,
    /// Resolved budgets, one per outcome.
    pub budgets: Vec<usize>,
    /// One outcome per resolved budget.
    pub outcomes: Vec<WireOutcome>,
}

/// The deterministic fields of one [`SelectionOutcome`] (timings, which
/// are wall-clock and never bit-stable, stay server-side).
#[derive(Clone, Debug, PartialEq)]
pub struct WireOutcome {
    /// Selected nodes in pick order.
    pub selected: Vec<u32>,
    /// `F(S)` after each pick.
    pub objective_trace: Vec<f64>,
    /// Final activated set `σ(S)`, sorted.
    pub sigma: Vec<u32>,
    /// Final unnormalized diversity value `D(S)`.
    pub diversity_value: f64,
    /// Marginal-gain evaluations spent.
    pub evaluations: usize,
    /// Candidate count after §3.4 pruning.
    pub candidates_after_prune: usize,
    /// Whether the run completed or degraded to an anytime prefix.
    pub completion: Completion,
}

impl WireOutcome {
    /// Projects a [`SelectionOutcome`] onto its wire-carried fields.
    #[must_use]
    pub fn from_outcome(outcome: &SelectionOutcome) -> Self {
        Self {
            selected: outcome.selected.clone(),
            objective_trace: outcome.objective_trace.clone(),
            sigma: outcome.sigma.clone(),
            diversity_value: outcome.diversity_value,
            evaluations: outcome.evaluations,
            candidates_after_prune: outcome.candidates_after_prune,
            completion: outcome.completion,
        }
    }
}

impl WireReport {
    /// Projects a served [`SelectionReport`] onto its wire-carried
    /// fields under the given correlation id.
    #[must_use]
    pub fn from_report(request_id: u64, report: &SelectionReport) -> Self {
        Self {
            request_id,
            pool_event: report.pool_event,
            budgets: report.budgets.clone(),
            outcomes: report
                .outcomes
                .iter()
                .map(WireOutcome::from_outcome)
                .collect(),
        }
    }
}

/// A typed failure frame: either a [`GrainError`] that the scheduler /
/// service returned (codes 1–16) or an edge-level refusal (codes ≥ 64).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Echo of the failing request's correlation id; `0` for
    /// connection-level errors (bad hello, protocol violations).
    pub request_id: u64,
    /// Error code; see [`grain_error_code`] and the `CODE_*` constants.
    pub code: u16,
    /// Human-readable rendering of the error.
    pub message: String,
}

/// Every frame the protocol can carry.
#[derive(Clone, Debug)]
pub enum Frame {
    /// Client → server: authenticate a tenant.
    Hello(Hello),
    /// Server → client: hello accepted.
    HelloAck(HelloAck),
    /// Client → server: run a selection.
    Request(Box<WireRequest>),
    /// Server → client: the selection's deterministic result.
    Response(WireReport),
    /// Server → client: a typed failure.
    Error(WireError),
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello(_) => 1,
            Frame::HelloAck(_) => 2,
            Frame::Request(_) => 3,
            Frame::Response(_) => 4,
            Frame::Error(_) => 5,
        }
    }
}

/// How reading a frame can fail.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// I/O failure, including EOF in the middle of a frame.
    Io(std::io::Error),
    /// Structurally invalid bytes; the message names the first violation.
    Protocol(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Protocol(message) => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for FrameError {}

// ---------------------------------------------------------------------------
// Flat-binary cursors
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn count(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("list beyond u32 length"));
    }
    fn str(&mut self, s: &str) {
        self.count(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn u32s(&mut self, vs: &[u32]) {
        self.count(vs.len());
        for &v in vs {
            self.u32(v);
        }
    }
    fn f64s(&mut self, vs: &[f64]) {
        self.count(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }
    fn usizes(&mut self, vs: &[usize]) {
        self.count(vs.len());
        for &v in vs {
            self.usize(v);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DecResult<T> = Result<T, String>;

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        if n > self.remaining() {
            return Err(format!(
                "body overrun: wanted {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> DecResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> DecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> DecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn usize(&mut self) -> DecResult<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| format!("u64 {v} does not fit usize"))
    }
    fn f32(&mut self) -> DecResult<f32> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn f64(&mut self) -> DecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A list's element count, validated against the bytes actually
    /// remaining so a lying prefix cannot reserve unbounded memory.
    fn count(&mut self, elem_size: usize) -> DecResult<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_size) > self.remaining() {
            return Err(format!(
                "length prefix {n} (×{elem_size}B) exceeds remaining body {}",
                self.remaining()
            ));
        }
        Ok(n)
    }

    fn str(&mut self) -> DecResult<String> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8".to_string())
    }

    fn u32s(&mut self) -> DecResult<Vec<u32>> {
        let n = self.count(4)?;
        (0..n).map(|_| self.u32()).collect()
    }
    fn f64s(&mut self) -> DecResult<Vec<f64>> {
        let n = self.count(8)?;
        (0..n).map(|_| self.f64()).collect()
    }
    fn usizes(&mut self) -> DecResult<Vec<usize>> {
        let n = self.count(8)?;
        (0..n).map(|_| self.usize()).collect()
    }

    fn finish(self) -> DecResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after body",
                self.buf.len() - self.pos
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Body encodings
// ---------------------------------------------------------------------------

fn enc_kernel(e: &mut Enc, kernel: Kernel) {
    match kernel {
        Kernel::SymNorm { k } => {
            e.u8(0);
            e.usize(k);
        }
        Kernel::RandomWalk { k } => {
            e.u8(1);
            e.usize(k);
        }
        Kernel::Ppr { k, alpha } => {
            e.u8(2);
            e.usize(k);
            e.f32(alpha);
        }
        Kernel::TriangleIa { k } => {
            e.u8(3);
            e.usize(k);
        }
        Kernel::S2gc { k, alpha } => {
            e.u8(4);
            e.usize(k);
            e.f32(alpha);
        }
        Kernel::Gbp { k, beta } => {
            e.u8(5);
            e.usize(k);
            e.f32(beta);
        }
    }
}

fn dec_kernel(d: &mut Dec<'_>) -> DecResult<Kernel> {
    Ok(match d.u8()? {
        0 => Kernel::SymNorm { k: d.usize()? },
        1 => Kernel::RandomWalk { k: d.usize()? },
        2 => Kernel::Ppr {
            k: d.usize()?,
            alpha: d.f32()?,
        },
        3 => Kernel::TriangleIa { k: d.usize()? },
        4 => Kernel::S2gc {
            k: d.usize()?,
            alpha: d.f32()?,
        },
        5 => Kernel::Gbp {
            k: d.usize()?,
            beta: d.f32()?,
        },
        tag => return Err(format!("unknown kernel tag {tag}")),
    })
}

fn enc_theta(e: &mut Enc, theta: ThetaRule) {
    match theta {
        ThetaRule::FixedAbsolute(t) => {
            e.u8(0);
            e.f32(t);
        }
        ThetaRule::RelativeToRowMax(t) => {
            e.u8(1);
            e.f32(t);
        }
        ThetaRule::GlobalQuantile(q) => {
            e.u8(2);
            e.f64(q);
        }
    }
}

fn dec_theta(d: &mut Dec<'_>) -> DecResult<ThetaRule> {
    Ok(match d.u8()? {
        0 => ThetaRule::FixedAbsolute(d.f32()?),
        1 => ThetaRule::RelativeToRowMax(d.f32()?),
        2 => ThetaRule::GlobalQuantile(d.f64()?),
        tag => return Err(format!("unknown theta tag {tag}")),
    })
}

fn variant_tag(variant: GrainVariant) -> u8 {
    match variant {
        GrainVariant::Full => 0,
        GrainVariant::NoDiversity => 1,
        GrainVariant::NoMagnitude => 2,
        GrainVariant::ClassicCoverage => 3,
    }
}

fn dec_variant(d: &mut Dec<'_>) -> DecResult<GrainVariant> {
    Ok(match d.u8()? {
        0 => GrainVariant::Full,
        1 => GrainVariant::NoDiversity,
        2 => GrainVariant::NoMagnitude,
        3 => GrainVariant::ClassicCoverage,
        tag => return Err(format!("unknown variant tag {tag}")),
    })
}

fn enc_config(e: &mut Enc, config: &GrainConfig) {
    enc_kernel(e, config.kernel);
    enc_theta(e, config.theta);
    e.f32(config.radius);
    e.f64(config.gamma);
    e.f32(config.influence_eps);
    e.usize(config.influence_row_top_k);
    e.u8(match config.diversity {
        DiversityKind::Ball => 0,
        DiversityKind::Nn => 1,
    });
    e.u8(match config.algorithm {
        GreedyAlgorithm::Plain => 0,
        GreedyAlgorithm::Lazy => 1,
    });
    match config.prune {
        None => e.u8(0),
        Some(PruneStrategy::Degree { keep_fraction }) => {
            e.u8(1);
            e.f64(keep_fraction);
        }
        Some(PruneStrategy::WalkMass { keep_fraction }) => {
            e.u8(2);
            e.f64(keep_fraction);
        }
    }
    e.u8(variant_tag(config.variant));
    e.usize(config.parallelism);
    e.usize(config.cancel_check_every);
}

fn dec_config(d: &mut Dec<'_>) -> DecResult<GrainConfig> {
    let kernel = dec_kernel(d)?;
    let theta = dec_theta(d)?;
    let radius = d.f32()?;
    let gamma = d.f64()?;
    let influence_eps = d.f32()?;
    let influence_row_top_k = d.usize()?;
    let diversity = match d.u8()? {
        0 => DiversityKind::Ball,
        1 => DiversityKind::Nn,
        tag => return Err(format!("unknown diversity tag {tag}")),
    };
    let algorithm = match d.u8()? {
        0 => GreedyAlgorithm::Plain,
        1 => GreedyAlgorithm::Lazy,
        tag => return Err(format!("unknown algorithm tag {tag}")),
    };
    let prune = match d.u8()? {
        0 => None,
        1 => Some(PruneStrategy::Degree {
            keep_fraction: d.f64()?,
        }),
        2 => Some(PruneStrategy::WalkMass {
            keep_fraction: d.f64()?,
        }),
        tag => return Err(format!("unknown prune tag {tag}")),
    };
    let variant = dec_variant(d)?;
    let parallelism = d.usize()?;
    let cancel_check_every = d.usize()?;
    Ok(GrainConfig {
        kernel,
        theta,
        radius,
        gamma,
        influence_eps,
        influence_row_top_k,
        diversity,
        algorithm,
        prune,
        variant,
        parallelism,
        cancel_check_every,
    })
}

fn enc_request(e: &mut Enc, wire: &WireRequest) {
    e.u64(wire.request_id);
    e.u8(wire.priority);
    e.u32(wire.deadline_ms);
    e.u8(match wire.on_deadline {
        OnDeadline::Fail => 0,
        OnDeadline::Partial => 1,
    });
    let request = &wire.request;
    e.str(&request.graph);
    enc_config(e, &request.config);
    match &request.budget {
        Budget::Fixed(b) => {
            e.u8(0);
            e.usize(*b);
        }
        Budget::Fraction(f) => {
            e.u8(1);
            e.f64(*f);
        }
        Budget::Sweep(budgets) => {
            e.u8(2);
            e.usizes(budgets);
        }
    }
    match &request.candidates {
        None => e.u8(0),
        Some(candidates) => {
            e.u8(1);
            e.u32s(candidates);
        }
    }
    match request.variant {
        None => e.u8(0),
        Some(variant) => {
            e.u8(1);
            e.u8(variant_tag(variant));
        }
    }
    e.u64(request.seed);
}

fn dec_request(d: &mut Dec<'_>) -> DecResult<WireRequest> {
    let request_id = d.u64()?;
    let priority = d.u8()?;
    let deadline_ms = d.u32()?;
    let on_deadline = match d.u8()? {
        0 => OnDeadline::Fail,
        1 => OnDeadline::Partial,
        tag => return Err(format!("unknown on_deadline tag {tag}")),
    };
    let graph = d.str()?;
    let config = dec_config(d)?;
    let budget = match d.u8()? {
        0 => Budget::Fixed(d.usize()?),
        1 => Budget::Fraction(d.f64()?),
        2 => Budget::Sweep(d.usizes()?),
        tag => return Err(format!("unknown budget tag {tag}")),
    };
    let candidates = match d.u8()? {
        0 => None,
        1 => Some(d.u32s()?),
        tag => return Err(format!("unknown candidates flag {tag}")),
    };
    let variant = match d.u8()? {
        0 => None,
        1 => Some(dec_variant(d)?),
        tag => return Err(format!("unknown variant flag {tag}")),
    };
    let seed = d.u64()?;
    Ok(WireRequest {
        request_id,
        priority,
        deadline_ms,
        on_deadline,
        request: SelectionRequest {
            graph,
            config,
            budget,
            candidates,
            variant,
            seed,
        },
    })
}

fn completion_tag(completion: Completion) -> u8 {
    match completion {
        Completion::Complete => 0,
        Completion::Partial {
            cause: CancelCause::Caller,
        } => 1,
        Completion::Partial {
            cause: CancelCause::Deadline,
        } => 2,
    }
}

fn dec_completion(d: &mut Dec<'_>) -> DecResult<Completion> {
    Ok(match d.u8()? {
        0 => Completion::Complete,
        1 => Completion::Partial {
            cause: CancelCause::Caller,
        },
        2 => Completion::Partial {
            cause: CancelCause::Deadline,
        },
        tag => return Err(format!("unknown completion tag {tag}")),
    })
}

fn enc_response(e: &mut Enc, report: &WireReport) {
    e.u64(report.request_id);
    e.u8(match report.pool_event {
        PoolEvent::Hit => 0,
        PoolEvent::ColdMiss => 1,
        PoolEvent::RebuildAfterEviction => 2,
        PoolEvent::JoinedBuild => 3,
        PoolEvent::CoalescedSelection => 4,
    });
    e.usizes(&report.budgets);
    e.count(report.outcomes.len());
    for outcome in &report.outcomes {
        e.u32s(&outcome.selected);
        e.f64s(&outcome.objective_trace);
        e.u32s(&outcome.sigma);
        e.f64(outcome.diversity_value);
        e.usize(outcome.evaluations);
        e.usize(outcome.candidates_after_prune);
        e.u8(completion_tag(outcome.completion));
    }
}

fn dec_response(d: &mut Dec<'_>) -> DecResult<WireReport> {
    let request_id = d.u64()?;
    let pool_event = match d.u8()? {
        0 => PoolEvent::Hit,
        1 => PoolEvent::ColdMiss,
        2 => PoolEvent::RebuildAfterEviction,
        3 => PoolEvent::JoinedBuild,
        4 => PoolEvent::CoalescedSelection,
        tag => return Err(format!("unknown pool-event tag {tag}")),
    };
    let budgets = d.usizes()?;
    let n = d.count(1)?;
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        outcomes.push(WireOutcome {
            selected: d.u32s()?,
            objective_trace: d.f64s()?,
            sigma: d.u32s()?,
            diversity_value: d.f64()?,
            evaluations: d.usize()?,
            candidates_after_prune: d.usize()?,
            completion: dec_completion(d)?,
        });
    }
    Ok(WireReport {
        request_id,
        pool_event,
        budgets,
        outcomes,
    })
}

// ---------------------------------------------------------------------------
// Frame encode / decode
// ---------------------------------------------------------------------------

/// Encodes a frame to its full on-wire bytes (length prefix included).
#[must_use]
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(EDGE_MAGIC);
    e.u8(EDGE_VERSION);
    e.u8(frame.kind());
    match frame {
        Frame::Hello(hello) => {
            e.str(&hello.tenant);
            e.str(&hello.secret);
        }
        Frame::HelloAck(ack) => {
            e.u32(ack.weight);
            e.f64(ack.rate_per_sec);
            e.f64(ack.burst);
        }
        Frame::Request(wire) => enc_request(&mut e, wire),
        Frame::Response(report) => enc_response(&mut e, report),
        Frame::Error(error) => {
            e.u64(error.request_id);
            e.u16(error.code);
            e.str(&error.message);
        }
    }
    let sum = fnv1a64(&e.buf);
    e.u64(sum);
    let mut framed = Vec::with_capacity(4 + e.buf.len());
    framed.extend_from_slice(
        &u32::try_from(e.buf.len())
            .expect("frame beyond u32")
            .to_le_bytes(),
    );
    framed.extend_from_slice(&e.buf);
    framed
}

/// Writes one frame to `w` (single `write_all`, no interleaving hazard
/// when callers serialize writes through one owner).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))
}

fn read_exact_or(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        format!("peer closed mid-frame ({filled}/{} bytes)", buf.len()),
                    ))
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Decodes one frame payload (the bytes after the length prefix).
pub fn decode_payload(payload: &[u8]) -> Result<Frame, FrameError> {
    let protocol = FrameError::Protocol;
    if payload.len() < MIN_PAYLOAD_LEN {
        return Err(protocol(format!(
            "payload of {} bytes is below the {MIN_PAYLOAD_LEN}-byte minimum",
            payload.len()
        )));
    }
    let (body, sum_bytes) = payload.split_at(payload.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    if fnv1a64(body) != stored {
        return Err(protocol("checksum mismatch".into()));
    }
    let mut d = Dec::new(body);
    let magic = d.u32().map_err(&protocol)?;
    if magic != EDGE_MAGIC {
        return Err(protocol(format!("bad magic {magic:#010x}")));
    }
    let version = d.u8().map_err(&protocol)?;
    if version != EDGE_VERSION {
        return Err(protocol(format!(
            "unsupported version {version} (this end speaks {EDGE_VERSION})"
        )));
    }
    let kind = d.u8().map_err(&protocol)?;
    let frame = match kind {
        1 => Frame::Hello(Hello {
            tenant: d.str().map_err(&protocol)?,
            secret: d.str().map_err(&protocol)?,
        }),
        2 => Frame::HelloAck(HelloAck {
            weight: d.u32().map_err(&protocol)?,
            rate_per_sec: d.f64().map_err(&protocol)?,
            burst: d.f64().map_err(&protocol)?,
        }),
        3 => Frame::Request(Box::new(dec_request(&mut d).map_err(&protocol)?)),
        4 => Frame::Response(dec_response(&mut d).map_err(&protocol)?),
        5 => Frame::Error(WireError {
            request_id: d.u64().map_err(&protocol)?,
            code: d.u16().map_err(&protocol)?,
            message: d.str().map_err(&protocol)?,
        }),
        tag => return Err(protocol(format!("unknown frame kind {tag}"))),
    };
    d.finish().map_err(&protocol)?;
    Ok(frame)
}

/// Reads one frame from `r`, enforcing `max_frame_len` on the length
/// prefix *before* allocating.
pub fn read_frame(r: &mut impl Read, max_frame_len: usize) -> Result<Frame, FrameError> {
    let mut len_bytes = [0u8; 4];
    read_exact_or(r, &mut len_bytes, true)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len < MIN_PAYLOAD_LEN {
        return Err(FrameError::Protocol(format!(
            "frame length {len} is below the {MIN_PAYLOAD_LEN}-byte minimum"
        )));
    }
    if len > max_frame_len {
        return Err(FrameError::Protocol(format!(
            "frame length {len} exceeds the {max_frame_len}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, false)?;
    decode_payload(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> WireRequest {
        WireRequest {
            request_id: 7,
            priority: 3,
            deadline_ms: 250,
            on_deadline: OnDeadline::Partial,
            request: SelectionRequest::new(
                "papers",
                GrainConfig {
                    kernel: Kernel::Ppr { k: 3, alpha: 0.15 },
                    prune: Some(PruneStrategy::WalkMass { keep_fraction: 0.5 }),
                    ..GrainConfig::nn_d()
                },
                Budget::Sweep(vec![5, 10, 20]),
            )
            .with_candidates(vec![1, 2, 3, 5, 8])
            .with_variant(GrainVariant::NoDiversity)
            .with_seed(42),
        }
    }

    fn roundtrip(frame: &Frame) -> Frame {
        let bytes = encode_frame(frame);
        let mut cursor = &bytes[..];
        read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("roundtrip")
    }

    #[test]
    fn request_roundtrips_bit_exactly() {
        let wire = sample_request();
        let Frame::Request(back) = roundtrip(&Frame::Request(Box::new(wire.clone()))) else {
            panic!("wrong kind back");
        };
        assert_eq!(back.request_id, wire.request_id);
        assert_eq!(back.priority, wire.priority);
        assert_eq!(back.deadline_ms, wire.deadline_ms);
        assert_eq!(back.on_deadline, wire.on_deadline);
        assert_eq!(back.request.graph, wire.request.graph);
        assert_eq!(back.request.config, wire.request.config);
        assert_eq!(back.request.candidates, wire.request.candidates);
        assert_eq!(back.request.variant, wire.request.variant);
        assert_eq!(back.request.seed, wire.request.seed);
        // Budget has no PartialEq; compare through the debug rendering.
        assert_eq!(
            format!("{:?}", back.request.budget),
            format!("{:?}", wire.request.budget)
        );
    }

    #[test]
    fn response_roundtrips_bit_exactly() {
        let report = WireReport {
            request_id: 9,
            pool_event: PoolEvent::CoalescedSelection,
            budgets: vec![5, 10],
            outcomes: vec![WireOutcome {
                selected: vec![4, 2, 9],
                objective_trace: vec![0.1, 0.2 + 0.1, 0.30000000000000004],
                sigma: vec![1, 2, 3, 4],
                diversity_value: 1.25,
                evaluations: 17,
                candidates_after_prune: 40,
                completion: Completion::Partial {
                    cause: CancelCause::Deadline,
                },
            }],
        };
        let Frame::Response(back) = roundtrip(&Frame::Response(report.clone())) else {
            panic!("wrong kind back");
        };
        assert_eq!(back, report);
    }

    #[test]
    fn corrupt_payload_is_a_typed_protocol_error_not_a_panic() {
        let mut bytes = encode_frame(&Frame::Request(Box::new(sample_request())));
        // Flip one body byte: checksum catches it.
        bytes[20] ^= 0xFF;
        let mut cursor = &bytes[..];
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::Protocol(_))
        ));
    }

    #[test]
    fn truncated_frame_is_an_io_error_and_clean_close_is_closed() {
        let bytes = encode_frame(&Frame::Hello(Hello {
            tenant: "acme".into(),
            secret: String::new(),
        }));
        let mut truncated = &bytes[..bytes.len() - 3];
        assert!(matches!(
            read_frame(&mut truncated, DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::Io(_))
        ));
        let mut empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut empty, DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let bytes = (u32::MAX).to_le_bytes();
        let mut cursor = &bytes[..];
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::Protocol(_))
        ));
    }
}

//! Typed errors for the Grain selection API.
//!
//! Every fallible operation in `grain-core` — configuration validation,
//! engine construction, service requests — returns [`GrainError`] instead
//! of a bare `String`, so callers can match on the failure class (and the
//! serving tier can map classes onto response codes) while `Display` still
//! yields the precise human-readable message the old strings carried.

use std::error::Error;
use std::fmt;

/// Result alias used throughout `grain-core`.
pub type GrainResult<T> = Result<T, GrainError>;

/// Where along the scheduling path a request's deadline was discovered to
/// have passed (see [`GrainError::DeadlineExceeded`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadlineStage {
    /// The deadline had already passed when the request was submitted;
    /// the scheduler rejected it without queueing.
    AtSubmit,
    /// The deadline passed while the request waited in the queue; the
    /// scheduler shed it at dequeue instead of running dead work.
    InQueue,
    /// The deadline passed while the selection was already running; the
    /// engine observed it at a cooperative checkpoint (a greedy round
    /// boundary, an evaluation block, or an artifact-build stage
    /// boundary) and unwound. Requests with
    /// [`OnDeadline::Partial`](crate::cancel::OnDeadline) receive the
    /// greedy prefix instead of this error.
    MidSelection,
}

/// Everything that can go wrong answering a selection request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GrainError {
    /// A [`crate::GrainConfig`] field is outside its legal range.
    InvalidConfig {
        /// The offending field ("theta", "radius", "gamma", ...).
        field: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The feature matrix does not have one row per graph node.
    FeatureShape {
        /// Rows in the offered feature matrix.
        feature_rows: usize,
        /// Nodes in the graph.
        num_nodes: usize,
    },
    /// A request named a graph id never registered with the service.
    UnknownGraph {
        /// The unresolved graph id.
        graph: String,
    },
    /// A graph id was registered twice. Corpora are immutable once
    /// registered (pooled engines may hold them), so re-registration is
    /// rejected even with identical data.
    GraphAlreadyRegistered {
        /// The duplicated graph id.
        graph: String,
    },
    /// A candidate node id is not a node of the requested graph.
    CandidateOutOfRange {
        /// The offending candidate id.
        candidate: u32,
        /// Nodes in the graph.
        num_nodes: usize,
    },
    /// A [`crate::service::Budget`] cannot be resolved against the pool.
    InvalidBudget {
        /// Human-readable description of the violation.
        message: String,
    },
    /// An engine build was abandoned (the building thread panicked) while
    /// other requests were waiting on its build latch. The waiters get
    /// this error instead of hanging; retrying the request starts a fresh
    /// build.
    EngineBuildAbandoned {
        /// The graph id whose engine build died.
        graph: String,
    },
    /// The scheduler's submission queue is at capacity; the request was
    /// rejected at admission instead of growing the queue without bound.
    /// Back off and resubmit, or raise
    /// [`crate::scheduler::SchedulerConfig::queue_capacity`].
    QueueFull {
        /// The configured queue capacity the submission ran into.
        capacity: usize,
    },
    /// A request's deadline passed before its selection completed. The
    /// `stage` says whether the scheduler refused it at submission, shed
    /// it at dequeue, or the engine unwound it mid-selection at a
    /// cooperative checkpoint.
    DeadlineExceeded {
        /// Where the expiry was detected.
        stage: DeadlineStage,
    },
    /// The request's [`CancelToken`](crate::cancel::CancelToken) was
    /// cancelled by its caller (for a coalesced group: by the *last*
    /// live waiter) and the run unwound at a cooperative checkpoint.
    /// Nothing was delivered; retrying starts fresh.
    Cancelled,
    /// The selection for this request panicked. Panic isolation confines
    /// the damage to exactly this request: sibling requests in the same
    /// batch, the worker thread, and the engine pool all keep working.
    SelectionPanicked {
        /// The graph id whose selection panicked.
        graph: String,
    },
    /// A [`GraphDelta`](crate::streaming::GraphDelta) failed validation
    /// against the current corpus snapshot: an endpoint out of range, a
    /// self-loop, an insert over a live edge, a delete of a missing edge,
    /// a non-finite weight or feature value, a duplicate edit, or a
    /// feature batch of the wrong width. The corpus is untouched.
    InvalidDelta {
        /// Human-readable description of the violation.
        message: String,
    },
    /// An on-disk artifact in the [`ArtifactStore`](crate::store::ArtifactStore)
    /// failed validation: truncated payload, bad magic, checksum mismatch,
    /// unknown codec version, or a content-address/dimension mismatch
    /// against the requesting corpus. The store treats the file as absent
    /// and the caller falls through to a normal cold build — a corrupt
    /// artifact is never adopted, and never crashes a request.
    StoreCorrupt {
        /// Human-readable description of the validation failure.
        message: String,
    },
    /// The scheduler was shut down: either the submission arrived after
    /// [`crate::scheduler::Scheduler::shutdown`], or the scheduler (and
    /// with it the worker that would have answered) was dropped while the
    /// ticket was still unresolved.
    SchedulerShutdown,
}

impl fmt::Display for GrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrainError::InvalidConfig { field, message } => {
                write!(f, "invalid config field `{field}`: {message}")
            }
            GrainError::FeatureShape {
                feature_rows,
                num_nodes,
            } => write!(
                f,
                "feature rows ({feature_rows}) must match node count ({num_nodes})"
            ),
            GrainError::UnknownGraph { graph } => {
                write!(f, "graph {graph:?} is not registered with the service")
            }
            GrainError::GraphAlreadyRegistered { graph } => {
                write!(f, "graph {graph:?} is already registered")
            }
            GrainError::CandidateOutOfRange {
                candidate,
                num_nodes,
            } => write!(
                f,
                "candidate {candidate} out of range for a graph of {num_nodes} nodes"
            ),
            GrainError::InvalidBudget { message } => write!(f, "invalid budget: {message}"),
            GrainError::EngineBuildAbandoned { graph } => write!(
                f,
                "engine build for graph {graph:?} was abandoned mid-flight; retry the request"
            ),
            GrainError::QueueFull { capacity } => write!(
                f,
                "scheduler queue is full ({capacity} pending selections); back off and resubmit"
            ),
            GrainError::DeadlineExceeded { stage } => match stage {
                DeadlineStage::AtSubmit => {
                    write!(f, "deadline had already passed at submission")
                }
                DeadlineStage::InQueue => {
                    write!(f, "deadline passed while the request waited in the queue")
                }
                DeadlineStage::MidSelection => {
                    write!(
                        f,
                        "deadline passed mid-selection; the run was cancelled at a checkpoint"
                    )
                }
            },
            GrainError::Cancelled => {
                write!(f, "request was cancelled by its caller before completing")
            }
            GrainError::SelectionPanicked { graph } => write!(
                f,
                "selection for graph {graph:?} panicked; the failure was isolated to this request"
            ),
            GrainError::InvalidDelta { message } => {
                write!(f, "invalid graph delta: {message}")
            }
            GrainError::StoreCorrupt { message } => {
                write!(f, "artifact store: {message}; falling back to a cold build")
            }
            GrainError::SchedulerShutdown => {
                write!(f, "scheduler is shut down; the request was not served")
            }
        }
    }
}

impl Error for GrainError {}

impl GrainError {
    /// Wraps a validation message from a lower-level crate (e.g.
    /// `ThetaRule::validate`) as an [`GrainError::InvalidConfig`].
    pub fn config(field: &'static str, message: impl Into<String>) -> Self {
        GrainError::InvalidConfig {
            field,
            message: message.into(),
        }
    }

    /// Wraps a delta-validation message as [`GrainError::InvalidDelta`].
    pub fn delta(message: impl Into<String>) -> Self {
        GrainError::InvalidDelta {
            message: message.into(),
        }
    }

    /// Wraps an artifact-store validation message as
    /// [`GrainError::StoreCorrupt`].
    pub fn store(message: impl Into<String>) -> Self {
        GrainError::StoreCorrupt {
            message: message.into(),
        }
    }

    /// Whether a retry can plausibly succeed without any caller-side
    /// change. Exactly two classes qualify: an abandoned engine build
    /// (the racing builder died; a fresh attempt rebuilds cleanly) and a
    /// full queue (admission-control shedding; the queue drains). This
    /// is the whitelist [`RetryPolicy::run`](crate::retry::RetryPolicy)
    /// consults.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            GrainError::EngineBuildAbandoned { .. } | GrainError::QueueFull { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_detail() {
        let e = GrainError::config("gamma", "must lie in [0,10], got -1");
        assert_eq!(
            e.to_string(),
            "invalid config field `gamma`: must lie in [0,10], got -1"
        );
        let e = GrainError::FeatureShape {
            feature_rows: 3,
            num_nodes: 9,
        };
        assert!(e.to_string().contains("feature rows (3)"));
        let e = GrainError::UnknownGraph {
            graph: "cora".into(),
        };
        assert!(e.to_string().contains("\"cora\""));
    }

    #[test]
    fn errors_are_matchable_and_comparable() {
        let a = GrainError::InvalidBudget {
            message: "empty sweep".into(),
        };
        assert_eq!(
            a,
            GrainError::InvalidBudget {
                message: "empty sweep".into()
            }
        );
        assert!(matches!(a, GrainError::InvalidBudget { .. }));
        // It is a std error (boxable, `?`-compatible with Box<dyn Error>).
        let boxed: Box<dyn std::error::Error> = Box::new(a);
        assert!(boxed.source().is_none());
    }

    #[test]
    fn scheduler_errors_distinguish_their_stage() {
        assert_ne!(
            GrainError::DeadlineExceeded {
                stage: DeadlineStage::AtSubmit
            },
            GrainError::DeadlineExceeded {
                stage: DeadlineStage::InQueue
            }
        );
        assert!(GrainError::QueueFull { capacity: 8 }
            .to_string()
            .contains("8 pending"));
        assert!(GrainError::DeadlineExceeded {
            stage: DeadlineStage::InQueue
        }
        .to_string()
        .contains("queue"));
        assert!(GrainError::SchedulerShutdown.to_string().contains("shut"));
    }

    #[test]
    fn retryable_whitelist_is_exactly_build_abandoned_and_queue_full() {
        assert!(GrainError::EngineBuildAbandoned {
            graph: "papers".into()
        }
        .is_retryable());
        assert!(GrainError::QueueFull { capacity: 2 }.is_retryable());
        for err in [
            GrainError::Cancelled,
            GrainError::SchedulerShutdown,
            GrainError::DeadlineExceeded {
                stage: DeadlineStage::MidSelection,
            },
            GrainError::SelectionPanicked {
                graph: "papers".into(),
            },
            GrainError::config("theta", "bad"),
            GrainError::delta("edge (3, 3) is a self-loop"),
            GrainError::store("bad magic"),
        ] {
            assert!(!err.is_retryable(), "{err}");
        }
    }

    #[test]
    fn store_corrupt_renders_fallback_hint() {
        let e = GrainError::store("checksum mismatch in rows.grain");
        assert_eq!(
            e.to_string(),
            "artifact store: checksum mismatch in rows.grain; falling back to a cold build"
        );
        assert!(matches!(e, GrainError::StoreCorrupt { .. }));
    }

    #[test]
    fn invalid_delta_renders_its_message() {
        let e = GrainError::delta("edge (1, 2) already present");
        assert_eq!(
            e.to_string(),
            "invalid graph delta: edge (1, 2) already present"
        );
    }

    #[test]
    fn resilience_errors_render_their_context() {
        assert!(GrainError::Cancelled.to_string().contains("cancelled"));
        let e = GrainError::SelectionPanicked {
            graph: "cora".into(),
        };
        assert!(e.to_string().contains("\"cora\""));
        assert!(e.to_string().contains("isolated"));
        assert!(GrainError::DeadlineExceeded {
            stage: DeadlineStage::MidSelection
        }
        .to_string()
        .contains("mid-selection"));
    }
}

//! The staged, artifact-caching selection engine.
//!
//! Grain's pipeline is model-free precompute: for a fixed graph and
//! feature matrix, every §3 artifact is a pure function of a few config
//! fields —
//!
//! | artifact | depends on |
//! |---|---|
//! | transition matrix `T` | `kernel.transition_kind()` |
//! | propagated features `X^(k)` | `kernel` |
//! | normalized embedding | `kernel` |
//! | influence rows `I_v(·, k)` | `kernel`, `influence_eps` |
//! | activation index `act[u]` | rows + `theta` |
//! | ball membership lists | embedding + `radius` |
//! | NN `d_max` constant | embedding |
//!
//! — and only the greedy maximization varies with `budget` and the
//! ablation variant. [`SelectionEngine`] materializes each artifact once,
//! keyed by exactly the fields above, and reuses it across `select` calls:
//! a budget sweep, a γ/θ sensitivity scan, or a serving loop answering
//! many selection requests over one corpus pays the heavy stages once.
//!
//! The artifact hot paths (propagation SpMM rounds, influence rows, the
//! activation-index inversion, ball lists, NN `d_max`) run over
//! [`GrainConfig::parallelism`] worker threads with row-range
//! partitioning and fixed-order reductions, so every artifact is
//! **bit-identical at any thread count** — which is why `parallelism` is
//! not part of any cache key or of the artifact fingerprint.

use crate::cancel::{CancelCause, CancelToken, OnDeadline};
use crate::config::{DiversityKind, GrainConfig, GrainVariant, GreedyAlgorithm};
use crate::diversity::{BallDiversity, DiversityFunction, NnDiversity, NullDiversity};
use crate::error::{DeadlineStage, GrainError, GrainResult};
use crate::fault;
use crate::greedy::{lazy_greedy_ctl, plain_greedy_ctl};
use crate::objective::{DimObjective, DiversityScope};
use crate::prune::prune_candidates;
use crate::selector::{Completion, SelectionOutcome, SelectionTimings};
use grain_graph::{transition_matrix, transition_rows, CsrMatrix, Graph, TransitionKind};
use grain_influence::{ActivationIndex, InfluenceRows, ThetaRule};
use grain_linalg::{distance, DenseMatrix};
use grain_prop::cache::PropagationCache;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Exact-`d_max` cutoff for NN diversity; beyond this row count the constant
/// is estimated by anchor sampling (see `grain-linalg::distance`).
pub(crate) const NN_DMAX_EXACT_LIMIT: usize = 2048;

/// Wall-clock breakdown of one `SelectionEngine::patched` migration —
/// what each artifact's incremental repair cost, surfaced per engine in
/// [`crate::streaming::EpochReport`] so operators can see which stage a
/// slow epoch flip spent its time in.
#[derive(Clone, Copy, Debug, Default)]
pub struct PatchTimings {
    /// Transition matrix rebuild (wholesale, cold code path).
    pub transition: Duration,
    /// Dirty-row re-propagation of `X^(k)`.
    pub propagation: Duration,
    /// Embedding clone + dirty-row re-normalization.
    pub embedding: Duration,
    /// Influence-row re-walk + CSR splice.
    pub influence: Duration,
    /// Activation-index masked merge.
    pub index: Duration,
}

/// How often each artifact class has been (re)built — the cache audit
/// trail. A warm budget sweep must increment nothing after its first call;
/// a config change must increment exactly the artifacts it invalidates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Transition matrices `T` materialized.
    pub transition_builds: usize,
    /// Propagations `X^(k)` computed (per distinct kernel).
    pub propagation_builds: usize,
    /// L2-normalized embeddings derived from `X^(k)`.
    pub embedding_builds: usize,
    /// Influence-row computations.
    pub influence_builds: usize,
    /// Activation-index inversions.
    pub index_builds: usize,
    /// Diversity precomputations (ball lists or NN `d_max`).
    pub diversity_builds: usize,
    /// `select` calls answered.
    pub selections: usize,
}

impl EngineStats {
    /// The counter increments accumulated since `earlier` — the
    /// cache-miss breakdown of one request window. All-zero build counters
    /// mean the window was served entirely from warm artifacts.
    #[must_use]
    pub fn delta_since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            transition_builds: self.transition_builds - earlier.transition_builds,
            propagation_builds: self.propagation_builds - earlier.propagation_builds,
            embedding_builds: self.embedding_builds - earlier.embedding_builds,
            influence_builds: self.influence_builds - earlier.influence_builds,
            index_builds: self.index_builds - earlier.index_builds,
            diversity_builds: self.diversity_builds - earlier.diversity_builds,
            selections: self.selections - earlier.selections,
        }
    }

    /// Total artifact (re)builds in this window — zero for a fully warm
    /// request.
    #[must_use]
    pub fn total_builds(&self) -> usize {
        self.transition_builds
            + self.propagation_builds
            + self.embedding_builds
            + self.influence_builds
            + self.index_builds
            + self.diversity_builds
    }
}

/// Cache key for artifacts derived from the propagation kernel. `f32`
/// parameters are compared by bit pattern via [`grain_prop::Kernel::cache_key`].
type KernelKey = String;

/// Exact resident heap bytes of each cached artifact class — the memory
/// ledger behind [`SelectionEngine::artifact_bytes`]. All counts are
/// *current* residency: an artifact not (yet) built counts zero. The flat
/// CSR influence layout makes its count exact, and
/// [`ArtifactBytes::influence_rows_nested`] reports what the same rows
/// would cost in the retired `Vec<Vec<(u32, f32)>>` layout for comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArtifactBytes {
    /// Transition matrix `T` (CSR offsets + columns + values).
    pub transition: usize,
    /// Propagated features `X^(k)` for the active kernel (dense f32).
    pub propagation: usize,
    /// L2-normalized embedding (dense f32).
    pub embedding: usize,
    /// Influence rows in the flat CSR layout (exact).
    pub influence_rows: usize,
    /// The same influence rows under the retired nested layout (cost model).
    pub influence_rows_nested: usize,
    /// Activation index (flat CSR offsets + items).
    pub activation_index: usize,
    /// Ball membership lists (per-ball `Vec` headers + entries).
    pub balls: usize,
}

impl ArtifactBytes {
    /// Total resident bytes across all artifact classes (the CSR influence
    /// count, not the nested cost model).
    #[must_use]
    pub fn total(&self) -> usize {
        self.transition
            + self.propagation
            + self.embedding
            + self.influence_rows
            + self.activation_index
            + self.balls
    }
}

/// Ball membership lists keyed by (kernel, radius bits), shared with the
/// per-selection `BallDiversity` instances without copying; the union
/// coverage bound rides along so warm selects touch no list.
type BallCache = Option<((KernelKey, u32), (Arc<Vec<Vec<u32>>>, usize))>;

/// Staged Grain pipeline with per-artifact caching over one (graph,
/// features) pair.
///
/// Build it once per corpus, then call [`SelectionEngine::select`] per
/// request; use [`SelectionEngine::set_config`] between calls to move
/// through config space while keeping every artifact the new config does
/// not invalidate.
///
/// The engine owns its corpus through [`Arc`] handles, so it can live in a
/// long-lived pool (see [`crate::service::EnginePool`]) and share the
/// underlying graph/features with other engines and with baseline
/// selectors at zero copy cost.
pub struct SelectionEngine {
    config: GrainConfig,
    graph: Arc<Graph>,
    features: Arc<DenseMatrix>,
    propagation: PropagationCache,
    transition: Option<(TransitionKind, CsrMatrix)>,
    embedding: Option<(KernelKey, Arc<DenseMatrix>)>,
    rows: Option<((KernelKey, u32, usize), InfluenceRows)>,
    index: Option<((KernelKey, u32, usize, ThetaRule), ActivationIndex)>,
    balls: BallCache,
    nn_dmax: Option<(KernelKey, f32)>,
    stats: EngineStats,
}

impl SelectionEngine {
    /// An engine over borrowed `graph`/`features` with a validated
    /// configuration. The corpus is cloned into shared handles; callers
    /// that already hold `Arc`s (or can give up ownership) should use
    /// [`SelectionEngine::over`] instead, which copies nothing.
    pub fn new(config: GrainConfig, graph: &Graph, features: &DenseMatrix) -> GrainResult<Self> {
        Self::over(config, graph.clone(), features.clone())
    }

    /// An engine over shared corpus handles — the zero-copy constructor
    /// the serving tier uses. Accepts owned values or `Arc`s.
    pub fn over(
        config: GrainConfig,
        graph: impl Into<Arc<Graph>>,
        features: impl Into<Arc<DenseMatrix>>,
    ) -> GrainResult<Self> {
        config.validate()?;
        let graph = graph.into();
        let features = features.into();
        if features.rows() != graph.num_nodes() {
            return Err(GrainError::FeatureShape {
                feature_rows: features.rows(),
                num_nodes: graph.num_nodes(),
            });
        }
        let propagation = PropagationCache::new(Arc::clone(&graph), Arc::clone(&features));
        Ok(Self {
            config,
            graph,
            features,
            propagation,
            transition: None,
            embedding: None,
            rows: None,
            index: None,
            balls: None,
            nn_dmax: None,
            stats: EngineStats::default(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &GrainConfig {
        &self.config
    }

    /// The graph this engine serves.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The raw (unpropagated) feature matrix.
    pub fn features(&self) -> &DenseMatrix {
        &self.features
    }

    /// Shared handle to the graph this engine serves.
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// Shared handle to the raw feature matrix.
    pub fn features_arc(&self) -> Arc<DenseMatrix> {
        Arc::clone(&self.features)
    }

    /// The propagated embedding `X^(k)` under the active kernel, built or
    /// cached — the shared artifact baseline selectors (FeatProp, KCG,
    /// core-set methods) smooth their distances on, so Grain and every
    /// baseline read bit-identical propagation from one store.
    pub fn propagated(&mut self) -> Arc<DenseMatrix> {
        self.ensure_transition();
        self.ensure_propagation();
        let transition = &self.transition.as_ref().expect("transition ensured").1;
        self.propagation
            .get_with_par(self.config.kernel, transition, self.config.parallelism)
    }

    /// Seeds the propagation cache with an externally computed `X^(k)`
    /// for the active kernel, sharing the allocation — used when this
    /// engine is a private companion of another engine (e.g. a
    /// [`crate::service::GrainService`]-pooled one) that already holds
    /// the artifact, so it is never re-propagated here.
    ///
    /// # Panics
    /// Panics if `value` does not have one row per graph node.
    pub fn seed_propagated(&mut self, value: Arc<DenseMatrix>) {
        self.propagation.seed(self.config.kernel, value);
    }

    /// The cached `X^(k)` for `kernel` if this engine has already
    /// propagated (or been seeded with) it — computes nothing on a miss.
    /// Siblings over the same corpus use this to seed each other via
    /// [`SelectionEngine::seed_propagated`].
    pub fn propagated_if_cached(&self, kernel: grain_prop::Kernel) -> Option<Arc<DenseMatrix>> {
        self.propagation.get_cached(kernel)
    }

    // ---- artifact-store adoption / extraction ---------------------------
    //
    // The load path of `crate::store`: a deserialized artifact is adopted
    // into the stage cache under the exact key `ensure_*` would have built
    // it with, so the next select reads it as warm — and, critically,
    // bumps **no** build counter (adoption is not a build; the
    // save-on-build hook keys off those counters to avoid re-persisting
    // what was just loaded). Every adopter is shape-defensive and returns
    // `false` instead of panicking on a mismatched artifact, which the
    // service treats like a miss (cold build proceeds).

    /// Adopts a store-loaded `X^(k)` + power ladder for the active kernel.
    pub(crate) fn adopt_propagation(
        &mut self,
        value: Arc<DenseMatrix>,
        ladder: Vec<Arc<DenseMatrix>>,
    ) -> bool {
        if value.rows() != self.graph.num_nodes() || value.cols() != self.features.cols() {
            return false;
        }
        self.propagation
            .seed_with_ladder(self.config.kernel, value, ladder);
        true
    }

    /// Adopts store-loaded influence rows under the active
    /// (kernel, eps, top-k) cache key.
    pub(crate) fn adopt_rows(&mut self, rows: InfluenceRows) -> bool {
        if rows.num_nodes() != self.graph.num_nodes() || rows.k() != self.config.kernel.steps() {
            return false;
        }
        let key = (
            self.config.kernel.cache_key(),
            self.config.influence_eps.to_bits(),
            self.config.influence_row_top_k,
        );
        self.rows = Some((key, rows));
        true
    }

    /// Adopts a store-loaded activation index under the active
    /// (kernel, eps, top-k, theta) cache key.
    pub(crate) fn adopt_index(&mut self, index: ActivationIndex) -> bool {
        if index.num_nodes() != self.graph.num_nodes() || index.k() != self.config.kernel.steps() {
            return false;
        }
        let key = (
            self.config.kernel.cache_key(),
            self.config.influence_eps.to_bits(),
            self.config.influence_row_top_k,
            self.config.theta,
        );
        self.index = Some((key, index));
        true
    }

    /// The cached `X^(k)` + ladder for the active kernel — the save side
    /// of the store hooks. `None` until propagation has built.
    pub(crate) fn persistable_propagation(
        &self,
    ) -> Option<(Arc<DenseMatrix>, Vec<Arc<DenseMatrix>>)> {
        let value = self.propagation.get_cached(self.config.kernel)?;
        Some((value, self.propagation.cached_ladder(self.config.kernel)))
    }

    /// The cached influence rows iff their key matches the active config.
    pub(crate) fn persistable_rows(&self) -> Option<&InfluenceRows> {
        let key = (
            self.config.kernel.cache_key(),
            self.config.influence_eps.to_bits(),
            self.config.influence_row_top_k,
        );
        self.rows
            .as_ref()
            .filter(|(k, _)| *k == key)
            .map(|(_, r)| r)
    }

    /// The cached activation index iff its key matches the active config.
    pub(crate) fn persistable_index(&self) -> Option<&ActivationIndex> {
        let key = (
            self.config.kernel.cache_key(),
            self.config.influence_eps.to_bits(),
            self.config.influence_row_top_k,
            self.config.theta,
        );
        self.index
            .as_ref()
            .filter(|(k, _)| *k == key)
            .map(|(_, i)| i)
    }

    /// Swaps the configuration, keeping every cached artifact whose key
    /// fields are unchanged. Artifacts are rebuilt lazily on the next
    /// `select`, so sweeping e.g. `gamma` or `budget` rebuilds nothing and
    /// sweeping `theta` rebuilds only the activation index.
    pub fn set_config(&mut self, config: GrainConfig) -> GrainResult<()> {
        config.validate()?;
        self.config = config;
        Ok(())
    }

    /// Cache audit counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Exact resident heap bytes of every currently cached artifact —
    /// the measurement seam for size-aware pool accounting. Not-yet-built
    /// artifacts count zero, so a cold engine reports all zeros and the
    /// count grows monotonically as `select` materializes stages.
    pub fn artifact_bytes(&self) -> ArtifactBytes {
        let dense_bytes = |m: &DenseMatrix| m.rows() * m.cols() * std::mem::size_of::<f32>();
        let transition = self.transition.as_ref().map_or(0, |(_, t)| {
            (t.rows() + 1) * std::mem::size_of::<usize>()
                + t.nnz() * (std::mem::size_of::<u32>() + std::mem::size_of::<f32>())
        });
        let propagation = self.propagation.resident_bytes(self.config.kernel);
        let embedding = self.embedding.as_ref().map_or(0, |(_, e)| dense_bytes(e));
        let (influence_rows, influence_rows_nested) =
            self.rows.as_ref().map_or((0, 0), |(_, r)| {
                (r.resident_bytes(), r.nested_layout_bytes())
            });
        let activation_index = self.index.as_ref().map_or(0, |(_, i)| i.resident_bytes());
        let balls = self.balls.as_ref().map_or(0, |(_, (lists, _))| {
            lists
                .iter()
                .map(|b| std::mem::size_of::<Vec<u32>>() + b.len() * std::mem::size_of::<u32>())
                .sum()
        });
        ArtifactBytes {
            transition,
            propagation,
            embedding,
            influence_rows,
            influence_rows_nested,
            activation_index,
            balls,
        }
    }

    /// Selects up to `budget` nodes from `candidates` under the active
    /// configuration, reusing every cached artifact that is still valid.
    ///
    /// # Panics
    /// Panics if a candidate id is out of range.
    pub fn select(&mut self, candidates: &[u32], budget: usize) -> SelectionOutcome {
        self.select_variant(self.config.variant, candidates, budget)
    }

    /// Like [`SelectionEngine::select`] with the variant overridden for
    /// this call only — Table 3 ablation sweeps share all artifacts, since
    /// the variant affects only the greedy objective.
    pub fn select_variant(
        &mut self,
        variant: GrainVariant,
        candidates: &[u32],
        budget: usize,
    ) -> SelectionOutcome {
        self.select_with_cancel(
            variant,
            candidates,
            budget,
            &CancelToken::new(),
            OnDeadline::Fail,
        )
        .expect("a selection with an untripped token cannot be cancelled")
    }

    /// [`SelectionEngine::select_variant`] under cooperative cancellation.
    ///
    /// `cancel` is polled at every stage boundary (before the propagation,
    /// influence-row, and activation-index builds), **between SpMM power
    /// steps** inside propagation, **every 64 rows** inside the
    /// influence-row build, and inside greedy at every round boundary plus
    /// every [`GrainConfig::cancel_check_every`] marginal-gain evaluations
    /// — so a trip is observed within one greedy round or one check block,
    /// whichever comes first.
    ///
    /// What a trip produces depends on *why* the token tripped and on the
    /// caller's degradation policy:
    ///
    /// | cause | stage | result |
    /// |---|---|---|
    /// | caller ([`CancelToken::cancel`]) | any | [`GrainError::Cancelled`] |
    /// | deadline, [`OnDeadline::Fail`] | any | [`GrainError::DeadlineExceeded`] (`MidSelection`) |
    /// | deadline, [`OnDeadline::Partial`] | artifact build | [`GrainError::DeadlineExceeded`] (`MidSelection`) |
    /// | deadline, [`OnDeadline::Partial`] | greedy | `Ok` with [`Completion::Partial`] |
    ///
    /// Artifact builds are **never** partial: a build that observes the
    /// trip caches nothing, so the next request starts a fresh, complete
    /// build. A partial greedy result is byte-for-byte a prefix of the
    /// uncancelled run at the same config — submodularity makes the prefix
    /// a valid anytime answer with the `(1 - 1/e)` bound at its smaller
    /// effective budget (see [`SelectionOutcome::effective_budget`]).
    ///
    /// An untripped token changes no bit of the result relative to
    /// [`SelectionEngine::select_variant`].
    ///
    /// # Panics
    /// Panics if a candidate id is out of range.
    pub fn select_with_cancel(
        &mut self,
        variant: GrainVariant,
        candidates: &[u32],
        budget: usize,
        cancel: &CancelToken,
        on_deadline: OnDeadline,
    ) -> GrainResult<SelectionOutcome> {
        for &c in candidates {
            assert!(
                (c as usize) < self.graph.num_nodes(),
                "candidate {c} out of range"
            );
        }
        let t0 = Instant::now();
        cancel.checkpoint()?;

        // 1. Decoupled propagation (Eq. 6) on the kernel's transition matrix.
        self.ensure_transition();
        self.ensure_propagation_ctl(cancel)?;
        let propagation = t0.elapsed();

        // 2. Influence rows under the kernel Jacobian (Def. 3.1 / Eq. 9).
        let t1 = Instant::now();
        self.ensure_rows_ctl(cancel)?;
        let influence = t1.elapsed();

        // 3. Activation index (Def. 3.2) + diversity precomputation (§3.3).
        let t2 = Instant::now();
        self.ensure_index_ctl(cancel)?;
        self.ensure_embedding();
        let diversity = self.build_diversity(variant, cancel)?;
        // §3.4 candidate pruning is per-pool, not a cached artifact.
        let rows = &self.rows.as_ref().expect("rows ensured").1;
        let pool: Vec<u32> = match self.config.prune {
            Some(strategy) => prune_candidates(strategy, &self.graph, rows, candidates),
            None => candidates.to_vec(),
        };
        let indexing = t2.elapsed();

        // 4. Greedy DIM maximization (Algorithm 1 / CELF) — the only stage
        // that depends on budget and variant, and the only stage that may
        // degrade to a partial (anytime) result instead of failing.
        let t3 = Instant::now();
        cancel.checkpoint()?;
        let (scope, magnitude_weight, gamma) = variant_parameters(variant, self.config.gamma);
        let index = &self.index.as_ref().expect("index ensured").1;
        let mut objective =
            DimObjective::with_variant(index, diversity, gamma, magnitude_weight, scope);
        let check_every = self.config.cancel_check_every;
        let trace = match self.config.algorithm {
            GreedyAlgorithm::Plain => {
                plain_greedy_ctl(&mut objective, &pool, budget, cancel, check_every)
            }
            GreedyAlgorithm::Lazy => {
                lazy_greedy_ctl(&mut objective, &pool, budget, cancel, check_every)
            }
        };
        let greedy = t3.elapsed();

        let completion = match trace.cancelled {
            None => Completion::Complete,
            Some(CancelCause::Deadline) if on_deadline == OnDeadline::Partial => {
                Completion::Partial {
                    cause: CancelCause::Deadline,
                }
            }
            Some(CancelCause::Deadline) => {
                return Err(GrainError::DeadlineExceeded {
                    stage: DeadlineStage::MidSelection,
                })
            }
            Some(CancelCause::Caller) => return Err(GrainError::Cancelled),
        };

        self.stats.selections += 1;
        Ok(SelectionOutcome {
            sigma: objective.sigma(),
            diversity_value: objective.diversity_value(),
            selected: trace.selected,
            objective_trace: trace.objective_trace,
            evaluations: trace.evaluations,
            candidates_after_prune: pool.len(),
            completion,
            timings: SelectionTimings {
                propagation,
                influence,
                indexing,
                greedy,
                total: t0.elapsed(),
            },
        })
    }

    /// Runs one warm budget sweep: `select` at each budget in turn, all
    /// sharing the cached artifacts. Selections are bit-identical to
    /// independent one-shot runs at the same budgets.
    pub fn select_budgets(
        &mut self,
        candidates: &[u32],
        budgets: &[usize],
    ) -> Vec<SelectionOutcome> {
        budgets
            .iter()
            .map(|&b| self.select(candidates, b))
            .collect()
    }

    /// The L2-normalized rows of `X^(k)` under the active kernel (built
    /// or cached) — the embedding Grain distances diversity on; layout /
    /// interpretability consumers read it from the same store instead of
    /// re-normalizing the propagation themselves.
    pub fn normalized_embedding(&mut self) -> Arc<DenseMatrix> {
        self.ensure_transition();
        self.ensure_propagation();
        self.ensure_embedding();
        Arc::clone(&self.embedding.as_ref().expect("embedding ensured").1)
    }

    /// The activation index under the current config (built or cached) —
    /// interpretability experiments read activation lists directly.
    pub fn activation_index(&mut self) -> &ActivationIndex {
        self.ensure_transition();
        self.ensure_rows();
        self.ensure_index();
        &self.index.as_ref().expect("index ensured").1
    }

    /// The influence rows under the current config (built or cached).
    pub fn influence_rows(&mut self) -> &InfluenceRows {
        self.ensure_transition();
        self.ensure_rows();
        &self.rows.as_ref().expect("rows ensured").1
    }

    /// Derives an engine over the mutated corpus `(graph, features)` by
    /// patching this engine's cached artifacts instead of rebuilding them
    /// — the streaming fast path behind
    /// [`crate::service::GrainService::apply_update`].
    ///
    /// `dirty_transition` / `dirty_propagation` / `dirty_influence` are
    /// sorted supersets of the transition rows, `X^(k)` rows, and
    /// influence rows whose values can differ between the old and mutated
    /// corpus (see [`crate::streaming`] for the dirty-set math). Per
    /// artifact:
    ///
    /// * **transition** — dirty rows recomputed row-locally via
    ///   [`grain_graph::transition_rows`] (bit-identical float path) and
    ///   spliced into the stale matrix with
    ///   [`CsrMatrix::with_replaced_rows`]; rebuilt cold only when no
    ///   transition of the right kind is cached;
    /// * **propagation** — dirty rows re-propagated level-locally via
    ///   [`PropagationCache::repropagate_rows`] against the donor's power
    ///   ladder (`O(k · |dirty|)` SpMM rows), clean rows `memcpy`d;
    /// * **embedding** — clean rows `memcpy`d from the old embedding
    ///   (their `X^(k)` rows are bit-identical, so their normalizations
    ///   are too), dirty rows re-normalized with the same per-row op as
    ///   the full pass ([`grain_linalg::ops::l2_normalize_row`]);
    /// * **influence rows** — dirty rows re-walked via
    ///   [`InfluenceRows::with_rebuilt_rows`], clean row slices spliced;
    /// * **activation index** — inverted entries of dirty rows swapped via
    ///   [`ActivationIndex::repaired`];
    /// * **ball lists / NN `d_max`** — dropped (rebuilt lazily on the next
    ///   select that needs them).
    ///
    /// Only artifacts cached under the *active* config are migrated; stale
    /// cache slots from earlier configs are dropped. Callers must not
    /// invoke this for triangle-induced kernels (a single edge edit can
    /// dirty every triangle count, so those engines rebuild cold).
    pub(crate) fn patched(
        &self,
        graph: Arc<Graph>,
        features: Arc<DenseMatrix>,
        dirty_transition: &[u32],
        dirty_propagation: &[u32],
        dirty_influence: &[u32],
    ) -> (SelectionEngine, PatchTimings) {
        let config = self.config;
        let kind = config.kernel.transition_kind();
        debug_assert_ne!(
            kind,
            TransitionKind::TriangleInduced,
            "triangle-induced engines are rebuilt cold, not patched"
        );
        let kernel = config.kernel;
        let kernel_key = kernel.cache_key();
        let mut timings = PatchTimings::default();
        let stage = Instant::now();
        let t_new = match self.transition.as_ref().filter(|(k, _)| *k == kind) {
            Some((_, t_old)) => {
                t_old.with_replaced_rows(&transition_rows(&graph, kind, true, dirty_transition))
            }
            None => transition_matrix(&graph, kind, true),
        };
        timings.transition = stage.elapsed();
        let mut stats = self.stats;
        stats.transition_builds += 1;

        let mut propagation = PropagationCache::new(Arc::clone(&graph), Arc::clone(&features));
        let mut embedding = None;
        if let Some(old_x) = self.propagation.get_cached(kernel) {
            let stage = Instant::now();
            let old_ladder = self.propagation.cached_ladder(kernel);
            let patched_x = propagation.repropagate_rows(
                kernel,
                &t_new,
                &old_x,
                &old_ladder,
                dirty_propagation,
            );
            timings.propagation = stage.elapsed();
            stats.propagation_builds += 1;
            if let Some((_, old_e)) = self.embedding.as_ref().filter(|(k, _)| *k == kernel_key) {
                let stage = Instant::now();
                let mut e = (**old_e).clone();
                for &v in dirty_propagation {
                    let r = v as usize;
                    let row = e.row_mut(r);
                    row.copy_from_slice(patched_x.row(r));
                    grain_linalg::ops::l2_normalize_row(row);
                }
                timings.embedding = stage.elapsed();
                embedding = Some((kernel_key.clone(), Arc::new(e)));
                stats.embedding_builds += 1;
            }
        }

        let rows_key = (
            kernel_key.clone(),
            config.influence_eps.to_bits(),
            config.influence_row_top_k,
        );
        let mut rows = None;
        if let Some((key, old_rows)) = self.rows.as_ref() {
            if *key == rows_key {
                let stage = Instant::now();
                let rebuilt = old_rows.with_rebuilt_rows(
                    &t_new,
                    kernel,
                    config.influence_eps,
                    config.influence_row_top_k,
                    dirty_influence,
                );
                timings.influence = stage.elapsed();
                rows = Some((rows_key.clone(), rebuilt));
                stats.influence_builds += 1;
            }
        }

        let index_key = (
            kernel_key,
            config.influence_eps.to_bits(),
            config.influence_row_top_k,
            config.theta,
        );
        let mut index = None;
        if let (Some((key, old_index)), Some((_, new_rows))) = (self.index.as_ref(), rows.as_ref())
        {
            if *key == index_key {
                let stage = Instant::now();
                let repaired = old_index.repaired(new_rows, config.theta, dirty_influence);
                timings.index = stage.elapsed();
                index = Some((index_key, repaired));
                stats.index_builds += 1;
            }
        }

        let engine = SelectionEngine {
            config,
            graph,
            features,
            propagation,
            transition: Some((kind, t_new)),
            embedding,
            rows,
            index,
            balls: None,
            nn_dmax: None,
            stats,
        };
        (engine, timings)
    }

    fn ensure_transition(&mut self) {
        let kind = self.config.kernel.transition_kind();
        if self.transition.as_ref().map(|(k, _)| *k) != Some(kind) {
            let t = transition_matrix(&self.graph, kind, true);
            self.transition = Some((kind, t));
            self.stats.transition_builds += 1;
        }
    }

    fn ensure_propagation(&mut self) {
        self.ensure_propagation_ctl(&CancelToken::new())
            .expect("propagation with an untripped token cannot be cancelled");
    }

    /// Builds `X^(k)` unless cached, polling `cancel` between SpMM power
    /// steps. A cancelled build caches nothing (no torn artifacts) and
    /// bumps no build counter; the next request starts fresh.
    fn ensure_propagation_ctl(&mut self, cancel: &CancelToken) -> GrainResult<()> {
        let kernel = self.config.kernel;
        if self.propagation.contains(kernel) {
            return Ok(());
        }
        fault::point("engine.build.propagation", Some(cancel));
        cancel.checkpoint()?;
        let transition = &self.transition.as_ref().expect("transition ensured").1;
        match self
            .propagation
            .get_with_ctl(kernel, transition, self.config.parallelism, &|| {
                cancel.is_cancelled()
            }) {
            Some(_) => {
                self.stats.propagation_builds += 1;
                Ok(())
            }
            None => Err(cancel.cancel_error()),
        }
    }

    fn ensure_embedding(&mut self) {
        let key = self.config.kernel.cache_key();
        if self.embedding.as_ref().map(|(k, _)| k) != Some(&key) {
            let embedding = {
                let transition = &self.transition.as_ref().expect("transition ensured").1;
                let smoothed = self.propagation.get_with_par(
                    self.config.kernel,
                    transition,
                    self.config.parallelism,
                );
                distance::normalized_embedding_par(&smoothed, self.config.parallelism)
            };
            self.embedding = Some((key, Arc::new(embedding)));
            self.stats.embedding_builds += 1;
        }
    }

    fn ensure_rows(&mut self) {
        self.ensure_rows_ctl(&CancelToken::new())
            .expect("an influence build with an untripped token cannot be cancelled");
    }

    /// Builds the influence rows unless cached, polling `cancel` every 64
    /// rows inside the parallel build. A cancelled build discards its
    /// partial rows wholesale and caches nothing.
    fn ensure_rows_ctl(&mut self, cancel: &CancelToken) -> GrainResult<()> {
        let key = (
            self.config.kernel.cache_key(),
            self.config.influence_eps.to_bits(),
            self.config.influence_row_top_k,
        );
        if self.rows.as_ref().map(|(k, _)| k) == Some(&key) {
            return Ok(());
        }
        fault::point("engine.build.rows", Some(cancel));
        cancel.checkpoint()?;
        let transition = &self.transition.as_ref().expect("transition ensured").1;
        match InfluenceRows::for_kernel_topk_ctl(
            transition,
            self.config.kernel,
            self.config.influence_eps,
            self.config.influence_row_top_k,
            self.config.parallelism,
            &|| cancel.is_cancelled(),
        ) {
            Some(rows) => {
                self.rows = Some((key, rows));
                self.stats.influence_builds += 1;
                Ok(())
            }
            None => Err(cancel.cancel_error()),
        }
    }

    fn ensure_index(&mut self) {
        self.ensure_index_ctl(&CancelToken::new())
            .expect("an index build with an untripped token cannot be cancelled");
    }

    /// Builds the activation index unless cached. The inversion itself is
    /// not interruptible (it is the cheapest artifact); `cancel` is checked
    /// once at the stage boundary before committing to the build.
    fn ensure_index_ctl(&mut self, cancel: &CancelToken) -> GrainResult<()> {
        let key = (
            self.config.kernel.cache_key(),
            self.config.influence_eps.to_bits(),
            self.config.influence_row_top_k,
            self.config.theta,
        );
        if self.index.as_ref().map(|(k, _)| k) == Some(&key) {
            return Ok(());
        }
        fault::point("engine.build.index", Some(cancel));
        cancel.checkpoint()?;
        let rows = &self.rows.as_ref().expect("rows ensured").1;
        let index =
            ActivationIndex::build_with_rule_par(rows, self.config.theta, self.config.parallelism);
        self.index = Some((key, index));
        self.stats.index_builds += 1;
        Ok(())
    }

    fn ensure_balls(&mut self, cancel: &CancelToken) -> GrainResult<()> {
        let key = (self.config.kernel.cache_key(), self.config.radius.to_bits());
        if self.balls.as_ref().map(|(k, _)| k) != Some(&key) {
            fault::point("engine.build.balls", Some(cancel));
            cancel.checkpoint()?;
            let embedding = &self.embedding.as_ref().expect("embedding ensured").1;
            let balls = distance::radius_neighbors_par(
                embedding,
                self.config.radius,
                self.config.parallelism,
            );
            let bound = BallDiversity::union_size(&balls, self.graph.num_nodes());
            self.balls = Some((key, (Arc::new(balls), bound)));
            self.stats.diversity_builds += 1;
        }
        Ok(())
    }

    fn ensure_nn_dmax(&mut self, cancel: &CancelToken) -> GrainResult<()> {
        let key = self.config.kernel.cache_key();
        if self.nn_dmax.as_ref().map(|(k, _)| k) != Some(&key) {
            cancel.checkpoint()?;
            let embedding = &self.embedding.as_ref().expect("embedding ensured").1;
            let dmax = distance::max_pairwise_distance_par(
                embedding,
                NN_DMAX_EXACT_LIMIT,
                self.config.parallelism,
            );
            self.nn_dmax = Some((key, dmax));
            self.stats.diversity_builds += 1;
        }
        Ok(())
    }

    /// A fresh per-selection diversity state over the cached precompute
    /// (greedy consumes diversity state, so each call copies only the
    /// incremental state; the precompute itself is `Arc`-shared).
    fn build_diversity(
        &mut self,
        variant: GrainVariant,
        cancel: &CancelToken,
    ) -> GrainResult<Box<dyn DiversityFunction + Send>> {
        let kind = match variant {
            GrainVariant::NoDiversity => return Ok(Box::new(NullDiversity)),
            // Both seed-scoped ablations are defined on ball coverage.
            GrainVariant::NoMagnitude | GrainVariant::ClassicCoverage => DiversityKind::Ball,
            GrainVariant::Full => self.config.diversity,
        };
        Ok(match kind {
            DiversityKind::Ball => {
                self.ensure_balls(cancel)?;
                let (balls, bound) = self.balls.as_ref().expect("balls ensured").1.clone();
                Box::new(BallDiversity::from_shared_with_bound(
                    balls,
                    self.graph.num_nodes(),
                    bound,
                ))
            }
            DiversityKind::Nn => {
                self.ensure_nn_dmax(cancel)?;
                let dmax = self.nn_dmax.as_ref().expect("dmax ensured").1;
                let embedding = Arc::clone(&self.embedding.as_ref().expect("embedding ensured").1);
                Box::new(NnDiversity::from_parts(embedding, dmax))
            }
        })
    }
}

/// Table 3 ablation parameters: diversity scope, magnitude weight, γ.
fn variant_parameters(variant: GrainVariant, gamma: f64) -> (DiversityScope, f64, f64) {
    match variant {
        GrainVariant::Full => (DiversityScope::Activated, 1.0, gamma),
        GrainVariant::NoDiversity => (DiversityScope::Activated, 1.0, 0.0),
        GrainVariant::NoMagnitude => (DiversityScope::Seeds, 0.0, gamma.max(1.0)),
        GrainVariant::ClassicCoverage => (DiversityScope::Seeds, 1.0, gamma),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_graph::generators::{self, SbmConfig};
    use grain_prop::Kernel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(seed: u64) -> (Graph, DenseMatrix) {
        let cfg = SbmConfig {
            block_sizes: vec![40, 40, 40],
            mean_degree_in: 6.0,
            mean_degree_out: 1.0,
            degree_exponent: 0.0,
        };
        let (g, labels) = generators::degree_corrected_sbm(&cfg, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        let d = 6usize;
        let mut x = DenseMatrix::zeros(g.num_nodes(), d);
        for (v, &label) in labels.iter().enumerate() {
            let c = label as usize;
            for (j, value) in x.row_mut(v).iter_mut().enumerate() {
                let base = if j % 3 == c { 1.0 } else { 0.1 };
                *value = base + rng.random::<f32>() * 0.2;
            }
        }
        (g, x)
    }

    #[test]
    fn rejects_invalid_config_and_mismatched_features() {
        let (g, x) = dataset(1);
        let bad = GrainConfig {
            gamma: -1.0,
            ..GrainConfig::ball_d()
        };
        assert!(SelectionEngine::new(bad, &g, &x).is_err());
        let short = DenseMatrix::zeros(3, 2);
        assert!(SelectionEngine::new(GrainConfig::ball_d(), &g, &short).is_err());
    }

    #[test]
    fn warm_sweep_matches_one_shot_and_builds_once() {
        let (g, x) = dataset(2);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let cfg = GrainConfig::ball_d();
        let mut engine = SelectionEngine::new(cfg, &g, &x).unwrap();
        let budgets = [3usize, 6, 9, 12, 15];
        let warm = engine.select_budgets(&candidates, &budgets);
        let stats = engine.stats();
        assert_eq!(stats.propagation_builds, 1);
        assert_eq!(stats.influence_builds, 1);
        assert_eq!(stats.index_builds, 1);
        assert_eq!(stats.transition_builds, 1);
        assert_eq!(stats.diversity_builds, 1);
        assert_eq!(stats.selections, budgets.len());
        for (outcome, &budget) in warm.iter().zip(&budgets) {
            let fresh = SelectionEngine::new(cfg, &g, &x)
                .unwrap()
                .select(&candidates, budget);
            assert_eq!(outcome.selected, fresh.selected, "budget {budget}");
            assert_eq!(outcome.sigma, fresh.sigma, "budget {budget}");
            assert_eq!(
                outcome.objective_trace, fresh.objective_trace,
                "budget {budget}"
            );
        }
    }

    #[test]
    fn parallelism_changes_rebuild_nothing_and_select_identically() {
        // `parallelism` is a pure execution knob: changing it keeps every
        // cached artifact (it is in no cache key) and any thread count
        // selects the identical set.
        let (g, x) = dataset(8);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let reference = {
            let mut cfg = GrainConfig::ball_d();
            cfg.parallelism = 1;
            SelectionEngine::new(cfg, &g, &x)
                .unwrap()
                .select(&candidates, 9)
        };
        let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &g, &x).unwrap();
        engine.select(&candidates, 9);
        let before = engine.stats();
        for parallelism in [2usize, 8] {
            let mut cfg = *engine.config();
            cfg.parallelism = parallelism;
            engine.set_config(cfg).unwrap();
            let out = engine.select(&candidates, 9);
            assert_eq!(out.selected, reference.selected, "{parallelism} threads");
            assert_eq!(out.sigma, reference.sigma, "{parallelism} threads");
            assert_eq!(
                out.objective_trace, reference.objective_trace,
                "{parallelism} threads"
            );
        }
        let after = engine.stats();
        assert_eq!(
            EngineStats {
                selections: before.selections + 2,
                ..before
            },
            after,
            "parallelism swaps must not invalidate artifacts"
        );
    }

    #[test]
    fn theta_change_rebuilds_only_the_index() {
        let (g, x) = dataset(3);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &g, &x).unwrap();
        engine.select(&candidates, 8);
        let before = engine.stats();
        let mut cfg = *engine.config();
        cfg.theta = ThetaRule::RelativeToRowMax(0.4);
        engine.set_config(cfg).unwrap();
        engine.select(&candidates, 8);
        let after = engine.stats();
        assert_eq!(after.index_builds, before.index_builds + 1);
        assert_eq!(after.propagation_builds, before.propagation_builds);
        assert_eq!(after.transition_builds, before.transition_builds);
        assert_eq!(after.influence_builds, before.influence_builds);
        assert_eq!(after.embedding_builds, before.embedding_builds);
        assert_eq!(after.diversity_builds, before.diversity_builds);
    }

    #[test]
    fn kernel_depth_change_rebuilds_kernel_artifacts_but_not_transition() {
        let (g, x) = dataset(4);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &g, &x).unwrap();
        engine.select(&candidates, 8);
        let before = engine.stats();
        let mut cfg = *engine.config();
        cfg.kernel = Kernel::RandomWalk { k: 3 };
        engine.set_config(cfg).unwrap();
        engine.select(&candidates, 8);
        let after = engine.stats();
        // Same TransitionKind -> T is reused; everything downstream of the
        // kernel key rebuilds.
        assert_eq!(after.transition_builds, before.transition_builds);
        assert_eq!(after.propagation_builds, before.propagation_builds + 1);
        assert_eq!(after.influence_builds, before.influence_builds + 1);
        assert_eq!(after.index_builds, before.index_builds + 1);
        assert_eq!(after.embedding_builds, before.embedding_builds + 1);
        assert_eq!(after.diversity_builds, before.diversity_builds + 1);
    }

    #[test]
    fn gamma_and_budget_changes_rebuild_nothing() {
        let (g, x) = dataset(5);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &g, &x).unwrap();
        engine.select(&candidates, 6);
        let before = engine.stats();
        let mut cfg = *engine.config();
        cfg.gamma = 0.5;
        engine.set_config(cfg).unwrap();
        engine.select(&candidates, 11);
        let after = engine.stats();
        assert_eq!(
            EngineStats {
                selections: before.selections + 1,
                ..before
            },
            after
        );
    }

    #[test]
    fn variant_override_shares_artifacts() {
        let (g, x) = dataset(6);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &g, &x).unwrap();
        for variant in [
            GrainVariant::Full,
            GrainVariant::NoDiversity,
            GrainVariant::NoMagnitude,
            GrainVariant::ClassicCoverage,
        ] {
            let out = engine.select_variant(variant, &candidates, 5);
            assert_eq!(out.selected.len(), 5, "variant {variant:?}");
        }
        let stats = engine.stats();
        assert_eq!(stats.propagation_builds, 1);
        assert_eq!(stats.influence_builds, 1);
        assert_eq!(stats.index_builds, 1);
        assert_eq!(stats.diversity_builds, 1);
    }

    #[test]
    fn untripped_token_selects_bit_identically_cold_and_warm() {
        let (g, x) = dataset(11);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let cfg = GrainConfig::ball_d();
        let reference = SelectionEngine::new(cfg, &g, &x)
            .unwrap()
            .select(&candidates, 9);
        let mut engine = SelectionEngine::new(cfg, &g, &x).unwrap();
        for _ in 0..2 {
            // Cold pass builds every artifact under the ctl path; warm
            // pass serves them from cache. Both must change no bit.
            let out = engine
                .select_with_cancel(
                    cfg.variant,
                    &candidates,
                    9,
                    &CancelToken::new(),
                    OnDeadline::Partial,
                )
                .unwrap();
            assert_eq!(out.selected, reference.selected);
            assert_eq!(out.sigma, reference.sigma);
            assert_eq!(out.objective_trace, reference.objective_trace);
            assert_eq!(out.completion, Completion::Complete);
            assert!(!out.is_partial());
        }
    }

    #[test]
    fn pre_tripped_token_fails_typed_and_leaves_engine_usable() {
        let (g, x) = dataset(12);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let cfg = GrainConfig::ball_d();
        let mut engine = SelectionEngine::new(cfg, &g, &x).unwrap();

        // Caller cancel is always a typed failure, whatever the policy.
        let cancelled = CancelToken::new();
        cancelled.cancel();
        for policy in [OnDeadline::Fail, OnDeadline::Partial] {
            let err = engine
                .select_with_cancel(cfg.variant, &candidates, 5, &cancelled, policy)
                .unwrap_err();
            assert!(matches!(err, GrainError::Cancelled), "{policy:?}: {err}");
        }
        // A deadline trip observed at an artifact-stage boundary fails
        // typed even under the Partial policy: artifacts are never partial.
        let expired =
            CancelToken::with_deadline(Instant::now() - std::time::Duration::from_secs(1));
        let err = engine
            .select_with_cancel(cfg.variant, &candidates, 5, &expired, OnDeadline::Partial)
            .unwrap_err();
        assert!(matches!(
            err,
            GrainError::DeadlineExceeded {
                stage: DeadlineStage::MidSelection
            }
        ));
        // No selection was answered and nothing is torn: a fresh run
        // matches a fresh engine exactly.
        assert_eq!(engine.stats().selections, 0);
        let out = engine.select(&candidates, 5);
        let fresh = SelectionEngine::new(cfg, &g, &x)
            .unwrap()
            .select(&candidates, 5);
        assert_eq!(out.selected, fresh.selected);
        assert_eq!(out.sigma, fresh.sigma);
    }

    #[test]
    fn top_k_change_rebuilds_only_rows_and_index() {
        let (g, x) = dataset(13);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &g, &x).unwrap();
        engine.select(&candidates, 8);
        let before = engine.stats();
        let mut cfg = *engine.config();
        cfg.influence_row_top_k = 8;
        engine.set_config(cfg).unwrap();
        engine.select(&candidates, 8);
        let after = engine.stats();
        // Truncation re-derives the rows and everything downstream of
        // them, but T, X^(k), the embedding, and ball lists are untouched.
        assert_eq!(after.influence_builds, before.influence_builds + 1);
        assert_eq!(after.index_builds, before.index_builds + 1);
        assert_eq!(after.transition_builds, before.transition_builds);
        assert_eq!(after.propagation_builds, before.propagation_builds);
        assert_eq!(after.embedding_builds, before.embedding_builds);
        assert_eq!(after.diversity_builds, before.diversity_builds);
    }

    #[test]
    fn artifact_bytes_track_residency_and_csr_beats_nested() {
        let (g, x) = dataset(14);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &g, &x).unwrap();
        assert_eq!(engine.artifact_bytes(), ArtifactBytes::default());
        engine.select(&candidates, 6);
        let bytes = engine.artifact_bytes();
        for (name, count) in [
            ("transition", bytes.transition),
            ("propagation", bytes.propagation),
            ("embedding", bytes.embedding),
            ("influence_rows", bytes.influence_rows),
            ("activation_index", bytes.activation_index),
            ("balls", bytes.balls),
        ] {
            assert!(count > 0, "{name} built but reported zero bytes");
        }
        assert!(
            bytes.influence_rows < bytes.influence_rows_nested,
            "CSR layout ({}) must undercut the nested layout ({})",
            bytes.influence_rows,
            bytes.influence_rows_nested
        );
        assert_eq!(bytes.total(), {
            bytes.transition
                + bytes.propagation
                + bytes.embedding
                + bytes.influence_rows
                + bytes.activation_index
                + bytes.balls
        });
        // Truncation shrinks the influence artifact.
        let mut cfg = *engine.config();
        cfg.influence_row_top_k = 4;
        engine.set_config(cfg).unwrap();
        engine.select(&candidates, 6);
        assert!(engine.artifact_bytes().influence_rows <= bytes.influence_rows);
    }

    #[test]
    fn untruncated_top_k_selects_identically_at_any_thread_count() {
        // The acceptance bar for the CSR rewrite: top_k = 0 must be
        // bit-identical to the pre-rewrite nested path at every thread
        // count — same seeds, same sigma, same objective trace.
        let (g, x) = dataset(15);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let reference = {
            let mut cfg = GrainConfig::ball_d();
            cfg.parallelism = 1;
            SelectionEngine::new(cfg, &g, &x)
                .unwrap()
                .select(&candidates, 10)
        };
        for parallelism in [2usize, 4, 8] {
            let mut cfg = GrainConfig::ball_d();
            cfg.parallelism = parallelism;
            let out = SelectionEngine::new(cfg, &g, &x)
                .unwrap()
                .select(&candidates, 10);
            assert_eq!(out.selected, reference.selected, "{parallelism} threads");
            assert_eq!(out.sigma, reference.sigma, "{parallelism} threads");
            assert_eq!(
                out.objective_trace, reference.objective_trace,
                "{parallelism} threads"
            );
        }
    }

    #[test]
    fn kernel_round_trip_reuses_propagation_cache() {
        let (g, x) = dataset(7);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &g, &x).unwrap();
        let base = *engine.config();
        engine.select(&candidates, 5);
        let mut deep = base;
        deep.kernel = Kernel::RandomWalk { k: 3 };
        engine.set_config(deep).unwrap();
        engine.select(&candidates, 5);
        engine.set_config(base).unwrap();
        engine.select(&candidates, 5);
        // The k=2 embedding was evicted (single-slot) but the propagation
        // cache is a map: returning to k=2 propagates nothing new.
        assert_eq!(engine.stats().propagation_builds, 2);
        assert_eq!(engine.stats().influence_builds, 3);
    }
}

//! Cooperative cancellation: deadline- and caller-driven [`CancelToken`]s.
//!
//! A token is the one object threaded from the serving front-end
//! ([`Ticket`](crate::scheduler::Ticket) /
//! [`ScheduledRequest`](crate::scheduler::ScheduledRequest)) through
//! [`GrainService`](crate::service::GrainService) into
//! [`SelectionEngine`](crate::engine::SelectionEngine). Cancellation is
//! *cooperative*: nothing is killed. The pipeline polls the token at
//! cheap, semantically safe points — greedy round boundaries, every
//! [`GrainConfig::cancel_check_every`](crate::config::GrainConfig)
//! marginal-gain evaluations, and artifact-build stage boundaries
//! (per-power SpMM, influence-row blocks, the index build) — and unwinds
//! with a typed error or an anytime partial result.
//!
//! Two causes exist and are kept distinct because they map to different
//! errors and policies:
//!
//! * [`CancelCause::Caller`] — someone called [`CancelToken::cancel`]
//!   (for a coalesced group: the *last* waiter cancelled). The run's
//!   result is unwanted; it always fails typed
//!   [`GrainError::Cancelled`].
//! * [`CancelCause::Deadline`] — the armed deadline passed. What happens
//!   is the request's [`OnDeadline`] policy: `Fail` yields
//!   `DeadlineExceeded { stage: MidSelection }`, `Partial` degrades to
//!   the greedy prefix computed so far (see
//!   [`Completion`](crate::selector::Completion)).
//!
//! Artifact builds are never partial under either cause — a cancelled
//! build fails typed and caches nothing, preserving the bit-identity
//! contract for every later request.

use crate::error::{DeadlineStage, GrainError, GrainResult};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Why a run was asked to stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called (caller abandoned the result).
    Caller,
    /// The token's armed deadline passed while the run was in flight.
    Deadline,
}

/// What a request wants when its deadline trips *mid-selection*.
///
/// (Deadlines that trip before dispatch are always typed rejections —
/// there is nothing partial to return yet.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OnDeadline {
    /// Fail typed with `DeadlineExceeded { stage: MidSelection }`.
    #[default]
    Fail,
    /// Degrade to the greedy prefix selected so far, marked
    /// [`Completion::Partial`](crate::selector::Completion). Submodularity
    /// makes the prefix a valid anytime answer: it is byte-for-byte a
    /// prefix of the uncancelled run and inherits greedy's quality bound
    /// at its own (smaller) budget.
    Partial,
}

struct TokenInner {
    cancelled: AtomicBool,
    // Fast-path guard so `cause()` skips the mutex entirely until a
    // deadline has ever been armed (the common case for plain tokens).
    deadline_armed: AtomicBool,
    deadline: Mutex<Option<Instant>>,
}

/// A shareable, cloneable cancellation signal (all clones observe the
/// same state).
///
/// A fresh token never trips on its own; arm a deadline or call
/// [`cancel`](CancelToken::cancel). Checks are wait-free in the common
/// case (one relaxed atomic load when no deadline is armed).
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cause", &self.cause())
            .finish()
    }
}

impl CancelToken {
    /// A token that never trips until cancelled or given a deadline.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline_armed: AtomicBool::new(false),
                deadline: Mutex::new(None),
            }),
        }
    }

    /// A token that trips (cause [`CancelCause::Deadline`]) once
    /// `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        let token = Self::new();
        token.set_deadline(Some(deadline));
        token
    }

    /// [`CancelToken::with_deadline`] relative to now.
    pub fn with_deadline_in(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    fn lock_deadline(&self) -> std::sync::MutexGuard<'_, Option<Instant>> {
        self.inner
            .deadline
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Replaces the armed deadline (`None` disarms it). The scheduler
    /// uses this to keep a coalesced run's deadline at the *loosest*
    /// requirement over its live waiters.
    pub fn set_deadline(&self, deadline: Option<Instant>) {
        *self.lock_deadline() = deadline;
        // Armed stays sticky on disarm: `cause()` then takes the mutex
        // once more and sees `None`, which is correct, just not fast.
        if deadline.is_some() {
            self.inner.deadline_armed.store(true, Ordering::Release);
        }
    }

    /// The currently armed deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        if !self.inner.deadline_armed.load(Ordering::Acquire) {
            return None;
        }
        *self.lock_deadline()
    }

    /// Trips the token with cause [`CancelCause::Caller`]. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Why the token has tripped, or `None` if it has not. An explicit
    /// [`cancel`](CancelToken::cancel) wins over a passed deadline.
    pub fn cause(&self) -> Option<CancelCause> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Some(CancelCause::Caller);
        }
        if self.inner.deadline_armed.load(Ordering::Acquire) {
            if let Some(deadline) = *self.lock_deadline() {
                if Instant::now() >= deadline {
                    return Some(CancelCause::Deadline);
                }
            }
        }
        None
    }

    /// Whether the token has tripped (either cause).
    pub fn is_cancelled(&self) -> bool {
        self.cause().is_some()
    }

    /// The typed error a run unwinding on this token should return:
    /// [`GrainError::Cancelled`] for a caller cancel,
    /// `DeadlineExceeded { stage: MidSelection }` for a deadline trip.
    pub fn cancel_error(&self) -> GrainError {
        match self.cause() {
            Some(CancelCause::Deadline) => GrainError::DeadlineExceeded {
                stage: DeadlineStage::MidSelection,
            },
            // `Caller`, or a raced disarm: the caller walked away either way.
            _ => GrainError::Cancelled,
        }
    }

    /// `Err(cancel_error())` if tripped, `Ok(())` otherwise — the one-line
    /// check the pipeline drops at stage boundaries.
    pub fn checkpoint(&self) -> GrainResult<()> {
        match self.cause() {
            None => Ok(()),
            Some(CancelCause::Caller) => Err(GrainError::Cancelled),
            Some(CancelCause::Deadline) => Err(GrainError::DeadlineExceeded {
                stage: DeadlineStage::MidSelection,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_never_trips() {
        let token = CancelToken::new();
        assert_eq!(token.cause(), None);
        assert!(!token.is_cancelled());
        assert!(token.checkpoint().is_ok());
    }

    #[test]
    fn cancel_trips_with_caller_cause_and_is_idempotent() {
        let token = CancelToken::new();
        token.cancel();
        token.cancel();
        assert_eq!(token.cause(), Some(CancelCause::Caller));
        assert_eq!(token.checkpoint(), Err(GrainError::Cancelled));
        assert_eq!(token.cancel_error(), GrainError::Cancelled);
    }

    #[test]
    fn past_deadline_trips_with_deadline_cause() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(token.cause(), Some(CancelCause::Deadline));
        assert_eq!(
            token.checkpoint(),
            Err(GrainError::DeadlineExceeded {
                stage: DeadlineStage::MidSelection
            })
        );
    }

    #[test]
    fn future_deadline_does_not_trip_and_can_be_disarmed() {
        let token = CancelToken::with_deadline_in(Duration::from_secs(3600));
        assert_eq!(token.cause(), None);
        token.set_deadline(None);
        assert_eq!(token.deadline(), None);
        assert_eq!(token.cause(), None);
    }

    #[test]
    fn caller_cancel_wins_over_deadline() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        token.cancel();
        assert_eq!(token.cause(), Some(CancelCause::Caller));
    }

    #[test]
    fn clones_share_state() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
    }
}

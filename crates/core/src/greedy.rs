//! Greedy maximization: Algorithm 1 and its CELF lazy variant.
//!
//! For monotone submodular `F`, plain greedy attains `F(S) ≥ (1 − 1/e)
//! F(S*)` (Nemhauser et al.). CELF exploits submodularity further: a
//! candidate's cached gain from an earlier round upper-bounds its current
//! gain, so the top of a max-heap can be accepted as soon as its cached
//! gain is fresh — identical output, far fewer evaluations.

use crate::cancel::{CancelCause, CancelToken};
use crate::fault;
use crate::objective::MarginalObjective;

/// Outcome of a greedy run.
#[derive(Clone, Debug, PartialEq)]
pub struct GreedyTrace {
    /// Selected seeds in pick order.
    pub selected: Vec<u32>,
    /// `F(S)` after each pick (length = `selected.len()`).
    pub objective_trace: Vec<f64>,
    /// Number of marginal-gain evaluations performed.
    pub evaluations: usize,
    /// `Some(cause)` if the run stopped early at a cooperative
    /// cancellation checkpoint. The picks made so far are byte-for-byte
    /// a prefix of the uncancelled run: checkpoints sit at round
    /// boundaries and between evaluations, never between choosing a
    /// candidate and committing it.
    pub cancelled: Option<CancelCause>,
}

/// Algorithm 1: evaluates every remaining candidate each round.
///
/// Ties break toward the smaller node id, making runs deterministic.
pub fn plain_greedy(
    objective: &mut impl MarginalObjective,
    candidates: &[u32],
    budget: usize,
) -> GreedyTrace {
    plain_greedy_ctl(
        objective,
        candidates,
        budget,
        &CancelToken::new(),
        usize::MAX,
    )
}

/// [`plain_greedy`] polling `cancel` at every round boundary and after
/// every `check_every` marginal-gain evaluations. On a trip the trace is
/// returned as-is (an exact prefix of the uncancelled run) with
/// [`GreedyTrace::cancelled`] set; no pick is ever half-committed.
///
/// An untripped token changes nothing: the selection, trace, and
/// evaluation count are bit-identical to [`plain_greedy`].
pub fn plain_greedy_ctl(
    objective: &mut impl MarginalObjective,
    candidates: &[u32],
    budget: usize,
    cancel: &CancelToken,
    check_every: usize,
) -> GreedyTrace {
    let budget = budget.min(candidates.len());
    let check_every = check_every.max(1);
    let mut remaining: Vec<u32> = candidates.to_vec();
    remaining.sort_unstable();
    remaining.dedup();
    let mut selected = Vec::with_capacity(budget);
    let mut trace = Vec::with_capacity(budget);
    let mut evaluations = 0;
    let mut cancelled = None;
    'rounds: for _ in 0..budget {
        fault::point("greedy.round", Some(cancel));
        if let Some(cause) = cancel.cause() {
            cancelled = Some(cause);
            break;
        }
        let mut best: Option<(usize, f64)> = None;
        for (pos, &c) in remaining.iter().enumerate() {
            let gain = objective.marginal_gain(c);
            evaluations += 1;
            if evaluations % check_every == 0 {
                fault::point("greedy.eval.block", Some(cancel));
                if let Some(cause) = cancel.cause() {
                    // Abandon the half-scanned round without picking:
                    // the committed prefix stays exact.
                    cancelled = Some(cause);
                    break 'rounds;
                }
            }
            // Tie-break toward the smaller node id (swap_remove below
            // shuffles `remaining`, so position order is not id order).
            let better = match best {
                None => true,
                Some((bpos, bg)) => gain > bg || (gain == bg && c < remaining[bpos]),
            };
            if better {
                best = Some((pos, gain));
            }
        }
        let Some((pos, _)) = best else { break };
        let chosen = remaining.swap_remove(pos);
        objective.add(chosen);
        selected.push(chosen);
        trace.push(objective.value());
    }
    GreedyTrace {
        selected,
        objective_trace: trace,
        evaluations,
        cancelled,
    }
}

/// CELF lazy greedy.
///
/// Maintains a max-heap of `(cached_gain, candidate)`; a popped candidate
/// whose cache is stale is re-evaluated and pushed back. Requires `F`
/// submodular for exactness (property-tested against [`plain_greedy`]).
pub fn lazy_greedy(
    objective: &mut impl MarginalObjective,
    candidates: &[u32],
    budget: usize,
) -> GreedyTrace {
    lazy_greedy_ctl(
        objective,
        candidates,
        budget,
        &CancelToken::new(),
        usize::MAX,
    )
}

/// [`lazy_greedy`] polling `cancel` at every acceptance (round) boundary
/// and after every `check_every` evaluations (initial heap seeding and
/// stale re-evaluations both count). Same prefix guarantee as
/// [`plain_greedy_ctl`]; an untripped token is bit-identical to
/// [`lazy_greedy`].
pub fn lazy_greedy_ctl(
    objective: &mut impl MarginalObjective,
    candidates: &[u32],
    budget: usize,
    cancel: &CancelToken,
    check_every: usize,
) -> GreedyTrace {
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry {
        gain: f64,
        /// Stored negated so equal gains pop the smaller id first.
        neg_id: i64,
        round: usize,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.gain
                .total_cmp(&other.gain)
                .then(self.neg_id.cmp(&other.neg_id))
        }
    }

    let budget = budget.min(candidates.len());
    let check_every = check_every.max(1);
    let mut uniq: Vec<u32> = candidates.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    let mut evaluations = 0;
    let mut cancelled = None;
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(uniq.len());
    for &c in &uniq {
        evaluations += 1;
        heap.push(Entry {
            gain: objective.marginal_gain(c),
            neg_id: -(c as i64),
            round: 0,
        });
        if evaluations % check_every == 0 {
            fault::point("greedy.eval.block", Some(cancel));
            if let Some(cause) = cancel.cause() {
                cancelled = Some(cause);
                break;
            }
        }
    }
    let mut selected = Vec::with_capacity(budget);
    let mut trace = Vec::with_capacity(budget);
    let mut round = 0usize;
    while cancelled.is_none() && selected.len() < budget {
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            // Round boundary: the next pick is decided but not yet
            // committed — the last safe place to stop.
            fault::point("greedy.round", Some(cancel));
            if let Some(cause) = cancel.cause() {
                cancelled = Some(cause);
                break;
            }
            let c = (-top.neg_id) as u32;
            objective.add(c);
            selected.push(c);
            trace.push(objective.value());
            round += 1;
        } else {
            let c = (-top.neg_id) as u32;
            evaluations += 1;
            heap.push(Entry {
                gain: objective.marginal_gain(c),
                neg_id: top.neg_id,
                round,
            });
            if evaluations % check_every == 0 {
                fault::point("greedy.eval.block", Some(cancel));
                if let Some(cause) = cancel.cause() {
                    cancelled = Some(cause);
                    break;
                }
            }
        }
    }
    GreedyTrace {
        selected,
        objective_trace: trace,
        evaluations,
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Weighted-coverage toy objective: element e has weight w[e]; each
    /// candidate covers a fixed element set. Monotone + submodular.
    struct Cover {
        sets: Vec<Vec<usize>>,
        weights: Vec<f64>,
        covered: Vec<bool>,
        value: f64,
    }
    impl Cover {
        fn new(sets: Vec<Vec<usize>>, weights: Vec<f64>) -> Self {
            let n = weights.len();
            Self {
                sets,
                weights,
                covered: vec![false; n],
                value: 0.0,
            }
        }
    }
    impl MarginalObjective for Cover {
        fn marginal_gain(&mut self, c: u32) -> f64 {
            self.sets[c as usize]
                .iter()
                .filter(|&&e| !self.covered[e])
                .map(|&e| self.weights[e])
                .sum()
        }
        fn add(&mut self, c: u32) {
            for &e in &self.sets[c as usize].clone() {
                if !self.covered[e] {
                    self.covered[e] = true;
                    self.value += self.weights[e];
                }
            }
        }
        fn value(&self) -> f64 {
            self.value
        }
    }

    fn toy() -> Cover {
        Cover::new(
            vec![
                vec![0, 1, 2],    // candidate 0
                vec![2, 3],       // candidate 1
                vec![4],          // candidate 2
                vec![0, 1, 2, 3], // candidate 3 (dominates 0 and 1)
                vec![],           // candidate 4
            ],
            vec![1.0, 1.0, 1.0, 1.0, 5.0],
        )
    }

    #[test]
    fn plain_greedy_picks_heavy_element_first() {
        let mut obj = toy();
        let trace = plain_greedy(&mut obj, &[0, 1, 2, 3, 4], 2);
        // Element 4 weighs 5 -> candidate 2 first, then candidate 3 (covers 4).
        assert_eq!(trace.selected, vec![2, 3]);
        assert_eq!(trace.objective_trace, vec![5.0, 9.0]);
    }

    #[test]
    fn lazy_matches_plain_on_toy() {
        let mut a = toy();
        let ta = plain_greedy(&mut a, &[0, 1, 2, 3, 4], 4);
        let mut b = toy();
        let tb = lazy_greedy(&mut b, &[0, 1, 2, 3, 4], 4);
        assert_eq!(ta.selected, tb.selected);
        assert_eq!(ta.objective_trace, tb.objective_trace);
    }

    #[test]
    fn lazy_uses_no_more_evaluations_per_extra_round() {
        let mut a = toy();
        let ta = plain_greedy(&mut a, &[0, 1, 2, 3, 4], 3);
        let mut b = toy();
        let tb = lazy_greedy(&mut b, &[0, 1, 2, 3, 4], 3);
        assert!(tb.evaluations <= ta.evaluations);
    }

    #[test]
    fn budget_clamped_to_candidates() {
        let mut obj = toy();
        let trace = plain_greedy(&mut obj, &[1, 2], 10);
        assert_eq!(trace.selected.len(), 2);
    }

    #[test]
    fn duplicate_candidates_deduped() {
        let mut obj = toy();
        let trace = plain_greedy(&mut obj, &[2, 2, 2], 3);
        assert_eq!(trace.selected, vec![2]);
    }

    #[test]
    fn tie_breaks_toward_smaller_id() {
        // Candidates 0 and 1 have identical singleton sets.
        let mut obj = Cover::new(vec![vec![0], vec![0]], vec![1.0]);
        let plain = plain_greedy(&mut obj, &[1, 0], 1);
        assert_eq!(plain.selected, vec![0]);
        let mut obj2 = Cover::new(vec![vec![0], vec![0]], vec![1.0]);
        let lazy = lazy_greedy(&mut obj2, &[1, 0], 1);
        assert_eq!(lazy.selected, vec![0]);
    }

    #[test]
    fn empty_candidates_yield_empty_selection() {
        let mut obj = toy();
        let trace = lazy_greedy(&mut obj, &[], 3);
        assert!(trace.selected.is_empty());
        assert_eq!(trace.evaluations, 0);
    }

    #[test]
    fn untripped_token_changes_no_bit() {
        let token = CancelToken::new();
        for check_every in [1usize, 2, 1024] {
            let mut a = toy();
            let plain = plain_greedy(&mut a, &[0, 1, 2, 3, 4], 4);
            let mut b = toy();
            let ctl = plain_greedy_ctl(&mut b, &[0, 1, 2, 3, 4], 4, &token, check_every);
            assert_eq!(plain, ctl, "plain, check_every={check_every}");
            let mut c = toy();
            let lazy = lazy_greedy(&mut c, &[0, 1, 2, 3, 4], 4);
            let mut d = toy();
            let lctl = lazy_greedy_ctl(&mut d, &[0, 1, 2, 3, 4], 4, &token, check_every);
            assert_eq!(lazy, lctl, "lazy, check_every={check_every}");
        }
    }

    #[test]
    fn pre_tripped_token_selects_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let mut a = toy();
        let plain = plain_greedy_ctl(&mut a, &[0, 1, 2, 3, 4], 3, &token, 1);
        assert!(plain.selected.is_empty());
        assert_eq!(plain.cancelled, Some(CancelCause::Caller));
        let mut b = toy();
        let lazy = lazy_greedy_ctl(&mut b, &[0, 1, 2, 3, 4], 3, &token, 1);
        assert!(lazy.selected.is_empty());
        assert_eq!(lazy.cancelled, Some(CancelCause::Caller));
    }

    /// A probe objective that trips the token after a fixed number of
    /// marginal-gain evaluations — a deterministic mid-run cancel.
    struct TripAfter<'a> {
        inner: Cover,
        token: &'a CancelToken,
        trip_at: usize,
        evals: usize,
    }
    impl MarginalObjective for TripAfter<'_> {
        fn marginal_gain(&mut self, c: u32) -> f64 {
            self.evals += 1;
            if self.evals == self.trip_at {
                self.token.cancel();
            }
            self.inner.marginal_gain(c)
        }
        fn add(&mut self, c: u32) {
            self.inner.add(c)
        }
        fn value(&self) -> f64 {
            self.inner.value()
        }
    }

    #[test]
    fn cancelled_runs_are_exact_prefixes_of_the_uncancelled_run() {
        let cands = [0u32, 1, 2, 3, 4];
        for (algo, name) in [(false, "plain"), (true, "lazy")] {
            let mut oracle_obj = toy();
            let oracle = if algo {
                lazy_greedy(&mut oracle_obj, &cands, 4)
            } else {
                plain_greedy(&mut oracle_obj, &cands, 4)
            };
            for trip_at in 1..=oracle.evaluations {
                let token = CancelToken::new();
                let mut obj = TripAfter {
                    inner: toy(),
                    token: &token,
                    trip_at,
                    evals: 0,
                };
                let got = if algo {
                    lazy_greedy_ctl(&mut obj, &cands, 4, &token, 1)
                } else {
                    plain_greedy_ctl(&mut obj, &cands, 4, &token, 1)
                };
                assert!(
                    got.selected.len() <= oracle.selected.len(),
                    "{name} trip_at={trip_at}"
                );
                assert_eq!(
                    got.selected,
                    oracle.selected[..got.selected.len()],
                    "{name} trip_at={trip_at}: partial must be an exact prefix"
                );
                assert_eq!(
                    got.objective_trace,
                    oracle.objective_trace[..got.objective_trace.len()],
                    "{name} trip_at={trip_at}"
                );
                assert_eq!(got.cancelled, Some(CancelCause::Caller));
            }
        }
    }
}

//! Versioned on-disk artifact store: warm starts as a disk read.
//!
//! Every §3 artifact the [`SelectionEngine`](crate::SelectionEngine)
//! materializes is a pure function of `(graph, features, config)` — which
//! is exactly what makes it shippable. This module persists the three
//! heavy ones — the propagated `X^(k)` (with its power ladder), the
//! influence-row flat CSR, and the activation-index CSR — under a content
//! address, so a process restart replays a cold build as a validated file
//! read instead of a 29-second propagation + influence pass.
//!
//! # Content addressing
//!
//! An artifact file is identified by
//! `(graph_fingerprint, epoch, artifact_fingerprint, codec_version)`:
//!
//! - `graph_fingerprint` — a 64-bit content hash of the corpus lineage:
//!   adjacency CSR + feature matrix at registration, then mixed with a
//!   hash of every applied [`GraphDelta`](crate::streaming::GraphDelta).
//!   Two corpora that reached the same epoch number through *different*
//!   delta sequences therefore never collide.
//! - `epoch` — the corpus epoch the artifact was built at. A persisted
//!   pre-delta artifact can never be loaded for a post-delta epoch.
//! - `artifact_fingerprint` —
//!   [`GrainConfig::artifact_fingerprint`](crate::config::GrainConfig::artifact_fingerprint)
//!   (kernel, `influence_eps`, theta rule, radius, `influence_row_top_k`);
//!   the same string that keys pool entries.
//! - `codec_version` — bumped whenever the byte layout changes; older
//!   files are treated as absent, never misparsed.
//!
//! # Codec
//!
//! A hand-rolled flat little-endian layout (shim policy: no serde
//! dependency growth) that mirrors the in-memory SoA structs, so encode
//! and decode are bulk `memcpy`s on little-endian targets:
//!
//! | section | contents |
//! |---|---|
//! | magic | `b"GRAINART"` (8 bytes) |
//! | codec version | `u32` |
//! | artifact kind | `u32` (1 = propagation, 2 = rows, 3 = index) |
//! | graph fingerprint | `u64` |
//! | epoch | `u64` |
//! | artifact fingerprint | length-prefixed UTF-8 |
//! | kind header + payload | dims as `u64`, then the flat arrays |
//! | checksum | `u64` FNV-1a over every preceding byte |
//!
//! # Failure model
//!
//! A file that fails *any* validation — truncated, bad magic, unknown
//! version, checksum mismatch, address mismatch, malformed CSR invariants
//! — is reported as a typed [`GrainError::StoreCorrupt`] and treated as
//! absent by callers: the request falls through to a normal cold build.
//! Corruption is never a crash and never a silently wrong artifact.
//! Writes go through a temp file + atomic rename, so a torn write leaves
//! either the old file or no file, both of which load correctly or miss.

use crate::error::{GrainError, GrainResult};
use grain_graph::Graph;
use grain_influence::{ActivationIndex, InfluenceRows};
use grain_linalg::DenseMatrix;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// File magic: identifies a Grain artifact regardless of extension.
const MAGIC: [u8; 8] = *b"GRAINART";

/// Current byte-layout version. Bump on any layout change; older files
/// then read as [`GrainError::StoreCorrupt`] and cold builds re-persist.
pub const CODEC_VERSION: u32 = 1;

/// Which artifact a store file carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactKind {
    /// `X^(k)` plus its power ladder ([`grain_prop::cache::PropagationCache`]).
    Propagation,
    /// Influence-row flat CSR ([`InfluenceRows`]).
    InfluenceRows,
    /// Activation-index flat CSR ([`ActivationIndex`]).
    ActivationIndex,
}

impl ArtifactKind {
    fn tag(self) -> u32 {
        match self {
            ArtifactKind::Propagation => 1,
            ArtifactKind::InfluenceRows => 2,
            ArtifactKind::ActivationIndex => 3,
        }
    }

    fn ext(self) -> &'static str {
        match self {
            ArtifactKind::Propagation => "prop",
            ArtifactKind::InfluenceRows => "rows",
            ArtifactKind::ActivationIndex => "index",
        }
    }
}

/// The content address an artifact serializes under (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContentAddress {
    /// Corpus lineage hash (adjacency + features + applied deltas).
    pub graph_fingerprint: u64,
    /// Corpus epoch the artifact was built at.
    pub epoch: u64,
    /// [`GrainConfig::artifact_fingerprint`](crate::GrainConfig::artifact_fingerprint)
    /// of the config that built it.
    pub artifact_fingerprint: String,
}

/// Counters behind [`ArtifactStore::stats`].
#[derive(Default)]
struct StoreCounters {
    saves: AtomicUsize,
    loads: AtomicUsize,
    misses: AtomicUsize,
    corruptions: AtomicUsize,
    bytes_written: AtomicUsize,
    bytes_read: AtomicUsize,
}

/// Point-in-time snapshot of store activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Artifacts persisted (successful commits).
    pub saves: usize,
    /// Artifacts loaded and validated.
    pub loads: usize,
    /// Lookups that found no file (normal cold-start misses).
    pub misses: usize,
    /// Lookups that found a file but rejected it
    /// ([`GrainError::StoreCorrupt`]); each fell through to a cold build.
    pub corruptions: usize,
    /// Total bytes committed to disk.
    pub bytes_written: usize,
    /// Total bytes read back (validated loads only).
    pub bytes_read: usize,
}

/// An encoded artifact not yet written — encoding happens under the
/// engine lock (one memcpy out of the live artifact), the disk write
/// after it drops (see [`ArtifactStore::commit`]).
pub struct PendingArtifact {
    path: PathBuf,
    bytes: Vec<u8>,
}

impl PendingArtifact {
    /// Serialized size in bytes (header + payload + checksum).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Always false: an encoded artifact carries at least its header.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// A directory of content-addressed artifact files. All methods are
/// `&self` and safe to call concurrently; see the module docs for the
/// layout and failure model.
pub struct ArtifactStore {
    dir: PathBuf,
    counters: StoreCounters,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> GrainResult<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| GrainError::store(format!("cannot create store dir {dir:?}: {e}")))?;
        Ok(Self {
            dir,
            counters: StoreCounters::default(),
        })
    }

    /// The directory artifacts live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of save/load/miss/corruption counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            saves: self.counters.saves.load(Ordering::Relaxed),
            loads: self.counters.loads.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            corruptions: self.counters.corruptions.load(Ordering::Relaxed),
            bytes_written: self.counters.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.counters.bytes_read.load(Ordering::Relaxed),
        }
    }

    /// The file an address + kind maps to. The artifact fingerprint is a
    /// free-form string, so the filename carries its hash; the full
    /// string is stored (and verified) inside the header, which turns a
    /// filename-hash collision into a detected mismatch, not a wrong
    /// artifact.
    pub fn path_for(&self, addr: &ContentAddress, kind: ArtifactKind) -> PathBuf {
        let fp_hash = hash_bytes(addr.artifact_fingerprint.as_bytes());
        self.dir.join(format!(
            "{:016x}-e{}-{:016x}.{}.grain",
            addr.graph_fingerprint,
            addr.epoch,
            fp_hash,
            kind.ext()
        ))
    }

    // ---- encode ----------------------------------------------------------

    /// Encodes `X^(k)` plus its power ladder for [`ArtifactStore::commit`].
    pub fn encode_propagation(
        &self,
        addr: &ContentAddress,
        value: &DenseMatrix,
        ladder: &[&DenseMatrix],
    ) -> PendingArtifact {
        let mut enc = self.header(addr, ArtifactKind::Propagation);
        enc.u64(value.rows() as u64);
        enc.u64(value.cols() as u64);
        enc.u64(ladder.len() as u64);
        enc.f32_slice(value.as_slice());
        for level in ladder {
            assert_eq!(
                (level.rows(), level.cols()),
                (value.rows(), value.cols()),
                "ladder levels share X^(k)'s shape"
            );
            enc.f32_slice(level.as_slice());
        }
        self.seal(addr, ArtifactKind::Propagation, enc)
    }

    /// Encodes influence rows for [`ArtifactStore::commit`].
    pub fn encode_rows(&self, addr: &ContentAddress, rows: &InfluenceRows) -> PendingArtifact {
        let mut enc = self.header(addr, ArtifactKind::InfluenceRows);
        enc.u64(rows.num_nodes() as u64);
        enc.u64(rows.nnz() as u64);
        enc.u64(rows.k() as u64);
        enc.usize_slice(rows.offsets());
        enc.u32_slice(rows.cols());
        enc.f32_slice(rows.vals());
        self.seal(addr, ArtifactKind::InfluenceRows, enc)
    }

    /// Encodes an activation index for [`ArtifactStore::commit`].
    pub fn encode_index(&self, addr: &ContentAddress, index: &ActivationIndex) -> PendingArtifact {
        let mut enc = self.header(addr, ArtifactKind::ActivationIndex);
        enc.u64(index.num_nodes() as u64);
        enc.u64(index.total_entries() as u64);
        enc.u64(index.k() as u64);
        enc.f32(index.theta());
        enc.usize_slice(index.offsets());
        enc.u32_slice(index.items());
        self.seal(addr, ArtifactKind::ActivationIndex, enc)
    }

    fn header(&self, addr: &ContentAddress, kind: ArtifactKind) -> Enc {
        let mut enc = Enc::default();
        enc.bytes(&MAGIC);
        enc.u32(CODEC_VERSION);
        enc.u32(kind.tag());
        enc.u64(addr.graph_fingerprint);
        enc.u64(addr.epoch);
        enc.str(&addr.artifact_fingerprint);
        enc
    }

    fn seal(&self, addr: &ContentAddress, kind: ArtifactKind, mut enc: Enc) -> PendingArtifact {
        let sum = checksum64(&enc.buf);
        enc.u64(sum);
        PendingArtifact {
            path: self.path_for(addr, kind),
            bytes: enc.buf,
        }
    }

    /// Writes an encoded artifact via temp file + atomic rename and
    /// returns the bytes committed. Racing commits of the same address
    /// are safe: content addressing + bit-identical builds mean both
    /// writers carry the same bytes.
    pub fn commit(&self, pending: PendingArtifact) -> GrainResult<usize> {
        let tmp = pending.path.with_extension("tmp");
        fs::write(&tmp, &pending.bytes)
            .and_then(|()| fs::rename(&tmp, &pending.path))
            .map_err(|e| GrainError::store(format!("cannot write {:?}: {e}", pending.path)))?;
        self.counters.saves.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_written
            .fetch_add(pending.bytes.len(), Ordering::Relaxed);
        Ok(pending.bytes.len())
    }

    /// Encode + commit in one step (the streaming re-persist path).
    pub fn save_propagation(
        &self,
        addr: &ContentAddress,
        value: &DenseMatrix,
        ladder: &[&DenseMatrix],
    ) -> GrainResult<usize> {
        self.commit(self.encode_propagation(addr, value, ladder))
    }

    /// Encode + commit in one step (the streaming re-persist path).
    pub fn save_rows(&self, addr: &ContentAddress, rows: &InfluenceRows) -> GrainResult<usize> {
        self.commit(self.encode_rows(addr, rows))
    }

    /// Encode + commit in one step (the streaming re-persist path).
    pub fn save_index(&self, addr: &ContentAddress, index: &ActivationIndex) -> GrainResult<usize> {
        self.commit(self.encode_index(addr, index))
    }

    // ---- load ------------------------------------------------------------

    /// Loads and validates `X^(k)` + ladder. `Ok(None)` = no file (normal
    /// miss); `Err(StoreCorrupt)` = a file that failed validation (the
    /// caller cold-builds either way).
    pub fn load_propagation(
        &self,
        addr: &ContentAddress,
    ) -> GrainResult<Option<(DenseMatrix, Vec<DenseMatrix>)>> {
        let kind = ArtifactKind::Propagation;
        let Some((raw, body)) = self.read_validated(addr, kind)? else {
            return Ok(None);
        };
        let parsed = (|| -> GrainResult<(DenseMatrix, Vec<DenseMatrix>)> {
            let mut dec = Dec::new((&raw, body));
            let rows = dec.dim("rows")?;
            let cols = dec.dim("cols")?;
            let levels = dec.dim("ladder levels")?;
            let cells = rows
                .checked_mul(cols)
                .ok_or_else(|| GrainError::store("propagation dims overflow".to_string()))?;
            let value = DenseMatrix::from_vec(rows, cols, dec.f32_vec(cells)?);
            let ladder = (0..levels)
                .map(|_| Ok(DenseMatrix::from_vec(rows, cols, dec.f32_vec(cells)?)))
                .collect::<GrainResult<Vec<_>>>()?;
            dec.finish()?;
            Ok((value, ladder))
        })();
        self.account_load(&raw, kind, parsed)
    }

    /// Loads and validates influence rows (see
    /// [`ArtifactStore::load_propagation`] for the `None`/`Err` contract).
    pub fn load_rows(&self, addr: &ContentAddress) -> GrainResult<Option<InfluenceRows>> {
        let kind = ArtifactKind::InfluenceRows;
        let Some((raw, body)) = self.read_validated(addr, kind)? else {
            return Ok(None);
        };
        let parsed = (|| -> GrainResult<InfluenceRows> {
            let mut dec = Dec::new((&raw, body));
            let n = dec.dim("nodes")?;
            let nnz = dec.dim("nnz")?;
            let k = dec.dim("k")?;
            let offsets = dec.usize_vec(n + 1)?;
            let cols = dec.u32_vec(nnz)?;
            let vals = dec.f32_vec(nnz)?;
            dec.finish()?;
            validate_csr(&offsets, &cols, nnz, n, "influence rows")?;
            Ok(InfluenceRows::from_parts(offsets, cols, vals, k))
        })();
        self.account_load(&raw, kind, parsed)
    }

    /// Loads and validates an activation index (see
    /// [`ArtifactStore::load_propagation`] for the `None`/`Err` contract).
    pub fn load_index(&self, addr: &ContentAddress) -> GrainResult<Option<ActivationIndex>> {
        let kind = ArtifactKind::ActivationIndex;
        let Some((raw, body)) = self.read_validated(addr, kind)? else {
            return Ok(None);
        };
        let parsed = (|| -> GrainResult<ActivationIndex> {
            let mut dec = Dec::new((&raw, body));
            let n = dec.dim("nodes")?;
            let entries = dec.dim("entries")?;
            let k = dec.dim("k")?;
            let theta = dec.f32()?;
            let offsets = dec.usize_vec(n + 1)?;
            let items = dec.u32_vec(entries)?;
            dec.finish()?;
            validate_csr(&offsets, &items, entries, n, "activation index")?;
            Ok(ActivationIndex::from_parts(offsets, items, theta, k))
        })();
        self.account_load(&raw, kind, parsed)
    }

    /// Reads a file and validates everything address-level: magic,
    /// version, kind, checksum, and the full content address. Returns the
    /// raw file plus the body span `(start, end)` the kind-specific
    /// decoder owns.
    #[allow(clippy::type_complexity)]
    fn read_validated(
        &self,
        addr: &ContentAddress,
        kind: ArtifactKind,
    ) -> GrainResult<Option<(Vec<u8>, (usize, usize))>> {
        let path = self.path_for(addr, kind);
        let raw = match fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            Err(e) => {
                self.counters.corruptions.fetch_add(1, Ordering::Relaxed);
                return Err(GrainError::store(format!("cannot read {path:?}: {e}")));
            }
        };
        let validated = (|| -> GrainResult<(usize, usize)> {
            if raw.len() < MAGIC.len() + 8 {
                return Err(GrainError::store(format!("{path:?} is truncated")));
            }
            let (data, sum_bytes) = raw.split_at(raw.len() - 8);
            let mut dec = Dec::new((data, (0, data.len())));
            if dec.take(MAGIC.len())? != MAGIC {
                return Err(GrainError::store(format!("{path:?} has bad magic")));
            }
            let version = dec.u32()?;
            if version != CODEC_VERSION {
                return Err(GrainError::store(format!(
                    "{path:?} has codec version {version}, expected {CODEC_VERSION}"
                )));
            }
            let tag = dec.u32()?;
            if tag != kind.tag() {
                return Err(GrainError::store(format!(
                    "{path:?} carries artifact tag {tag}, expected {}",
                    kind.tag()
                )));
            }
            let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8-byte split"));
            if checksum64(data) != stored {
                return Err(GrainError::store(format!("{path:?} checksum mismatch")));
            }
            let graph_fp = dec.u64()?;
            let epoch = dec.u64()?;
            let fp = dec.str()?;
            if graph_fp != addr.graph_fingerprint
                || epoch != addr.epoch
                || fp != addr.artifact_fingerprint
            {
                return Err(GrainError::store(format!(
                    "{path:?} address mismatch (stored epoch {epoch}, requested {})",
                    addr.epoch
                )));
            }
            Ok((dec.pos(), data.len()))
        })();
        match validated {
            Ok(span) => Ok(Some((raw, span))),
            Err(e) => {
                self.counters.corruptions.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn account_load<T>(
        &self,
        raw: &[u8],
        kind: ArtifactKind,
        parsed: GrainResult<T>,
    ) -> GrainResult<Option<T>> {
        match parsed {
            Ok(artifact) => {
                self.counters.loads.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_read
                    .fetch_add(raw.len(), Ordering::Relaxed);
                Ok(Some(artifact))
            }
            Err(e) => {
                self.counters.corruptions.fetch_add(1, Ordering::Relaxed);
                Err(match e {
                    GrainError::StoreCorrupt { message } => {
                        GrainError::store(format!("{} artifact: {message}", kind.ext()))
                    }
                    other => other,
                })
            }
        }
    }

    // ---- retention -------------------------------------------------------

    /// Removes every artifact persisted under `(graph_fingerprint, epoch)`
    /// — the retention path: when an epoch ages out, its files go with it
    /// so the store never re-serves superseded artifacts. Returns the
    /// number of files removed; I/O errors are swallowed (a leftover file
    /// still fails address validation on load).
    pub fn remove_epoch(&self, graph_fingerprint: u64, epoch: u64) -> usize {
        let prefix = format!("{graph_fingerprint:016x}-e{epoch}-");
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(&prefix)
                && name.ends_with(".grain")
                && fs::remove_file(entry.path()).is_ok()
            {
                removed += 1;
            }
        }
        removed
    }
}

/// Well-formed flat CSR: offsets monotone from 0 to `nnz`, every column
/// id inside the `n`-node universe. Runs before `from_parts` so a
/// checksum-valid but logically malformed file is a typed error, not a
/// panic.
fn validate_csr(
    offsets: &[usize],
    cols: &[u32],
    nnz: usize,
    n: usize,
    what: &str,
) -> GrainResult<()> {
    if offsets.len() != n + 1 || offsets.first() != Some(&0) || offsets.last() != Some(&nnz) {
        return Err(GrainError::store(format!("{what}: malformed offsets")));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GrainError::store(format!("{what}: offsets not monotone")));
    }
    if cols.iter().any(|&c| c as usize >= n) {
        return Err(GrainError::store(format!("{what}: column id out of range")));
    }
    Ok(())
}

// ---- fingerprints --------------------------------------------------------

/// 64-bit FNV-1a over a byte string.
pub(crate) fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Incremental 64-bit FNV-1a hasher (word-at-a-time over bulk slices).
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    pub(crate) fn new() -> Self {
        Fnv64(0xcbf29ce484222325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.0 ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
        for &b in chunks.remainder() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    pub(crate) fn finish(&self) -> u64 {
        // Final avalanche so short inputs still spread across all bits.
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51afd7ed558ccd);
        h ^= h >> 33;
        h
    }
}

/// Content hash of a corpus at registration: adjacency CSR (structure +
/// weights) and the feature matrix, shape-prefixed so e.g. a transposed
/// feature matrix cannot alias. This is the root of a corpus's lineage
/// fingerprint; `mix_fingerprint` (crate-private) extends it per
/// applied delta.
pub fn fingerprint_corpus(graph: &Graph, features: &DenseMatrix) -> u64 {
    let mut h = Fnv64::new();
    let adj = graph.adjacency();
    h.write_u64(graph.num_nodes() as u64);
    h.write_u64(adj.nnz() as u64);
    for v in 0..graph.num_nodes() {
        let (cols, vals) = adj.row(v);
        h.write_u64(cols.len() as u64);
        for &c in cols {
            h.write_u32(c);
        }
        for &w in vals {
            h.write_f32(w);
        }
    }
    h.write_u64(features.rows() as u64);
    h.write_u64(features.cols() as u64);
    for &x in features.as_slice() {
        h.write_f32(x);
    }
    h.finish()
}

/// Advances a corpus lineage fingerprint by one applied delta: the new
/// fingerprint depends on the old one *and* the delta's content, so two
/// corpora at the same epoch with different histories never share
/// artifact files.
pub(crate) fn mix_fingerprint(old: u64, delta_hash: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(old);
    h.write_u64(delta_hash);
    h.finish()
}

/// Whole-file checksum: FNV-1a over u64 words with the length folded in,
/// so truncation to a word boundary still changes the sum.
fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(bytes.len() as u64);
    h.write(bytes);
    h.finish()
}

// ---- flat little-endian codec -------------------------------------------

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// Bulk `&[f32]` append: one memcpy on little-endian targets,
    /// element-wise `to_le_bytes` elsewhere (same bytes either way).
    fn f32_slice(&mut self, v: &[f32]) {
        #[cfg(target_endian = "little")]
        {
            // Safety: f32 has no padding and any alignment satisfies u8.
            let bytes = unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), v.len() * 4) };
            self.buf.extend_from_slice(bytes);
        }
        #[cfg(not(target_endian = "little"))]
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Bulk `&[u32]` append (see [`Enc::f32_slice`]).
    fn u32_slice(&mut self, v: &[u32]) {
        #[cfg(target_endian = "little")]
        {
            // Safety: u32 has no padding and any alignment satisfies u8.
            let bytes = unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), v.len() * 4) };
            self.buf.extend_from_slice(bytes);
        }
        #[cfg(not(target_endian = "little"))]
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// `&[usize]` serialized as u64 LE — on-disk offsets are 64-bit
    /// regardless of the host word size.
    fn usize_slice(&mut self, v: &[usize]) {
        #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
        {
            // Safety: usize == u64 here, no padding, u8 alignment.
            let bytes = unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), v.len() * 8) };
            self.buf.extend_from_slice(bytes);
        }
        #[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
        for &x in v {
            self.buf.extend_from_slice(&(x as u64).to_le_bytes());
        }
    }
}

/// Bounds-checked reader over a file's body span. Every overrun is a
/// typed [`GrainError::StoreCorrupt`] (truncation detection), and
/// [`Dec::finish`] rejects trailing garbage (exact-length contract).
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    end: usize,
}

impl<'a> Dec<'a> {
    fn new((buf, (start, end)): (&'a [u8], (usize, usize))) -> Self {
        Dec {
            buf,
            pos: start,
            end,
        }
    }

    fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> GrainResult<&'a [u8]> {
        if n > self.end - self.pos {
            return Err(GrainError::store(format!(
                "truncated: needed {n} bytes, {} left",
                self.end - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> GrainResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> GrainResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f32(&mut self) -> GrainResult<f32> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// A u64 dimension that must fit the host `usize`.
    fn dim(&mut self, what: &str) -> GrainResult<usize> {
        usize::try_from(self.u64()?)
            .map_err(|_| GrainError::store(format!("{what} dimension exceeds host usize")))
    }

    fn str(&mut self) -> GrainResult<String> {
        let len = self.dim("string length")?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| GrainError::store("non-UTF-8 fingerprint string".to_string()))
    }

    fn finish(&mut self) -> GrainResult<()> {
        if self.pos != self.end {
            return Err(GrainError::store(format!(
                "{} trailing bytes after payload",
                self.end - self.pos
            )));
        }
        Ok(())
    }

    /// Bulk `Vec<f32>` read: one memcpy on little-endian targets.
    fn f32_vec(&mut self, n: usize) -> GrainResult<Vec<f32>> {
        let bytes = self.take(n.checked_mul(4).ok_or_else(too_large)?)?;
        #[cfg(target_endian = "little")]
        {
            let mut out = Vec::<f32>::with_capacity(n);
            // Safety: source has exactly n*4 bytes; dest capacity is n
            // f32s; byte copy then set_len — alignment of the Vec's own
            // allocation is correct for f32.
            unsafe {
                std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), n * 4);
                out.set_len(n);
            }
            Ok(out)
        }
        #[cfg(not(target_endian = "little"))]
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Bulk `Vec<u32>` read (see [`Dec::f32_vec`]).
    fn u32_vec(&mut self, n: usize) -> GrainResult<Vec<u32>> {
        let bytes = self.take(n.checked_mul(4).ok_or_else(too_large)?)?;
        #[cfg(target_endian = "little")]
        {
            let mut out = Vec::<u32>::with_capacity(n);
            // Safety: see `f32_vec`.
            unsafe {
                std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), n * 4);
                out.set_len(n);
            }
            Ok(out)
        }
        #[cfg(not(target_endian = "little"))]
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// On-disk u64 offsets back into host `usize`, overflow-checked.
    fn usize_vec(&mut self, n: usize) -> GrainResult<Vec<usize>> {
        let bytes = self.take(n.checked_mul(8).ok_or_else(too_large)?)?;
        bytes
            .chunks_exact(8)
            .map(|c| {
                usize::try_from(u64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .map_err(|_| GrainError::store("offset exceeds host usize".to_string()))
            })
            .collect()
    }
}

fn too_large() -> GrainError {
    GrainError::store("payload length overflows".to_string())
}

// ---- scratch dirs for tests/benches -------------------------------------

/// A uniquely named temp directory removed on drop — the `tempdir`-style
/// helper store tests and benches use so they never leak files into the
/// repo (shim policy: hand-rolled, no tempfile crate).
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Creates `{temp_dir}/grain-{prefix}-{pid}-{seq}`; the process-wide
    /// sequence number plus the create-or-retry loop makes concurrent
    /// test threads collision-free.
    pub fn new(prefix: &str) -> Self {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let pid = std::process::id();
        loop {
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!("grain-{prefix}-{pid}-{n}"));
            match fs::create_dir(&path) {
                Ok(()) => return Self { path },
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => panic!("cannot create scratch dir {path:?}: {e}"),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_graph::{generators, transition_matrix, TransitionKind};
    use grain_influence::ThetaRule;

    fn addr(epoch: u64) -> ContentAddress {
        ContentAddress {
            graph_fingerprint: 0xfeed,
            epoch,
            artifact_fingerprint: "rw:k=2|eps:00000000|theta:rel:3e800000|r:3dcccccd|topk:0"
                .to_string(),
        }
    }

    fn sample_rows() -> InfluenceRows {
        let g = generators::erdos_renyi_gnm(40, 100, 7);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        InfluenceRows::compute(&t, 2, 1e-4)
    }

    #[test]
    fn rows_round_trip_is_bit_identical() {
        let scratch = ScratchDir::new("store-rows");
        let store = ArtifactStore::open(scratch.path()).unwrap();
        let rows = sample_rows();
        let written = store.save_rows(&addr(0), &rows).unwrap();
        assert!(written > 0);
        let back = store.load_rows(&addr(0)).unwrap().expect("present");
        assert_eq!(back.offsets(), rows.offsets());
        assert_eq!(back.cols(), rows.cols());
        assert_eq!(
            back.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            rows.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(back.k(), rows.k());
        let stats = store.stats();
        assert_eq!((stats.saves, stats.loads, stats.corruptions), (1, 1, 0));
        assert_eq!(stats.bytes_written, written);
    }

    #[test]
    fn propagation_round_trip_preserves_ladder() {
        let scratch = ScratchDir::new("store-prop");
        let store = ArtifactStore::open(scratch.path()).unwrap();
        let value = DenseMatrix::from_vec(5, 3, (0..15).map(|i| i as f32 * 0.25).collect());
        let l0 = DenseMatrix::from_vec(5, 3, (0..15).map(|i| (i * 7 % 11) as f32).collect());
        let (back, ladder) = store
            .save_propagation(&addr(2), &value, &[&l0])
            .and_then(|_| store.load_propagation(&addr(2)))
            .unwrap()
            .expect("present");
        assert_eq!(back.as_slice(), value.as_slice());
        assert_eq!(ladder.len(), 1);
        assert_eq!(ladder[0].as_slice(), l0.as_slice());
    }

    #[test]
    fn index_round_trip_is_bit_identical() {
        let scratch = ScratchDir::new("store-index");
        let store = ArtifactStore::open(scratch.path()).unwrap();
        let idx =
            ActivationIndex::build_with_rule(&sample_rows(), ThetaRule::RelativeToRowMax(0.25));
        store.save_index(&addr(1), &idx).unwrap();
        let back = store.load_index(&addr(1)).unwrap().expect("present");
        assert_eq!(back.offsets(), idx.offsets());
        assert_eq!(back.items(), idx.items());
        assert_eq!(back.theta().to_bits(), idx.theta().to_bits());
        assert_eq!(back.k(), idx.k());
    }

    #[test]
    fn missing_file_is_a_miss_not_an_error() {
        let scratch = ScratchDir::new("store-miss");
        let store = ArtifactStore::open(scratch.path()).unwrap();
        assert!(store.load_rows(&addr(0)).unwrap().is_none());
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn every_corruption_is_typed_not_a_panic() {
        let scratch = ScratchDir::new("store-corrupt");
        let store = ArtifactStore::open(scratch.path()).unwrap();
        let rows = sample_rows();
        store.save_rows(&addr(0), &rows).unwrap();
        let path = store.path_for(&addr(0), ArtifactKind::InfluenceRows);
        let pristine = fs::read(&path).unwrap();

        // Truncation.
        fs::write(&path, &pristine[..pristine.len() / 2]).unwrap();
        assert!(matches!(
            store.load_rows(&addr(0)),
            Err(GrainError::StoreCorrupt { .. })
        ));
        // Bad magic.
        let mut bad = pristine.clone();
        bad[0] ^= 0xff;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            store.load_rows(&addr(0)),
            Err(GrainError::StoreCorrupt { .. })
        ));
        // Flipped payload byte (checksum catches it).
        let mut bad = pristine.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            store.load_rows(&addr(0)),
            Err(GrainError::StoreCorrupt { .. })
        ));
        // Wrong codec version (re-checksummed so only the version trips).
        let mut bad = pristine.clone();
        bad[8] = 0xfe;
        let sum = checksum64(&bad[..bad.len() - 8]).to_le_bytes();
        let len = bad.len();
        bad[len - 8..].copy_from_slice(&sum);
        fs::write(&path, &bad).unwrap();
        let err = store.load_rows(&addr(0)).unwrap_err();
        assert!(err.to_string().contains("codec version"), "{err}");
        assert_eq!(store.stats().corruptions, 4);

        // The pristine bytes still load: corruption state is per-file.
        fs::write(&path, &pristine).unwrap();
        assert!(store.load_rows(&addr(0)).unwrap().is_some());
    }

    #[test]
    fn address_mismatch_is_rejected() {
        let scratch = ScratchDir::new("store-addr");
        let store = ArtifactStore::open(scratch.path()).unwrap();
        let rows = sample_rows();
        store.save_rows(&addr(0), &rows).unwrap();
        // Same file bytes renamed under a different epoch must not load.
        let from = store.path_for(&addr(0), ArtifactKind::InfluenceRows);
        let to = store.path_for(&addr(1), ArtifactKind::InfluenceRows);
        fs::copy(&from, &to).unwrap();
        let err = store.load_rows(&addr(1)).unwrap_err();
        assert!(err.to_string().contains("address mismatch"), "{err}");
    }

    #[test]
    fn remove_epoch_only_touches_that_epoch() {
        let scratch = ScratchDir::new("store-prune");
        let store = ArtifactStore::open(scratch.path()).unwrap();
        let rows = sample_rows();
        store.save_rows(&addr(0), &rows).unwrap();
        store.save_rows(&addr(1), &rows).unwrap();
        assert_eq!(store.remove_epoch(0xfeed, 0), 1);
        assert!(store.load_rows(&addr(0)).unwrap().is_none());
        assert!(store.load_rows(&addr(1)).unwrap().is_some());
        // Unknown epoch: nothing to do.
        assert_eq!(store.remove_epoch(0xfeed, 9), 0);
    }

    #[test]
    fn lineage_fingerprints_separate_histories() {
        let g1 = generators::erdos_renyi_gnm(20, 50, 1);
        let g2 = generators::erdos_renyi_gnm(20, 50, 2);
        let x = DenseMatrix::full(20, 3, 0.5);
        let f1 = fingerprint_corpus(&g1, &x);
        let f2 = fingerprint_corpus(&g2, &x);
        assert_ne!(f1, f2, "different graphs, different roots");
        let y = DenseMatrix::full(20, 3, 0.75);
        assert_ne!(f1, fingerprint_corpus(&g1, &y), "features are hashed too");
        assert_eq!(f1, fingerprint_corpus(&g1, &x), "deterministic");
        // Mixing is order- and content-sensitive.
        assert_ne!(mix_fingerprint(f1, 7), mix_fingerprint(f1, 8));
        assert_ne!(mix_fingerprint(f1, 7), mix_fingerprint(f2, 7));
        assert_ne!(
            mix_fingerprint(mix_fingerprint(f1, 7), 8),
            mix_fingerprint(mix_fingerprint(f1, 8), 7)
        );
    }

    #[test]
    fn scratch_dir_cleans_up_on_drop() {
        let path;
        {
            let scratch = ScratchDir::new("cleanup");
            path = scratch.path().to_path_buf();
            fs::write(path.join("junk.grain"), b"junk").unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists(), "scratch dir must vanish with its guard");
    }
}

//! Deterministic fail-point registry (feature `fault-injection`).
//!
//! Production code drops [`point`] markers at named sites; with the
//! `fault-injection` feature **off** (the default) every marker compiles
//! to an inlined empty function — zero branches, zero atomics, nothing
//! for the optimizer to keep. With the feature **on**, tests arm sites
//! with a `Schedule` + `FaultAction` and the marked code panics,
//! sleeps, or cancels on exactly the scheduled hits — replayable because
//! schedules are pure functions of `(seed, hit index)`, never of wall
//! clock or a global RNG.
//!
//! Sites wired through the stack (grep for `fault::point` to audit):
//!
//! | site | fires |
//! |---|---|
//! | `greedy.round` | at each greedy round boundary |
//! | `greedy.eval.block` | after each `cancel_check_every` evaluation block |
//! | `engine.build.propagation` | before the X^(k) propagation build |
//! | `engine.build.rows` | before the influence-row build |
//! | `engine.build.index` | before the activation-index build |
//! | `engine.build.balls` | before the ball-membership build |
//! | `service.request` | at the top of every `GrainService` selection |
//! | `scheduler.dispatch` | in the worker, before a group is dispatched |
//! | `edge.accept` | as an accepted connection starts being served |
//! | `edge.read` | in the connection reader, before each frame read |
//! | `edge.write` | in the connection writer, before each frame write |
//! | `edge.disconnect` | after a ticket resolves, before its response is written (a `Panic` here simulates disconnect-before-response) |
//!
//! The registry is process-global; tests that arm sites must run
//! serially or target sites the other tests never cross, and should
//! `reset()` in a drop guard so a failing assertion cannot leak an armed
//! panic into the next test.

#[cfg(feature = "fault-injection")]
pub use enabled::{arm, disarm, hits, reset, FaultAction, Schedule};

use crate::cancel::CancelToken;

/// Marks a named fail-point site. No-op (and fully inlined away) unless
/// the `fault-injection` feature is enabled and the site is armed.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn point(_site: &str, _cancel: Option<&CancelToken>) {}

/// Marks a named fail-point site. If the site is armed and its schedule
/// selects this hit, the armed [`FaultAction`] executes here.
#[cfg(feature = "fault-injection")]
pub fn point(site: &str, cancel: Option<&CancelToken>) {
    enabled::hit(site, cancel);
}

#[cfg(feature = "fault-injection")]
mod enabled {
    use super::CancelToken;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock, PoisonError};
    use std::time::{Duration, Instant};

    /// What an armed site does on a scheduled hit.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FaultAction {
        /// Panic with a message naming the site (exercises isolation).
        Panic,
        /// Sleep for the given duration (widens race windows on demand).
        Delay(Duration),
        /// Trip the site's [`CancelToken`] *deadline* (so `OnDeadline`
        /// policies apply, exactly like a real deadline expiry). No-op at
        /// sites that carry no token.
        Cancel,
    }

    /// Which hits of a site fire. Hit indices are 1-based and counted
    /// per site since the last [`reset`]/[`arm`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Schedule {
        /// Fire on exactly the `n`-th hit.
        Nth(u64),
        /// Fire on every `n`-th hit (n ≥ 1).
        EveryNth(u64),
        /// Fire on ~1-in-`one_in` hits, chosen by a seeded hash of the
        /// hit index — deterministic and replayable for a given seed.
        Seeded { seed: u64, one_in: u64 },
    }

    impl Schedule {
        fn fires(self, hit: u64) -> bool {
            match self {
                Schedule::Nth(n) => hit == n,
                Schedule::EveryNth(n) => n > 0 && hit % n == 0,
                Schedule::Seeded { seed, one_in } => {
                    one_in > 0
                        && splitmix64(seed ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % one_in == 0
                }
            }
        }
    }

    /// SplitMix64 finalizer: a well-mixed pure function of its input.
    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    struct Site {
        schedule: Schedule,
        action: FaultAction,
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Site>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock() -> std::sync::MutexGuard<'static, HashMap<String, Site>> {
        registry().lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms `site`: hits matching `schedule` execute `action`. Re-arming
    /// resets the site's hit counter.
    pub fn arm(site: &str, schedule: Schedule, action: FaultAction) {
        lock().insert(
            site.to_string(),
            Site {
                schedule,
                action,
                hits: 0,
            },
        );
    }

    /// Disarms `site` (no-op if it was not armed).
    pub fn disarm(site: &str) {
        lock().remove(site);
    }

    /// Disarms every site and forgets all hit counters.
    pub fn reset() {
        lock().clear();
    }

    /// How many times `site` has been crossed since it was armed.
    pub fn hits(site: &str) -> u64 {
        lock().get(site).map_or(0, |s| s.hits)
    }

    pub(super) fn hit(site: &str, cancel: Option<&CancelToken>) {
        // Decide under the lock, act outside it: a Delay must not stall
        // every other site in the process, and a Panic must not poison
        // the registry for the cleanup that follows.
        let action = {
            let mut sites = lock();
            let Some(entry) = sites.get_mut(site) else {
                return;
            };
            entry.hits += 1;
            let hit = entry.hits;
            entry.schedule.fires(hit).then_some(entry.action)
        };
        match action {
            None => {}
            Some(FaultAction::Panic) => panic!("fault injected at {site}"),
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(FaultAction::Cancel) => {
                if let Some(token) = cancel {
                    token.set_deadline(Some(Instant::now()));
                }
            }
        }
    }
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Disarms on drop so a failed assertion cannot leak armed faults.
    struct Guard(&'static str);
    impl Drop for Guard {
        fn drop(&mut self) {
            disarm(self.0);
        }
    }

    #[test]
    fn unarmed_sites_are_inert() {
        point("fault.test.unarmed", None);
        assert_eq!(hits("fault.test.unarmed"), 0);
    }

    #[test]
    fn nth_schedule_fires_exactly_once() {
        let _guard = Guard("fault.test.nth");
        arm("fault.test.nth", Schedule::Nth(3), FaultAction::Cancel);
        let token = crate::cancel::CancelToken::new();
        for _ in 0..2 {
            point("fault.test.nth", Some(&token));
        }
        assert!(!token.is_cancelled());
        point("fault.test.nth", Some(&token));
        assert!(token.is_cancelled(), "third hit fires");
        // Deadline-style trip: OnDeadline policies apply.
        assert_eq!(token.cause(), Some(crate::cancel::CancelCause::Deadline));
        assert_eq!(hits("fault.test.nth"), 3);
    }

    #[test]
    fn seeded_schedule_replays_identically() {
        let _guard = Guard("fault.test.seeded");
        let run = || {
            arm(
                "fault.test.seeded",
                Schedule::Seeded {
                    seed: 42,
                    one_in: 4,
                },
                FaultAction::Delay(Duration::ZERO),
            );
            // Record which of 64 hits fired by probing the counter deltas
            // via a Cancel companion token per hit.
            let mut fired = Vec::new();
            for i in 0..64u64 {
                let token = crate::cancel::CancelToken::new();
                disarm("fault.test.seeded.probe");
                arm(
                    "fault.test.seeded.probe",
                    Schedule::Seeded {
                        seed: 42,
                        one_in: 4,
                    },
                    FaultAction::Cancel,
                );
                // Advance the probe site to hit index i+1 deterministically.
                for _ in 0..i {
                    point("fault.test.seeded.probe", None);
                }
                point("fault.test.seeded.probe", Some(&token));
                fired.push(token.is_cancelled());
            }
            fired
        };
        assert_eq!(run(), run(), "same seed, same schedule");
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _guard = Guard("fault.test.panic");
        arm("fault.test.panic", Schedule::Nth(1), FaultAction::Panic);
        let err = std::panic::catch_unwind(|| point("fault.test.panic", None))
            .expect_err("armed panic fires");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("fault.test.panic"), "{msg}");
    }
}

//! Live corpora: delta application and epoch-versioned artifact
//! maintenance.
//!
//! A registered corpus is immutable *per epoch*: engines, artifacts, and
//! in-flight requests all reference one `(graph, features)` snapshot.
//! [`GrainService::apply_update`] advances a corpus to its next epoch by
//! **patching** the resident engines' cached artifacts instead of
//! rebuilding them — turning an edit of a handful of edges on a
//! million-node corpus from a multi-second cold rebuild into a
//! millisecond-scale splice.
//!
//! # Dirty-set math
//!
//! Let `E` be the (sorted) endpoints of every inserted or deleted edge
//! and `F` the nodes whose feature rows a delta overwrites. Each §3
//! artifact is dirtied by a bounded neighborhood of the edit:
//!
//! | artifact | dirty superset | why |
//! |---|---|---|
//! | transition row `r` | `E` (random-walk), `ball₁(E)` (symmetric) | a row depends on its own adjacency row, plus (symmetric) its neighbors' degrees |
//! | `X^(k)` row `v` | `ball_k(T_d ∪ F)` | row `v` reads transition rows within `k-1` hops and feature rows within `k` hops |
//! | influence row `v` | `ball_{k-1}(T_d)` | the walk from `v` expands transition rows of nodes within `k-1` hops; features never enter |
//! | activation entries | inverted entries of dirty influence rows | `act[u]` is a per-row inversion |
//!
//! Balls are taken under the **new** adjacency, which suffices because
//! both endpoints of every deleted edge are themselves in `E`: any old
//! path from a clean node to a dirty transition row that used a deleted
//! edge already hits a dirty endpoint on its still-live prefix.
//!
//! # Bit-identity contract
//!
//! Patched artifacts are **byte-identical** to a cold build over the
//! mutated corpus: dirty rows re-run the exact per-row float paths of the
//! cold builders ([`grain_prop::propagate()`]'s SpMM row order,
//! [`grain_influence::InfluenceRows`]' scatter-gather walk), clean rows
//! are `memcpy`d, and the cheap row-local artifacts (transition,
//! normalized embedding) rebuild through the cold code path outright.
//! Tier-1 property tests assert byte equality across kernels, top-k
//! truncation, and thread counts.
//!
//! # Epochs and concurrency
//!
//! Pool keys carry the corpus epoch, so an update never mutates an
//! artifact a request might be reading: patched engines are inserted
//! under epoch `e+1` keys, the corpus pointer is swapped, and in-flight
//! requests holding epoch-`e` checkouts finish on their consistent
//! snapshot. Stale epochs age out through ordinary LRU eviction. The
//! scheduler stamps the submit-time epoch into its coalescing key, so
//! selections racing an update coalesce only within one corpus version
//! and re-submissions after the flip run (and re-key) on `e+1`.

use crate::engine::{PatchTimings, SelectionEngine};
use crate::error::{GrainError, GrainResult};
use crate::service::{GrainService, PoolKey};
use grain_graph::{apply_edge_edits, k_hop_ball, Graph, TransitionKind};
use grain_linalg::DenseMatrix;
use std::collections::HashMap;
use std::sync::{Arc, PoisonError, TryLockError};
use std::time::{Duration, Instant};

/// A batch of structural and feature edits applied atomically to one
/// registered corpus — the unit of [`GrainService::apply_update`].
///
/// Edges are undirected and unweighted-by-default (weight `1.0`);
/// endpoint order does not matter. A delta must be internally consistent:
/// no duplicate edits of one edge or feature row, no self-loops, inserts
/// of live edges only if the same batch deletes them first. Validation
/// happens against the corpus snapshot inside `apply_update`; an invalid
/// delta leaves the corpus untouched.
///
/// ```
/// use grain_core::streaming::GraphDelta;
///
/// let delta = GraphDelta::new()
///     .insert_edge(3, 17)
///     .insert_weighted(4, 9, 2.5)
///     .delete_edge(3, 5)
///     .set_features(17, vec![0.1, 0.2, 0.3]);
/// assert!(!delta.is_empty());
/// assert_eq!((delta.num_inserts(), delta.num_deletes()), (2, 1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphDelta {
    inserts: Vec<(u32, u32, f32)>,
    deletes: Vec<(u32, u32)>,
    feature_rows: Vec<(u32, Vec<f32>)>,
}

impl GraphDelta {
    /// An empty delta; chain the builder methods to fill it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts the undirected edge `{u, v}` with weight `1.0`.
    #[must_use]
    pub fn insert_edge(self, u: u32, v: u32) -> Self {
        self.insert_weighted(u, v, 1.0)
    }

    /// Inserts the undirected edge `{u, v}` with an explicit weight.
    #[must_use]
    pub fn insert_weighted(mut self, u: u32, v: u32, weight: f32) -> Self {
        self.inserts.push((u, v, weight));
        self
    }

    /// Deletes the undirected edge `{u, v}`.
    #[must_use]
    pub fn delete_edge(mut self, u: u32, v: u32) -> Self {
        self.deletes.push((u, v));
        self
    }

    /// Overwrites node `v`'s feature row. The row must match the corpus
    /// feature width at application time.
    #[must_use]
    pub fn set_features(mut self, v: u32, row: Vec<f32>) -> Self {
        self.feature_rows.push((v, row));
        self
    }

    /// True when the delta contains no edits at all (such a delta is
    /// rejected by [`GrainService::apply_update`]).
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty() && self.feature_rows.is_empty()
    }

    /// Number of edge insertions.
    pub fn num_inserts(&self) -> usize {
        self.inserts.len()
    }

    /// Number of edge deletions.
    pub fn num_deletes(&self) -> usize {
        self.deletes.len()
    }

    /// Number of feature-row overwrites.
    pub fn num_feature_rows(&self) -> usize {
        self.feature_rows.len()
    }

    /// Validates the feature-row edits against the corpus snapshot (edge
    /// edits are validated structurally by [`apply_edge_edits`]).
    fn validate_features(&self, features: &DenseMatrix) -> GrainResult<()> {
        let (n, d) = features.shape();
        let mut seen: Vec<u32> = Vec::with_capacity(self.feature_rows.len());
        for (v, row) in &self.feature_rows {
            if *v as usize >= n {
                return Err(GrainError::delta(format!(
                    "feature row {v} out of range for a corpus of {n} nodes"
                )));
            }
            if row.len() != d {
                return Err(GrainError::delta(format!(
                    "feature row {v} has width {}, corpus has {d}",
                    row.len()
                )));
            }
            if let Some(bad) = row.iter().find(|x| !x.is_finite()) {
                return Err(GrainError::delta(format!(
                    "feature row {v} contains non-finite value {bad}"
                )));
            }
            if seen.contains(v) {
                return Err(GrainError::delta(format!(
                    "feature row {v} is overwritten twice in one delta"
                )));
            }
            seen.push(*v);
        }
        Ok(())
    }

    /// Sorted node ids whose feature rows this delta overwrites.
    fn feature_seeds(&self) -> Vec<u32> {
        let mut seeds: Vec<u32> = self.feature_rows.iter().map(|(v, _)| *v).collect();
        seeds.sort_unstable();
        seeds
    }
}

/// The sorted dirty-row supersets of one delta under one `(transition
/// kind, depth)` — shared by every resident engine with that kernel
/// shape (see the module docs for the derivation).
#[derive(Clone, Debug)]
pub struct DirtySets {
    /// Transition rows whose values can change (`T_d`).
    pub transition: Vec<u32>,
    /// `X^(k)` rows to re-propagate (`ball_k(T_d ∪ F)`).
    pub propagation: Vec<u32>,
    /// Influence rows to re-walk (`ball_{k-1}(T_d)`).
    pub influence: Vec<u32>,
}

impl DirtySets {
    /// Computes the dirty supersets for a delta with edge-edit endpoints
    /// `endpoints` and feature-row seeds `feature_seeds`, for an engine
    /// running `kind` at propagation depth `k`. Balls expand under the
    /// *new* adjacency (`graph` is the post-splice graph).
    pub fn compute(
        graph: &Graph,
        kind: TransitionKind,
        k: usize,
        endpoints: &[u32],
        feature_seeds: &[u32],
    ) -> Self {
        let transition = match kind {
            TransitionKind::RandomWalk => endpoints.to_vec(),
            // A symmetric-normalized row also depends on its neighbors'
            // degrees, so the edit's endpoints dirty their 1-hop ball.
            TransitionKind::Symmetric => k_hop_ball(graph, endpoints, 1),
            TransitionKind::TriangleInduced => {
                unreachable!("triangle-induced engines are rebuilt cold, not patched")
            }
        };
        let mut seeds: Vec<u32> = transition
            .iter()
            .chain(feature_seeds.iter())
            .copied()
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        let propagation = k_hop_ball(graph, &seeds, k);
        let influence = if k == 0 || transition.is_empty() {
            Vec::new()
        } else {
            k_hop_ball(graph, &transition, k - 1)
        };
        Self {
            transition,
            propagation,
            influence,
        }
    }
}

/// One migrated engine in an [`EpochReport`]: which artifact fingerprint
/// it serves and how many rows each incremental patch touched.
#[derive(Clone, Debug)]
pub struct PatchSummary {
    /// The engine's artifact fingerprint (see
    /// [`crate::GrainConfig::artifact_fingerprint`]).
    pub fingerprint: String,
    /// `X^(k)` rows re-propagated.
    pub dirty_propagation: usize,
    /// Influence rows re-walked.
    pub dirty_influence: usize,
    /// Per-stage wall clock of this engine's migration.
    pub timings: PatchTimings,
}

/// What one [`GrainService::apply_update`] did: the epoch transition,
/// the delta's shape, and the per-engine patch accounting.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// The updated graph id.
    pub graph: String,
    /// Epoch the delta was applied against.
    pub from_epoch: u64,
    /// The new current epoch (`from_epoch + 1`).
    pub epoch: u64,
    /// Edge insertions applied.
    pub edges_inserted: usize,
    /// Edge deletions applied.
    pub edges_deleted: usize,
    /// Feature rows overwritten.
    pub feature_rows_overwritten: usize,
    /// Engines patched into the new epoch (one entry each).
    pub patched: Vec<PatchSummary>,
    /// Resident engines skipped because another request held their lock;
    /// they stay on the old epoch and age out via LRU eviction.
    pub engines_skipped_busy: usize,
    /// Triangle-induced engines skipped (a single edge edit can dirty
    /// every triangle count, so they rebuild cold on next use).
    pub engines_skipped_triangle: usize,
    /// Wall time spent splicing the graph/features snapshot.
    pub splice_time: Duration,
    /// Wall time spent patching engines.
    pub patch_time: Duration,
    /// Total wall time of the update.
    pub total_time: Duration,
}

impl EpochReport {
    /// Number of engines migrated to the new epoch.
    pub fn engines_patched(&self) -> usize {
        self.patched.len()
    }

    /// Largest re-propagated row count across patched engines (0 when no
    /// engine was resident) — the headline dirty-set size of the update.
    pub fn max_dirty_propagation(&self) -> usize {
        self.patched
            .iter()
            .map(|p| p.dirty_propagation)
            .max()
            .unwrap_or(0)
    }
}

impl GrainService {
    /// Applies `delta` to the registered corpus `graph_id`, advancing it
    /// one epoch and migrating every idle resident engine by patching its
    /// cached artifacts in place of a cold rebuild.
    ///
    /// The patched artifacts are **byte-identical** to what a cold build
    /// over the mutated corpus would produce (see the module docs), so
    /// selections after an update are bit-for-bit the selections of a
    /// freshly registered mutated graph. In-flight requests racing the
    /// update finish on the old epoch's snapshot; requests submitted
    /// after it run on the new one.
    ///
    /// Fails with [`GrainError::UnknownGraph`] for an unregistered id and
    /// [`GrainError::InvalidDelta`] for an inconsistent delta (endpoint
    /// out of range, self-loop, insert of a live edge, delete of a
    /// missing edge, non-finite weight or feature, duplicate edit, wrong
    /// feature width, or an empty delta). On error the corpus and every
    /// engine are untouched.
    pub fn apply_update(&self, graph_id: &str, delta: &GraphDelta) -> GrainResult<EpochReport> {
        let t0 = Instant::now();
        // One mutation at a time; selections never take this lock.
        let _update = self.update.lock().unwrap_or_else(PoisonError::into_inner);
        let (old_graph, old_features, from_epoch, old_fingerprint) = self.corpus(graph_id)?;
        if delta.is_empty() {
            return Err(GrainError::delta("delta contains no edits"));
        }
        delta.validate_features(&old_features)?;

        // Splice the new snapshot. Both artifacts stay structurally
        // shared with the old epoch where the delta leaves them
        // untouched (feature-only deltas reuse the graph Arc and vice
        // versa).
        let (new_graph, endpoints) = if delta.inserts.is_empty() && delta.deletes.is_empty() {
            (Arc::clone(&old_graph), Vec::new())
        } else {
            let (g, endpoints) = apply_edge_edits(&old_graph, &delta.inserts, &delta.deletes)
                .map_err(|e| GrainError::delta(e.to_string()))?;
            (Arc::new(g), endpoints)
        };
        let new_features = if delta.feature_rows.is_empty() {
            Arc::clone(&old_features)
        } else {
            let mut f = (*old_features).clone();
            for (v, row) in &delta.feature_rows {
                f.row_mut(*v as usize).copy_from_slice(row);
            }
            Arc::new(f)
        };
        let feature_seeds = delta.feature_seeds();
        // The new epoch's lineage fingerprint folds the delta into the
        // old one, so a persisted pre-delta artifact can never answer a
        // post-delta content address — even at the same epoch number on
        // a diverged history (store regression test).
        let new_fingerprint = if self.store.is_some() {
            crate::store::mix_fingerprint(old_fingerprint, delta_hash(delta))
        } else {
            0
        };
        let splice_time = t0.elapsed();

        // Migrate resident engines: per engine, compute (or reuse) the
        // dirty sets for its (transition kind, depth) and park the
        // patched engine under the next epoch's key. `try_lock` keeps
        // the update from ever blocking behind a long selection — a busy
        // engine simply stays behind on the old epoch and rebuilds cold
        // on its next use.
        let t1 = Instant::now();
        let mut dirty_cache: HashMap<(TransitionKind, usize), DirtySets> = HashMap::new();
        let mut patched = Vec::new();
        let mut pending: Vec<crate::store::PendingArtifact> = Vec::new();
        let mut skipped_busy = 0usize;
        let mut skipped_triangle = 0usize;
        for key in self.pool.resident_keys_for(graph_id, from_epoch) {
            let Some(slot) = self.pool.get_slot(&key) else {
                continue; // evicted since the snapshot
            };
            let migrated: Option<(SelectionEngine, PatchTimings, usize, usize)> = {
                let engine = match slot.engine.try_lock() {
                    Ok(engine) => engine,
                    Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
                    Err(TryLockError::WouldBlock) => {
                        skipped_busy += 1;
                        continue;
                    }
                };
                let kernel = engine.config().kernel;
                if kernel.transition_kind() == TransitionKind::TriangleInduced {
                    skipped_triangle += 1;
                    None
                } else {
                    let shape = (kernel.transition_kind(), kernel.steps());
                    let dirty = dirty_cache.entry(shape).or_insert_with(|| {
                        DirtySets::compute(&new_graph, shape.0, shape.1, &endpoints, &feature_seeds)
                    });
                    let (next, timings) = engine.patched(
                        Arc::clone(&new_graph),
                        Arc::clone(&new_features),
                        &dirty.transition,
                        &dirty.propagation,
                        &dirty.influence,
                    );
                    Some((
                        next,
                        timings,
                        dirty.propagation.len(),
                        dirty.influence.len(),
                    ))
                }
            };
            if let Some((next, timings, dirty_propagation, dirty_influence)) = migrated {
                // Re-persist the patched artifacts under the new epoch's
                // content address: patched ≡ cold-over-mutated-graph
                // byte-for-byte, so the store stays warm across the
                // epoch flip. Encoded here (we own `next`), written
                // after the corpus pointer flips.
                if let Some(store) = &self.store {
                    let addr = crate::store::ContentAddress {
                        graph_fingerprint: new_fingerprint,
                        epoch: from_epoch + 1,
                        artifact_fingerprint: key.fingerprint.clone(),
                    };
                    if let Some((value, ladder)) = next.persistable_propagation() {
                        let levels: Vec<&grain_linalg::DenseMatrix> =
                            ladder.iter().map(Arc::as_ref).collect();
                        pending.push(store.encode_propagation(&addr, &value, &levels));
                    }
                    if let Some(rows) = next.persistable_rows() {
                        pending.push(store.encode_rows(&addr, rows));
                    }
                    if let Some(index) = next.persistable_index() {
                        pending.push(store.encode_index(&addr, index));
                    }
                }
                self.pool.insert_ready(
                    PoolKey {
                        graph: key.graph.clone(),
                        epoch: from_epoch + 1,
                        fingerprint: key.fingerprint.clone(),
                    },
                    next,
                );
                patched.push(PatchSummary {
                    fingerprint: key.fingerprint,
                    dirty_propagation,
                    dirty_influence,
                    timings,
                });
            }
        }
        let patch_time = t1.elapsed();

        // Flip the corpus pointer. New requests now observe epoch e+1
        // and find the patched engines warm under their keys.
        let retirement = {
            let mut corpora = self.corpora.write().unwrap_or_else(PoisonError::into_inner);
            let corpus = corpora
                .get_mut(graph_id)
                .ok_or_else(|| GrainError::UnknownGraph {
                    graph: graph_id.to_string(),
                })?;
            corpus.retired.push((corpus.epoch, corpus.fingerprint));
            corpus.graph = new_graph;
            corpus.features = new_features;
            corpus.epoch = from_epoch + 1;
            corpus.fingerprint = new_fingerprint;
            GrainService::trim_retention(corpus, self.retain_epochs)
        };
        // Retention and persistence run after the flip, off the corpora
        // lock: stale-epoch engines are reclaimed from the pool, the
        // dropped epochs' store files removed, and the patched epoch's
        // artifacts written.
        self.reclaim_retired(graph_id, retirement);
        if let Some(store) = &self.store {
            for artifact in pending {
                let _ = store.commit(artifact);
            }
        }

        Ok(EpochReport {
            graph: graph_id.to_string(),
            from_epoch,
            epoch: from_epoch + 1,
            edges_inserted: delta.num_inserts(),
            edges_deleted: delta.num_deletes(),
            feature_rows_overwritten: delta.num_feature_rows(),
            patched,
            engines_skipped_busy: skipped_busy,
            engines_skipped_triangle: skipped_triangle,
            splice_time,
            patch_time,
            total_time: t0.elapsed(),
        })
    }
}

/// Deterministic content hash of a delta's edits, folded into the corpus
/// lineage fingerprint by [`crate::store::mix_fingerprint`]. Length
/// prefixes keep distinct edit lists from colliding by concatenation.
fn delta_hash(delta: &GraphDelta) -> u64 {
    let mut h = crate::store::Fnv64::new();
    h.write_u64(delta.inserts.len() as u64);
    for &(u, v, w) in &delta.inserts {
        h.write_u32(u);
        h.write_u32(v);
        h.write_f32(w);
    }
    h.write_u64(delta.deletes.len() as u64);
    for &(u, v) in &delta.deletes {
        h.write_u32(u);
        h.write_u32(v);
    }
    h.write_u64(delta.feature_rows.len() as u64);
    for (v, row) in &delta.feature_rows {
        h.write_u32(*v);
        h.write_u64(row.len() as u64);
        for &x in row {
            h.write_f32(x);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GrainConfig;
    use crate::service::{Budget, SelectionRequest};
    use grain_graph::generators;

    fn corpus(n: usize, seed: u64) -> (Graph, DenseMatrix) {
        let g = generators::erdos_renyi_gnm(n, 3 * n, seed);
        let mut x = DenseMatrix::zeros(n, 6);
        for v in 0..n {
            for j in 0..6 {
                x.set(v, j, ((v * 31 + j * 7 + seed as usize) % 13) as f32 * 0.1);
            }
        }
        (g, x)
    }

    #[test]
    fn delta_builder_accumulates_edits() {
        let d = GraphDelta::new()
            .insert_edge(0, 1)
            .delete_edge(2, 3)
            .set_features(4, vec![1.0]);
        assert_eq!(
            (d.num_inserts(), d.num_deletes(), d.num_feature_rows()),
            (1, 1, 1)
        );
        assert!(!d.is_empty());
        assert!(GraphDelta::new().is_empty());
    }

    #[test]
    fn apply_update_bumps_epoch_and_patches_resident_engines() {
        let (g, x) = corpus(120, 3);
        let service = GrainService::with_capacity(4);
        service.register_graph("g", g, x).unwrap();
        assert_eq!(service.epoch("g").unwrap(), 0);
        let request = SelectionRequest::new("g", GrainConfig::ball_d(), Budget::Fixed(6));
        service.select(&request).unwrap();

        let report = service
            .apply_update("g", &GraphDelta::new().insert_edge(0, 100))
            .unwrap();
        assert_eq!((report.from_epoch, report.epoch), (0, 1));
        assert_eq!(service.epoch("g").unwrap(), 1);
        assert_eq!(report.engines_patched(), 1);
        assert_eq!(report.engines_skipped_busy, 0);
        assert!(report.max_dirty_propagation() > 0);

        // The patched engine answers the post-update request warm: no
        // propagation or influence rebuild.
        let after = service.select(&request).unwrap();
        assert_eq!(after.pool_event, crate::service::PoolEvent::Hit);
        assert_eq!(after.artifact_builds.propagation_builds, 0);
        assert_eq!(after.artifact_builds.influence_builds, 0);
    }

    #[test]
    fn apply_update_reclaims_stale_epoch_engines() {
        // Default retention (1 epoch): the moment the corpus flips to
        // e1, every engine still keyed to e0 is reclaimed from the pool
        // — patched engines live on under their e1 keys.
        let (g, x) = corpus(120, 17);
        let service = GrainService::with_capacity(8);
        service.register_graph("g", g, x).unwrap();
        let base = GrainConfig::ball_d();
        let deep = GrainConfig {
            radius: base.radius * 2.0,
            ..base
        };
        for cfg in [base, deep] {
            service
                .select(&SelectionRequest::new("g", cfg, Budget::Fixed(5)))
                .unwrap();
        }
        assert_eq!(service.pool().len(), 2);
        let report = service
            .apply_update("g", &GraphDelta::new().insert_edge(0, 100))
            .unwrap();
        assert_eq!(report.engines_patched(), 2);
        // 2 patched engines at e1; both e0 originals reclaimed.
        assert_eq!(service.pool_stats().epoch_reclaims, 2);
        assert_eq!(service.pool().len(), 2);
        assert!(service
            .pool()
            .keys()
            .iter()
            .all(|(_, epoch, _)| *epoch == 1));
    }

    #[test]
    fn retain_epochs_keeps_a_window_of_past_epochs() {
        // retain_epochs(2): e0 engines survive the first update (a
        // long-running e0 reader could still want them) and are
        // reclaimed by the second.
        let (g, x) = corpus(100, 18);
        let service = GrainService::with_capacity(8).with_retain_epochs(2);
        service.register_graph("g", g, x).unwrap();
        let request = SelectionRequest::new("g", GrainConfig::ball_d(), Budget::Fixed(5));
        service.select(&request).unwrap();
        service
            .apply_update("g", &GraphDelta::new().insert_edge(0, 50))
            .unwrap();
        assert_eq!(service.pool_stats().epoch_reclaims, 0);
        assert_eq!(service.pool().len(), 2, "e0 and e1 both resident");
        service
            .apply_update("g", &GraphDelta::new().insert_edge(1, 51))
            .unwrap();
        assert_eq!(service.pool_stats().epoch_reclaims, 1, "e0 reclaimed");
        let epochs: Vec<u64> = service.pool().keys().iter().map(|k| k.1).collect();
        assert!(
            epochs.iter().all(|&e| e >= 1),
            "epochs resident: {epochs:?}"
        );
    }

    #[test]
    fn patched_selection_matches_cold_service_over_mutated_graph() {
        let (g, x) = corpus(150, 9);
        let delta = GraphDelta::new()
            .insert_edge(1, 140)
            .insert_weighted(7, 33, 2.0)
            .delete_edge_of(&g);
        let service = GrainService::with_capacity(4);
        service
            .register_graph("live", g.clone(), x.clone())
            .unwrap();
        let request = SelectionRequest::new("live", GrainConfig::ball_d(), Budget::Fixed(8));
        service.select(&request).unwrap();
        service.apply_update("live", &delta).unwrap();
        let patched = service.select(&request).unwrap();

        // Cold reference: a fresh service registered directly with the
        // mutated corpus.
        let (g2, _) = apply_edge_edits(&g, &delta.inserts, &delta.deletes).unwrap();
        let cold_service = GrainService::with_capacity(4);
        cold_service.register_graph("live", g2, x).unwrap();
        let cold = cold_service
            .select(&SelectionRequest::new(
                "live",
                GrainConfig::ball_d(),
                Budget::Fixed(8),
            ))
            .unwrap();
        assert_eq!(patched.outcome().selected, cold.outcome().selected);
        assert_eq!(
            patched.outcome().objective_trace,
            cold.outcome().objective_trace
        );
    }

    #[test]
    fn feature_only_delta_dirties_no_influence_rows() {
        let (g, x) = corpus(100, 5);
        let service = GrainService::with_capacity(4);
        service.register_graph("g", g, x).unwrap();
        let request = SelectionRequest::new("g", GrainConfig::ball_d(), Budget::Fixed(5));
        service.select(&request).unwrap();
        let report = service
            .apply_update(
                "g",
                &GraphDelta::new().set_features(12, vec![9.0, 0.0, 0.0, 0.0, 0.0, 1.0]),
            )
            .unwrap();
        assert_eq!(report.engines_patched(), 1);
        assert_eq!(report.patched[0].dirty_influence, 0);
        assert!(report.patched[0].dirty_propagation > 0);
    }

    #[test]
    fn invalid_deltas_are_rejected_and_corpus_untouched() {
        let (g, x) = corpus(50, 1);
        let service = GrainService::with_capacity(2);
        service.register_graph("g", g, x).unwrap();
        for (delta, needle) in [
            (GraphDelta::new(), "no edits"),
            (GraphDelta::new().insert_edge(0, 99), "out of range"),
            (GraphDelta::new().insert_edge(4, 4), "self-loop"),
            (GraphDelta::new().delete_edge(0, 49), "does not exist"),
            (GraphDelta::new().set_features(7, vec![1.0]), "width"),
            (
                GraphDelta::new().set_features(99, vec![0.0; 6]),
                "out of range",
            ),
            (
                GraphDelta::new().set_features(3, vec![f32::NAN, 0.0, 0.0, 0.0, 0.0, 0.0]),
                "non-finite",
            ),
        ] {
            let err = service.apply_update("g", &delta).unwrap_err();
            assert!(
                matches!(err, GrainError::InvalidDelta { .. }),
                "{delta:?} -> {err}"
            );
            assert!(err.to_string().contains(needle), "{err} !~ {needle}");
            assert_eq!(service.epoch("g").unwrap(), 0, "epoch moved on {err}");
        }
        let err = service
            .apply_update("missing", &GraphDelta::new().insert_edge(0, 1))
            .unwrap_err();
        assert!(matches!(err, GrainError::UnknownGraph { .. }));
    }

    #[test]
    fn register_graph_rejects_duplicates_and_replace_graph_advances_epoch() {
        let (g, x) = corpus(60, 2);
        let service = GrainService::with_capacity(2);
        service.register_graph("g", g.clone(), x.clone()).unwrap();
        // Regression: re-registration must stay a typed error, even with
        // identical data — snapshots are immutable per epoch.
        let err = service.register_graph("g", g, x).unwrap_err();
        assert!(matches!(err, GrainError::GraphAlreadyRegistered { .. }));
        assert_eq!(service.epoch("g").unwrap(), 0);

        // replace_graph is the sanctioned wholesale swap: new snapshot,
        // next epoch, old engines unreachable by new requests.
        let (g2, x2) = corpus(80, 3);
        let epoch = service.replace_graph("g", g2, x2).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(service.epoch("g").unwrap(), 1);
        assert_eq!(service.graph("g").unwrap().num_nodes(), 80);
        let (g3, _) = corpus(70, 4);
        let err = service
            .replace_graph("g", g3, DenseMatrix::zeros(9, 6))
            .unwrap_err();
        assert!(matches!(err, GrainError::FeatureShape { .. }));
        let (g4, x4) = corpus(40, 5);
        let err = service.replace_graph("nope", g4, x4).unwrap_err();
        assert!(matches!(err, GrainError::UnknownGraph { .. }));
    }

    impl GraphDelta {
        /// Test helper: delete the first edge of node 5 (guaranteed to
        /// exist in the generated corpora).
        fn delete_edge_of(self, g: &Graph) -> Self {
            let (cols, _) = g.adjacency().row(5);
            let c = cols[0];
            self.delete_edge(5, c)
        }
    }
}

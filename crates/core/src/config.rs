//! Configuration of the Grain selection pipeline.
//!
//! Defaults follow Appendix A.4 of the paper: threshold `θ = 0.25`, ball
//! radius `r = 0.05`, trade-off `γ = 1`, and a depth-2 propagation matching
//! the 2-layer GCN used throughout the evaluation.

use crate::error::{GrainError, GrainResult};
use grain_influence::index::ThetaRule;
use grain_prop::Kernel;
use serde::{Deserialize, Serialize};

/// Which diversity function instantiates `D(S)` in Eq. 11.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiversityKind {
    /// Ball coverage over activated nodes (Definition 3.6).
    Ball,
    /// Nearest-neighbor distance reduction (Definition 3.4).
    Nn,
}

/// Greedy maximization strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GreedyAlgorithm {
    /// Algorithm 1 verbatim: re-evaluate every candidate each round.
    Plain,
    /// CELF lazy greedy: exploit submodularity to skip stale candidates.
    /// Selects the identical set (property-tested) at a fraction of the
    /// marginal-gain evaluations.
    Lazy,
}

/// Candidate pruning strategies from §3.4 ("identify and dismiss
/// uninfluential nodes").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PruneStrategy {
    /// Keep the top fraction of candidates by degree.
    Degree {
        /// Fraction of candidates retained, in `(0, 1]`.
        keep_fraction: f64,
    },
    /// Keep the top fraction by received random-walk mass
    /// (Σ_v I_v(u, k), the distribution of random walkers of \[26\]).
    WalkMass {
        /// Fraction of candidates retained, in `(0, 1]`.
        keep_fraction: f64,
    },
}

/// The selection variant: full Grain or one of the Table 3 ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrainVariant {
    /// Full DIM objective (magnitude + diversity over `σ(S)`).
    Full,
    /// "No Diversity": maximize `|σ(S)|` only.
    NoDiversity,
    /// "No Magnitude": maximize ball coverage of balls centered on the
    /// *seed* nodes themselves, no influence term.
    NoMagnitude,
    /// "Classic Coverage": keep the magnitude term but compute diversity
    /// from balls centered on `S` instead of `σ(S)` — the i.i.d.-style
    /// coverage of \[45\] that ignores propagation.
    ClassicCoverage,
}

/// Full pipeline configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GrainConfig {
    /// Propagation kernel inherited from the target GNN (Eq. 6 / Table 1).
    pub kernel: Kernel,
    /// Activation threshold rule for `θ` (Definition 3.2). The paper's
    /// `θ = 0.25` is interpreted relative to each row's strongest
    /// influencer by default (see [`ThetaRule`] and DESIGN.md).
    pub theta: ThetaRule,
    /// Ball radius `r` in the normalized feature space (Definition 3.6).
    pub radius: f32,
    /// Diversity trade-off `γ` in Eq. 11.
    pub gamma: f64,
    /// Influence-row pruning epsilon (entries below never reach `θ`).
    pub influence_eps: f32,
    /// Deterministic row truncation: keep only the `top_k` heaviest
    /// entries of each influence row (ties → smaller column id), applied
    /// **before** Eq. 8 normalization; `0` disables truncation. Bounds the
    /// influence artifact at `top_k` entries per node on hub-heavy graphs
    /// where ε-pruning alone is not enough — the lever that makes the
    /// n=1e6 hot path fit in memory. Changes results, so it participates
    /// in [`GrainConfig::artifact_fingerprint`].
    pub influence_row_top_k: usize,
    /// Diversity function choice.
    pub diversity: DiversityKind,
    /// Greedy maximization strategy.
    pub algorithm: GreedyAlgorithm,
    /// Optional §3.4 candidate pruning.
    pub prune: Option<PruneStrategy>,
    /// Full objective or a Table 3 ablation.
    pub variant: GrainVariant,
    /// Worker threads for the artifact hot paths (`X^(k)` propagation
    /// rounds, influence rows, activation-index inversion, ball lists,
    /// NN `d_max`); `0` means auto (`GRAIN_THREADS` or the machine's
    /// available parallelism).
    ///
    /// Deliberately **excluded** from
    /// [`GrainConfig::artifact_fingerprint`]: every parallel kernel uses
    /// row-range partitioning with fixed-order reductions, so artifacts
    /// are bit-identical at any thread count — two configs differing only
    /// here share one warm engine and rebuild nothing.
    pub parallelism: usize,
    /// How many marginal-gain evaluations may pass between cooperative
    /// cancellation checks inside a greedy round (round boundaries are
    /// always checked). Smaller values observe a tripped
    /// [`CancelToken`](crate::cancel::CancelToken) sooner at slightly
    /// more polling overhead; must be ≥ 1.
    ///
    /// Like `parallelism`, this field is **excluded** from both
    /// fingerprints: checkpoints never change which candidate is picked,
    /// so two configs differing only here select identically and share
    /// one warm engine.
    pub cancel_check_every: usize,
}

impl Default for GrainConfig {
    fn default() -> Self {
        Self {
            kernel: Kernel::RandomWalk { k: 2 },
            theta: ThetaRule::RelativeToRowMax(0.25),
            radius: 0.05,
            gamma: 1.0,
            influence_eps: 1e-4,
            influence_row_top_k: 0,
            diversity: DiversityKind::Ball,
            algorithm: GreedyAlgorithm::Lazy,
            prune: None,
            variant: GrainVariant::Full,
            parallelism: 0,
            cancel_check_every: 1024,
        }
    }
}

impl GrainConfig {
    /// The paper's "Grain (ball-D)" configuration.
    #[must_use]
    pub fn ball_d() -> Self {
        Self {
            diversity: DiversityKind::Ball,
            ..Self::default()
        }
    }

    /// The paper's "Grain (NN-D)" configuration.
    #[must_use]
    pub fn nn_d() -> Self {
        Self {
            diversity: DiversityKind::Nn,
            ..Self::default()
        }
    }

    /// Table 3 ablation constructor.
    #[must_use]
    pub fn ablation(variant: GrainVariant) -> Self {
        Self {
            variant,
            ..Self::ball_d()
        }
    }

    /// Validates parameter ranges, returning the first violation as a
    /// typed [`GrainError::InvalidConfig`].
    pub fn validate(&self) -> GrainResult<()> {
        self.theta
            .validate()
            .map_err(|message| GrainError::config("theta", message))?;
        if !(0.0..=1.0).contains(&self.radius) {
            return Err(GrainError::config(
                "radius",
                format!("must lie in [0,1], got {}", self.radius),
            ));
        }
        if !(0.0..=10.0).contains(&self.gamma) {
            return Err(GrainError::config(
                "gamma",
                format!("must lie in [0,10], got {}", self.gamma),
            ));
        }
        if self.influence_eps < 0.0 {
            return Err(GrainError::config(
                "influence_eps",
                format!("must be >= 0, got {}", self.influence_eps),
            ));
        }
        if let Some(
            PruneStrategy::Degree { keep_fraction } | PruneStrategy::WalkMass { keep_fraction },
        ) = self.prune
        {
            if !(0.0 < keep_fraction && keep_fraction <= 1.0) {
                return Err(GrainError::config(
                    "prune.keep_fraction",
                    format!("must lie in (0,1], got {keep_fraction}"),
                ));
            }
        }
        if self.cancel_check_every == 0 {
            return Err(GrainError::config(
                "cancel_check_every",
                "must be >= 1 (checks cannot be infinitely frequent)",
            ));
        }
        Ok(())
    }

    /// A stable key over exactly the fields that determine the engine's
    /// cached artifacts (transition matrix, `X^(k)`, influence rows,
    /// activation index, ball lists, NN `d_max`).
    ///
    /// Two configs with equal fingerprints can share one warm
    /// [`crate::SelectionEngine`] with zero rebuilds: the remaining fields
    /// (`gamma`, `algorithm`, `prune`, `variant`) only steer the greedy
    /// stage and ride along via [`crate::SelectionEngine::set_config`],
    /// and `parallelism` only changes how many workers build an artifact,
    /// never its bits. The [`crate::service::EnginePool`] keys engines by
    /// this fingerprint.
    ///
    /// `f32` parameters enter by bit pattern, consistent with the engine's
    /// internal cache keys.
    #[must_use]
    pub fn artifact_fingerprint(&self) -> String {
        let theta = match self.theta {
            ThetaRule::FixedAbsolute(t) => format!("abs:{:08x}", t.to_bits()),
            ThetaRule::RelativeToRowMax(t) => format!("rel:{:08x}", t.to_bits()),
            ThetaRule::GlobalQuantile(q) => format!("q:{:016x}", q.to_bits()),
        };
        format!(
            "{}|eps:{:08x}|theta:{theta}|r:{:08x}|topk:{}",
            self.kernel.cache_key(),
            self.influence_eps.to_bits(),
            self.radius.to_bits(),
            self.influence_row_top_k,
        )
    }

    /// A stable key over every field that determines a **selection
    /// result**: the [`GrainConfig::artifact_fingerprint`] plus the
    /// greedy-stage fields (`gamma`, `diversity`, `algorithm`, `prune`,
    /// `variant`) that steer the maximization without touching cached
    /// artifacts.
    ///
    /// Two configs with equal selection fingerprints produce bit-identical
    /// [`crate::SelectionOutcome`]s over the same graph, candidate pool,
    /// and budget — which is exactly the invariant the
    /// [`crate::scheduler::Scheduler`] relies on to coalesce identical
    /// in-flight requests into one execution. `parallelism` is excluded
    /// for the same reason it is excluded from the artifact fingerprint:
    /// every kernel is bit-identical at any thread count.
    #[must_use]
    pub fn selection_fingerprint(&self) -> String {
        let prune = match self.prune {
            None => "none".to_string(),
            Some(PruneStrategy::Degree { keep_fraction }) => {
                format!("deg:{:016x}", keep_fraction.to_bits())
            }
            Some(PruneStrategy::WalkMass { keep_fraction }) => {
                format!("walk:{:016x}", keep_fraction.to_bits())
            }
        };
        format!(
            "{}|gamma:{:016x}|div:{:?}|alg:{:?}|prune:{prune}|var:{:?}",
            self.artifact_fingerprint(),
            self.gamma.to_bits(),
            self.diversity,
            self.algorithm,
            self.variant,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_appendix_a4() {
        let c = GrainConfig::default();
        assert_eq!(c.theta, ThetaRule::RelativeToRowMax(0.25));
        assert_eq!(c.radius, 0.05);
        assert_eq!(c.gamma, 1.0);
        assert_eq!(c.kernel.steps(), 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn named_constructors_set_diversity() {
        assert_eq!(GrainConfig::ball_d().diversity, DiversityKind::Ball);
        assert_eq!(GrainConfig::nn_d().diversity, DiversityKind::Nn);
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let bad_theta = GrainConfig {
            theta: ThetaRule::FixedAbsolute(2.0),
            ..GrainConfig::default()
        };
        assert!(bad_theta.validate().is_err());
        let bad_prune = GrainConfig {
            prune: Some(PruneStrategy::Degree { keep_fraction: 0.0 }),
            ..GrainConfig::default()
        };
        assert!(bad_prune.validate().is_err());
    }

    #[test]
    fn ablation_constructor_keeps_ball_defaults() {
        let c = GrainConfig::ablation(GrainVariant::NoMagnitude);
        assert_eq!(c.variant, GrainVariant::NoMagnitude);
        assert_eq!(c.diversity, DiversityKind::Ball);
    }

    #[test]
    fn validation_errors_name_the_field() {
        let bad = GrainConfig {
            gamma: -1.0,
            ..GrainConfig::default()
        };
        match bad.validate() {
            Err(GrainError::InvalidConfig { field, .. }) => assert_eq!(field, "gamma"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        let bad_theta = GrainConfig {
            theta: ThetaRule::FixedAbsolute(2.0),
            ..GrainConfig::default()
        };
        match bad_theta.validate() {
            Err(GrainError::InvalidConfig { field, .. }) => assert_eq!(field, "theta"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_ignores_greedy_only_fields() {
        let base = GrainConfig::ball_d();
        let mut greedy_only = base;
        greedy_only.gamma = 0.25;
        greedy_only.algorithm = GreedyAlgorithm::Plain;
        greedy_only.variant = GrainVariant::NoDiversity;
        greedy_only.prune = Some(PruneStrategy::Degree { keep_fraction: 0.5 });
        greedy_only.parallelism = 8;
        assert_eq!(
            base.artifact_fingerprint(),
            greedy_only.artifact_fingerprint()
        );
        // NN-D shares the same artifacts too (separate diversity slots).
        assert_eq!(
            base.artifact_fingerprint(),
            GrainConfig::nn_d().artifact_fingerprint()
        );
    }

    #[test]
    fn selection_fingerprint_splits_on_greedy_fields_only_where_results_differ() {
        let base = GrainConfig::ball_d();
        // Greedy-stage changes alter the selection fingerprint (they alter
        // results) while leaving the artifact fingerprint alone.
        for changed in [
            GrainConfig {
                gamma: 0.25,
                ..base
            },
            GrainConfig {
                algorithm: GreedyAlgorithm::Plain,
                ..base
            },
            GrainConfig {
                variant: GrainVariant::NoDiversity,
                ..base
            },
            GrainConfig {
                prune: Some(PruneStrategy::Degree { keep_fraction: 0.5 }),
                ..base
            },
            GrainConfig::nn_d(),
        ] {
            assert_ne!(
                base.selection_fingerprint(),
                changed.selection_fingerprint(),
                "{changed:?}"
            );
            assert_eq!(
                base.artifact_fingerprint(),
                changed.artifact_fingerprint(),
                "{changed:?}"
            );
        }
        // `parallelism` and `cancel_check_every` change neither:
        // artifacts and selections are bit-identical at any thread count
        // and any checkpoint cadence.
        let threaded = GrainConfig {
            parallelism: 8,
            ..base
        };
        assert_eq!(
            base.selection_fingerprint(),
            threaded.selection_fingerprint()
        );
        let chatty = GrainConfig {
            cancel_check_every: 1,
            ..base
        };
        assert_eq!(base.selection_fingerprint(), chatty.selection_fingerprint());
    }

    #[test]
    fn zero_cancel_check_every_is_rejected() {
        let bad = GrainConfig {
            cancel_check_every: 0,
            ..GrainConfig::default()
        };
        match bad.validate() {
            Err(GrainError::InvalidConfig { field, .. }) => {
                assert_eq!(field, "cancel_check_every")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_splits_on_artifact_fields() {
        let base = GrainConfig::ball_d();
        for changed in [
            GrainConfig {
                kernel: Kernel::RandomWalk { k: 3 },
                ..base
            },
            GrainConfig {
                theta: ThetaRule::RelativeToRowMax(0.4),
                ..base
            },
            GrainConfig {
                radius: 0.1,
                ..base
            },
            GrainConfig {
                influence_eps: 1e-3,
                ..base
            },
            GrainConfig {
                influence_row_top_k: 32,
                ..base
            },
        ] {
            assert_ne!(
                base.artifact_fingerprint(),
                changed.artifact_fingerprint(),
                "{changed:?}"
            );
        }
    }

    #[test]
    fn top_k_splits_fingerprints_exactly_where_selection_can_differ() {
        // Truncation changes influence rows, hence potentially the
        // selection: every distinct top_k must map to a distinct artifact
        // fingerprint (and so a distinct selection fingerprint), while
        // equal top_k values keep sharing a warm engine.
        let base = GrainConfig::ball_d();
        let at = |top_k: usize| GrainConfig {
            influence_row_top_k: top_k,
            ..base
        };
        for (a, b) in [(0usize, 1usize), (0, 32), (16, 32), (31, 32)] {
            assert_ne!(
                at(a).artifact_fingerprint(),
                at(b).artifact_fingerprint(),
                "top_k {a} vs {b}"
            );
            assert_ne!(
                at(a).selection_fingerprint(),
                at(b).selection_fingerprint(),
                "top_k {a} vs {b}"
            );
        }
        assert_eq!(at(32).artifact_fingerprint(), at(32).artifact_fingerprint());
        assert!(at(32).validate().is_ok());
        assert!(at(32).artifact_fingerprint().contains("topk:32"));
    }
}

//! Grain's primary contribution: node selection for GNNs by
//! **Diversified Influence Maximization** (VLDB 2021, §3).
//!
//! The selection criterion (Eq. 11) combines the *magnitude* of feature
//! influence with the *diversity* of the influenced crowd:
//!
//! ```text
//! max_S F(S) = |σ(S)| / σ̂  +  γ · D(S) / D̂ ,   |S| = B
//! ```
//!
//! where `σ(S)` is the activated node set under the feature-influence model
//! (`grain-influence`) and `D` is one of two monotone submodular diversity
//! functions over the k-step aggregated feature space:
//!
//! * [`diversity::BallDiversity`] — coverage of `r`-radius balls centered on
//!   activated nodes (Definition 3.6, "Grain (ball-D)"),
//! * [`diversity::NnDiversity`] — total nearest-activated-neighbor distance
//!   reduction (Definition 3.4, "Grain (NN-D)").
//!
//! Both make `F` monotone + submodular, so [`greedy`] (Algorithm 1) and the
//! lazily evaluated CELF variant carry the `1 - 1/e` approximation
//! guarantee. [`prune`] implements the §3.4 efficiency optimizations that
//! dismiss uninfluential candidates up front. [`engine::SelectionEngine`]
//! stages the pipeline (propagate → influence → index → greedy) with
//! per-artifact caching so repeated selections over one corpus pay the
//! heavy precompute once.
//!
//! The public front door is [`service::GrainService`]: register graphs
//! once, then answer typed [`service::SelectionRequest`]s (fixed,
//! fractional, or sweep [`service::Budget`]s) from a **sharded, `&self`**
//! [`service::EnginePool`] of warm engines — the service is
//! `Send + Sync`, cold builds are deduplicated by per-key latches,
//! batches fan out across shards via [`service::GrainService::submit_batch`],
//! and every failure is a [`error::GrainError`].
//!
//! On top of the service sits the asynchronous front-end,
//! [`scheduler::Scheduler`]: a bounded submission queue with admission
//! control ([`error::GrainError::QueueFull`], deadline rejection and
//! shedding), per-key **coalescing** of identical in-flight selections
//! (one execution fans out to every waiter), and priority/EDF dispatch
//! that groups ready work by engine key before handing it to the
//! service's batched warm path. Submissions return
//! [`scheduler::Ticket`]s; every scheduled path stays bit-identical to
//! serial [`service::GrainService::select`] calls.
//! [`selector::GrainSelector`] remains as a thin validated-config facade
//! whose `engine` constructor opens the staged pipeline directly (its
//! deprecated positional one-shots are gone).
//!
//! Corpora are live, not frozen: [`streaming`] adds
//! [`streaming::GraphDelta`] batches (edge inserts/deletes, feature
//! overwrites) and [`service::GrainService::apply_update`], which
//! advances a corpus one **epoch** by patching resident engines' cached
//! artifacts — dirty-set expansion to the k-hop frontier, rank-local
//! re-propagation, influence-row splicing, activation-index repair —
//! instead of rebuilding them, while pool keys versioned by epoch let
//! in-flight requests finish on their old snapshot. Patched artifacts
//! are byte-identical to a cold build of the mutated graph.
//!
//! Artifacts also outlive the process: [`store::ArtifactStore`] persists
//! `X^(k)` (with its power ladder), the influence-row CSR, and the
//! activation index under content addresses
//! `(graph_fingerprint, epoch, artifact_fingerprint, codec_version)`.
//! A service opened with
//! [`service::GrainService::with_artifact_store`] loads them back on a
//! pool miss — validated, epoch-exact, and bit-identical to the cold
//! build it replaces — so restarts warm-start from disk instead of
//! re-propagating every corpus.

pub mod cancel;
pub mod config;
pub mod diversity;
pub mod edge;
pub mod engine;
pub mod error;
pub mod fault;
pub mod greedy;
pub mod objective;
pub mod prune;
pub mod retry;
pub mod scheduler;
pub mod selector;
pub mod service;
pub mod store;
pub mod streaming;

pub use cancel::{CancelCause, CancelToken, OnDeadline};
pub use config::{DiversityKind, GrainConfig, GrainVariant, GreedyAlgorithm, PruneStrategy};
pub use edge::{EdgeClient, EdgeConfig, EdgeServer, EdgeStats, TenantSpec, TokenBucket};
pub use engine::{ArtifactBytes, EngineStats, PatchTimings, SelectionEngine};
pub use error::{DeadlineStage, GrainError, GrainResult};
pub use objective::DimObjective;
pub use retry::RetryPolicy;
pub use scheduler::{
    CancelHandle, FairShare, ScheduledRequest, Scheduler, SchedulerConfig, SchedulerStats,
    TenantStats, Ticket,
};
pub use selector::{Completion, GrainSelector, SelectionOutcome};
pub use service::{
    Budget, EngineCheckout, EnginePool, GrainService, PoolEvent, PoolStats, SelectionReport,
    SelectionRequest,
};
pub use store::{ArtifactStore, ContentAddress, ScratchDir, StoreStats};
pub use streaming::{DirtySets, EpochReport, GraphDelta, PatchSummary};

//! Grain's primary contribution: node selection for GNNs by
//! **Diversified Influence Maximization** (VLDB 2021, §3).
//!
//! The selection criterion (Eq. 11) combines the *magnitude* of feature
//! influence with the *diversity* of the influenced crowd:
//!
//! ```text
//! max_S F(S) = |σ(S)| / σ̂  +  γ · D(S) / D̂ ,   |S| = B
//! ```
//!
//! where `σ(S)` is the activated node set under the feature-influence model
//! (`grain-influence`) and `D` is one of two monotone submodular diversity
//! functions over the k-step aggregated feature space:
//!
//! * [`diversity::BallDiversity`] — coverage of `r`-radius balls centered on
//!   activated nodes (Definition 3.6, "Grain (ball-D)"),
//! * [`diversity::NnDiversity`] — total nearest-activated-neighbor distance
//!   reduction (Definition 3.4, "Grain (NN-D)").
//!
//! Both make `F` monotone + submodular, so [`greedy`] (Algorithm 1) and the
//! lazily evaluated CELF variant carry the `1 - 1/e` approximation
//! guarantee. [`prune`] implements the §3.4 efficiency optimizations that
//! dismiss uninfluential candidates up front. [`engine::SelectionEngine`]
//! stages the pipeline (propagate → influence → index → greedy) with
//! per-artifact caching so repeated selections over one corpus pay the
//! heavy precompute once; [`selector::GrainSelector`] is the one-shot
//! wrapper over a fresh engine and exposes the paper's ablation variants
//! (Table 3).

pub mod config;
pub mod diversity;
pub mod engine;
pub mod greedy;
pub mod objective;
pub mod prune;
pub mod selector;

pub use config::{DiversityKind, GrainConfig, GrainVariant, GreedyAlgorithm, PruneStrategy};
pub use engine::{EngineStats, SelectionEngine};
pub use objective::DimObjective;
pub use selector::{GrainSelector, SelectionOutcome};

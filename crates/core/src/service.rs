//! `GrainService` — the request/response front door of the selection
//! pipeline.
//!
//! PR 2 made [`SelectionEngine`] the serving substrate; this module makes
//! it *multi-tenant*. A [`GrainService`] owns
//!
//! * a **corpus registry**: graphs and feature matrices registered once
//!   under a string id and shared via `Arc` with every engine, and
//! * an [`EnginePool`]: an LRU map of warm engines keyed by
//!   `(graph id, artifact fingerprint)` — see
//!   [`GrainConfig::artifact_fingerprint`] — with a configurable capacity
//!   and eviction statistics,
//!
//! and answers typed [`SelectionRequest`]s with [`SelectionReport`]s that
//! carry the selections together with the observability a serving tier
//! needs: per-stage timings, the pool event (hit / cold miss / rebuild
//! after eviction), and the exact artifact rebuild counts the request
//! triggered.
//!
//! Because the pool key is the *artifact* fingerprint, requests that only
//! differ in greedy-stage fields (`gamma`, `variant`, `algorithm`,
//! `prune`, budget) share one engine and rebuild nothing; requests that
//! differ in artifact fields (kernel, `theta`, `radius`, `influence_eps`)
//! get their own engine so alternating workloads never thrash the
//! single-slot artifact caches. Warm answers are bit-identical to cold
//! one-shot runs — the engine contract (`tests/engine_reuse.rs`) extends
//! to the pool.

use crate::config::{GrainConfig, GrainVariant};
use crate::engine::{EngineStats, SelectionEngine};
use crate::error::{GrainError, GrainResult};
use crate::selector::SelectionOutcome;
use grain_graph::Graph;
use grain_linalg::DenseMatrix;
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Default engine-pool capacity of [`GrainService::new`].
pub const DEFAULT_POOL_CAPACITY: usize = 8;

/// How a request expresses its labeling budget.
#[derive(Clone, Debug, PartialEq)]
pub enum Budget {
    /// Select exactly `n` nodes (clamped to the candidate-pool size).
    Fixed(usize),
    /// Select a fraction of the candidate pool, in `(0, 1]`; resolves to
    /// at least one node.
    Fraction(f64),
    /// A budget sweep: one selection per entry, answered by a single warm
    /// engine (entries clamped to the pool size).
    Sweep(Vec<usize>),
}

impl Budget {
    /// Resolves the budget against a candidate pool of `pool_size` nodes
    /// into the list of concrete budgets to run.
    pub fn resolve(&self, pool_size: usize) -> GrainResult<Vec<usize>> {
        match self {
            Budget::Fixed(n) => Ok(vec![(*n).min(pool_size)]),
            Budget::Fraction(f) => {
                if !(0.0 < *f && *f <= 1.0) {
                    return Err(GrainError::InvalidBudget {
                        message: format!("fraction must lie in (0,1], got {f}"),
                    });
                }
                if pool_size == 0 {
                    return Ok(vec![0]);
                }
                let n = ((*f * pool_size as f64).round() as usize).clamp(1, pool_size);
                Ok(vec![n])
            }
            Budget::Sweep(budgets) => {
                if budgets.is_empty() {
                    return Err(GrainError::InvalidBudget {
                        message: "sweep must name at least one budget".into(),
                    });
                }
                Ok(budgets.iter().map(|&b| b.min(pool_size)).collect())
            }
        }
    }
}

/// A selection request against a registered graph.
///
/// Grain selection is deterministic, so `seed` does not influence the
/// result; it is carried through to the report so mixed workloads that
/// interleave Grain with stochastic baselines can keep one bookkeeping
/// scheme.
#[derive(Clone, Debug)]
pub struct SelectionRequest {
    /// Id of a graph previously passed to [`GrainService::register_graph`].
    pub graph: String,
    /// Full pipeline configuration.
    pub config: GrainConfig,
    /// Labeling budget (fixed, fractional, or a sweep).
    pub budget: Budget,
    /// Candidate pool; `None` selects from all nodes.
    pub candidates: Option<Vec<u32>>,
    /// Per-request override of `config.variant` (Table 3 ablations share
    /// every artifact, so sweeping variants hits one warm engine).
    pub variant: Option<GrainVariant>,
    /// Echoed into the report; see the struct docs.
    pub seed: u64,
}

impl SelectionRequest {
    /// A request selecting from all nodes of `graph` at `budget`.
    #[must_use]
    pub fn new(graph: impl Into<String>, config: GrainConfig, budget: Budget) -> Self {
        Self {
            graph: graph.into(),
            config,
            budget,
            candidates: None,
            variant: None,
            seed: 0,
        }
    }

    /// Restricts selection to an explicit candidate pool (typically the
    /// train partition).
    #[must_use]
    pub fn with_candidates(mut self, candidates: Vec<u32>) -> Self {
        self.candidates = Some(candidates);
        self
    }

    /// Overrides the config's variant for this request only.
    #[must_use]
    pub fn with_variant(mut self, variant: GrainVariant) -> Self {
        self.variant = Some(variant);
        self
    }

    /// Tags the request with a bookkeeping seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What happened in the [`EnginePool`] when a request was routed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolEvent {
    /// A warm engine answered; no engine was constructed.
    Hit,
    /// First time this `(graph, fingerprint)` key was seen.
    ColdMiss,
    /// The key had been evicted earlier and its engine was rebuilt — the
    /// signal that the pool capacity is too small for the workload.
    RebuildAfterEviction,
}

/// Aggregate [`EnginePool`] counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Lookups answered by a pooled engine.
    pub hits: usize,
    /// Lookups that built an engine for a never-seen key.
    pub cold_misses: usize,
    /// Lookups that rebuilt an engine for a previously evicted key.
    pub evicted_rebuilds: usize,
    /// Engines pushed out by capacity.
    pub evictions: usize,
}

impl PoolStats {
    /// All lookups that had to build an engine.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.cold_misses + self.evicted_rebuilds
    }

    /// Total lookups routed through the pool.
    #[must_use]
    pub fn lookups(&self) -> usize {
        self.hits + self.misses()
    }
}

/// Pool key: one engine per (graph, artifact fingerprint).
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
struct PoolKey {
    graph: String,
    fingerprint: String,
}

/// How many distinct evicted keys the pool remembers for classifying a
/// rebuild as [`PoolEvent::RebuildAfterEviction`] rather than a cold
/// miss. Bounds the pool's memory in a long-lived service sweeping many
/// artifact fingerprints; once full, rebuilds of keys evicted beyond the
/// horizon are reported as cold misses — a benign misclassification.
const EVICTED_KEY_MEMORY: usize = 4096;

/// An LRU map of warm [`SelectionEngine`]s.
///
/// Capacity is the number of engines kept warm at once; the least
/// recently used engine is dropped when a new key arrives at a full pool.
/// Lookup order is tracked per *use*, so a steady mixed workload keeps
/// its hot engines resident. Rebuilds of previously evicted keys are
/// counted separately from cold misses — a rising
/// [`PoolStats::evicted_rebuilds`] is the capacity-tuning signal.
pub struct EnginePool {
    capacity: usize,
    /// Most recently used first.
    entries: Vec<(PoolKey, SelectionEngine)>,
    stats: PoolStats,
    /// Evicted keys, capped at [`EVICTED_KEY_MEMORY`].
    evicted: HashSet<PoolKey>,
}

impl EnginePool {
    /// A pool keeping up to `capacity` warm engines (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: Vec::new(),
            stats: PoolStats::default(),
            evicted: HashSet::new(),
        }
    }

    /// Maximum number of resident engines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of engines currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no engine is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Resident `(graph, fingerprint)` keys, most recently used first.
    pub fn keys(&self) -> Vec<(&str, &str)> {
        self.entries
            .iter()
            .map(|(k, _)| (k.graph.as_str(), k.fingerprint.as_str()))
            .collect()
    }

    /// Drops every resident engine (counters are kept).
    pub fn clear(&mut self) {
        let keys: Vec<PoolKey> = self.entries.drain(..).map(|(key, _)| key).collect();
        for key in keys {
            self.remember_evicted(key);
        }
    }

    /// Records an evicted key, up to [`EVICTED_KEY_MEMORY`] distinct keys.
    fn remember_evicted(&mut self, key: PoolKey) {
        if self.evicted.len() < EVICTED_KEY_MEMORY {
            self.evicted.insert(key);
        }
    }

    /// The cached `X^(k)` under `kernel` from any resident engine serving
    /// `graph`, if one holds it. Engines are keyed by the full artifact
    /// fingerprint (kernel, θ, ε, r), but `X^(k)` depends on the kernel
    /// alone — a new engine for another fingerprint of the same graph
    /// seeds from a sibling instead of re-propagating.
    fn cached_propagation(
        &self,
        graph: &str,
        kernel: grain_prop::Kernel,
    ) -> Option<Arc<DenseMatrix>> {
        self.entries
            .iter()
            .filter(|(key, _)| key.graph == graph)
            .find_map(|(_, engine)| engine.propagated_if_cached(kernel))
    }

    /// Re-homes entries whose engine a caller re-keyed through the
    /// `&mut` handle ([`crate::SelectionEngine::set_config`] with an
    /// artifact-field change): the stored key is updated to the engine's
    /// actual fingerprint so a lookup never serves wrong-keyed caches.
    /// When re-homing collides with a resident key, the less recently
    /// used entry is dropped and counted as an eviction.
    fn rehome(&mut self) {
        let mut changed = false;
        for (key, engine) in &mut self.entries {
            let actual = engine.config().artifact_fingerprint();
            if key.fingerprint != actual {
                key.fingerprint = actual;
                changed = true;
            }
        }
        if !changed {
            return;
        }
        // Entries are MRU-first: keep the first occurrence of each key.
        let mut seen: HashSet<PoolKey> = HashSet::new();
        let mut dropped: Vec<PoolKey> = Vec::new();
        self.entries.retain(|(key, _)| {
            if seen.insert(key.clone()) {
                true
            } else {
                dropped.push(key.clone());
                false
            }
        });
        for key in dropped {
            self.remember_evicted(key);
            self.stats.evictions += 1;
        }
    }

    fn get_or_insert_with(
        &mut self,
        key: PoolKey,
        build: impl FnOnce() -> GrainResult<SelectionEngine>,
    ) -> GrainResult<(&mut SelectionEngine, PoolEvent)> {
        self.rehome();
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            let entry = self.entries.remove(pos);
            self.entries.insert(0, entry);
            self.stats.hits += 1;
            return Ok((&mut self.entries[0].1, PoolEvent::Hit));
        }
        let engine = build()?;
        let event = if self.evicted.contains(&key) {
            self.stats.evicted_rebuilds += 1;
            PoolEvent::RebuildAfterEviction
        } else {
            self.stats.cold_misses += 1;
            PoolEvent::ColdMiss
        };
        if self.entries.len() == self.capacity {
            let (lru_key, _) = self.entries.pop().expect("pool is non-empty at capacity");
            self.remember_evicted(lru_key);
            self.stats.evictions += 1;
        }
        self.entries.insert(0, (key, engine));
        Ok((&mut self.entries[0].1, event))
    }
}

/// Answer to a [`SelectionRequest`]: the selections plus the cache
/// observability of the request.
#[derive(Clone, Debug)]
pub struct SelectionReport {
    /// The graph the request ran against.
    pub graph: String,
    /// The request's bookkeeping seed, echoed.
    pub seed: u64,
    /// Concrete budgets after [`Budget::resolve`], in execution order.
    pub budgets: Vec<usize>,
    /// One outcome per budget (selection, σ, objective trace, per-stage
    /// timings, greedy evaluation counts).
    pub outcomes: Vec<SelectionOutcome>,
    /// What the engine pool did for this request.
    pub pool_event: PoolEvent,
    /// Artifact (re)builds this request triggered — the cache hit/miss
    /// breakdown per pipeline stage; all-zero build counters mean the
    /// request was answered entirely from warm artifacts.
    pub artifact_builds: EngineStats,
    /// Pool counters after the request.
    pub pool_stats: PoolStats,
}

impl SelectionReport {
    /// The single outcome of a [`Budget::Fixed`]/[`Budget::Fraction`]
    /// request.
    ///
    /// # Panics
    /// Panics on a sweep report with more than one budget — iterate
    /// [`SelectionReport::outcomes`] instead.
    pub fn outcome(&self) -> &SelectionOutcome {
        assert_eq!(
            self.outcomes.len(),
            1,
            "outcome() is for single-budget reports; this sweep has {} — iterate .outcomes",
            self.outcomes.len()
        );
        &self.outcomes[0]
    }

    /// True when the request touched no cold state: the pool hit a warm
    /// engine and zero artifacts were rebuilt.
    #[must_use]
    pub fn fully_warm(&self) -> bool {
        self.pool_event == PoolEvent::Hit && self.artifact_builds.total_builds() == 0
    }
}

/// One corpus registered with the service.
struct Corpus {
    graph: Arc<Graph>,
    features: Arc<DenseMatrix>,
}

/// Multi-tenant selection service: many graphs, many configs, one pool of
/// warm engines, one artifact store.
///
/// ```
/// use grain_core::service::{Budget, GrainService, SelectionRequest};
/// use grain_core::GrainConfig;
/// use grain_graph::generators;
/// use grain_linalg::DenseMatrix;
///
/// let graph = generators::erdos_renyi_gnm(200, 600, 7);
/// let features = DenseMatrix::full(200, 8, 1.0);
/// let mut service = GrainService::new();
/// service.register_graph("demo", graph, features)?;
///
/// let request = SelectionRequest::new("demo", GrainConfig::ball_d(), Budget::Fixed(10));
/// let report = service.select(&request)?;
/// assert_eq!(report.outcome().selected.len(), 10);
///
/// // The same request again is answered fully warm, bit-identically.
/// let again = service.select(&request)?;
/// assert!(again.fully_warm());
/// assert_eq!(again.outcome().selected, report.outcome().selected);
/// # Ok::<(), grain_core::GrainError>(())
/// ```
pub struct GrainService {
    corpora: HashMap<String, Corpus>,
    pool: EnginePool,
}

impl Default for GrainService {
    fn default() -> Self {
        Self::new()
    }
}

impl GrainService {
    /// A service with the default pool capacity
    /// ([`DEFAULT_POOL_CAPACITY`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_POOL_CAPACITY)
    }

    /// A service keeping up to `capacity` warm engines.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            corpora: HashMap::new(),
            pool: EnginePool::new(capacity),
        }
    }

    /// Registers a corpus under `id`. Accepts owned values or `Arc`s;
    /// every engine serving this graph shares the handles without
    /// copying. Registering the same id twice is an error — corpora are
    /// immutable once registered, since pooled engines may hold them.
    pub fn register_graph(
        &mut self,
        id: impl Into<String>,
        graph: impl Into<Arc<Graph>>,
        features: impl Into<Arc<DenseMatrix>>,
    ) -> GrainResult<()> {
        let id = id.into();
        let graph = graph.into();
        let features = features.into();
        if features.rows() != graph.num_nodes() {
            return Err(GrainError::FeatureShape {
                feature_rows: features.rows(),
                num_nodes: graph.num_nodes(),
            });
        }
        if self.corpora.contains_key(&id) {
            return Err(GrainError::GraphAlreadyRegistered { graph: id });
        }
        self.corpora.insert(id, Corpus { graph, features });
        Ok(())
    }

    /// Registered graph ids, sorted.
    pub fn graphs(&self) -> Vec<&str> {
        let mut ids: Vec<&str> = self.corpora.keys().map(String::as_str).collect();
        ids.sort_unstable();
        ids
    }

    /// Shared handle to a registered graph.
    pub fn graph(&self, id: &str) -> GrainResult<Arc<Graph>> {
        self.corpus(id).map(|c| Arc::clone(&c.graph))
    }

    /// Shared handle to a registered feature matrix.
    pub fn features(&self, id: &str) -> GrainResult<Arc<DenseMatrix>> {
        self.corpus(id).map(|c| Arc::clone(&c.features))
    }

    /// The pool (inspection: capacity, resident keys, stats).
    pub fn pool(&self) -> &EnginePool {
        &self.pool
    }

    /// Aggregate pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Routes `(graph, config)` to its warm engine, building or rebuilding
    /// it if needed, and aligns the engine's greedy-stage fields with
    /// `config`.
    ///
    /// This is also the baseline path: selectors that are not Grain pull
    /// shared artifacts (e.g. the propagated `X^(k)` via
    /// [`SelectionEngine::propagated`]) from the same engine Grain
    /// requests use, so every method reads one artifact store.
    pub fn engine(
        &mut self,
        graph_id: &str,
        config: &GrainConfig,
    ) -> GrainResult<(&mut SelectionEngine, PoolEvent)> {
        config.validate()?;
        let corpus = self.corpus(graph_id)?;
        let (graph, features) = (Arc::clone(&corpus.graph), Arc::clone(&corpus.features));
        let key = PoolKey {
            graph: graph_id.to_string(),
            fingerprint: config.artifact_fingerprint(),
        };
        // X^(k) depends on the kernel alone, not the full fingerprint: a
        // fresh engine adopts a resident sibling's propagation so e.g. a
        // θ sweep through the service re-propagates nothing.
        let seed = self.pool.cached_propagation(graph_id, config.kernel);
        let (engine, event) = self.pool.get_or_insert_with(key, || {
            let mut engine = SelectionEngine::over(*config, graph, features)?;
            if let Some(propagated) = seed {
                engine.seed_propagated(propagated);
            }
            Ok(engine)
        })?;
        // Same fingerprint can still differ in greedy-stage fields; the
        // precise invalidation in set_config keeps all artifacts.
        engine.set_config(*config)?;
        Ok((engine, event))
    }

    /// Answers a selection request.
    ///
    /// Typed failures: [`GrainError::UnknownGraph`] for an unregistered
    /// id, [`GrainError::InvalidConfig`] from config validation,
    /// [`GrainError::CandidateOutOfRange`] instead of the engine's panic,
    /// and [`GrainError::InvalidBudget`] from [`Budget::resolve`].
    pub fn select(&mut self, request: &SelectionRequest) -> GrainResult<SelectionReport> {
        let corpus = self.corpus(&request.graph)?;
        let num_nodes = corpus.graph.num_nodes();
        // Borrow the request's pool on the hot path — a warm request must
        // cost only greedy, not a per-request candidate copy.
        let candidates: Cow<'_, [u32]> = match &request.candidates {
            Some(pool) => {
                for &c in pool {
                    if c as usize >= num_nodes {
                        return Err(GrainError::CandidateOutOfRange {
                            candidate: c,
                            num_nodes,
                        });
                    }
                }
                Cow::Borrowed(pool.as_slice())
            }
            None => Cow::Owned((0..num_nodes as u32).collect()),
        };
        let budgets = request.budget.resolve(candidates.len())?;
        let mut config = request.config;
        if let Some(variant) = request.variant {
            config.variant = variant;
        }
        let (engine, pool_event) = self.engine(&request.graph, &config)?;
        let before = engine.stats();
        let outcomes: Vec<SelectionOutcome> = budgets
            .iter()
            .map(|&b| engine.select(&candidates, b))
            .collect();
        let artifact_builds = engine.stats().delta_since(&before);
        Ok(SelectionReport {
            graph: request.graph.clone(),
            seed: request.seed,
            budgets,
            outcomes,
            pool_event,
            artifact_builds,
            pool_stats: self.pool.stats(),
        })
    }

    fn corpus(&self, id: &str) -> GrainResult<&Corpus> {
        self.corpora
            .get(id)
            .ok_or_else(|| GrainError::UnknownGraph {
                graph: id.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_graph::generators;

    fn corpus(n: usize, seed: u64) -> (Graph, DenseMatrix) {
        let g = generators::erdos_renyi_gnm(n, 3 * n, seed);
        let mut x = DenseMatrix::zeros(n, 6);
        for v in 0..n {
            for (j, value) in x.row_mut(v).iter_mut().enumerate() {
                *value = ((v * 31 + j * 7 + seed as usize) % 13) as f32 * 0.1;
            }
        }
        (g, x)
    }

    fn service_with(graphs: &[(&str, u64)]) -> GrainService {
        let mut service = GrainService::with_capacity(4);
        for &(id, seed) in graphs {
            let (g, x) = corpus(120, seed);
            service.register_graph(id, g, x).unwrap();
        }
        service
    }

    #[test]
    fn sibling_engines_share_propagation() {
        // A second artifact fingerprint for the same graph (radius change)
        // gets its own pooled engine, but adopts the sibling's X^(k)
        // instead of re-propagating.
        let mut service = service_with(&[("g", 1)]);
        let base = GrainConfig::ball_d();
        let first = service
            .select(&SelectionRequest::new("g", base, Budget::Fixed(5)))
            .unwrap();
        assert_eq!(first.artifact_builds.propagation_builds, 1);
        let deep = GrainConfig {
            radius: base.radius * 2.0,
            ..base
        };
        let second = service
            .select(&SelectionRequest::new("g", deep, Budget::Fixed(5)))
            .unwrap();
        assert_eq!(second.pool_event, PoolEvent::ColdMiss);
        assert_eq!(
            second.artifact_builds.propagation_builds, 0,
            "the new engine must adopt the sibling's propagation"
        );
        assert_eq!(service.pool().len(), 2);
    }

    #[test]
    fn rekeyed_engines_are_rehomed_not_served_stale() {
        // A caller can re-key a checked-out engine via set_config; the
        // pool must re-index it under its actual fingerprint instead of
        // serving its caches for the old key.
        let mut service = service_with(&[("g", 1)]);
        let base = GrainConfig::ball_d();
        let (engine, _) = service.engine("g", &base).unwrap();
        let deep = GrainConfig {
            kernel: grain_prop::Kernel::RandomWalk { k: 3 },
            ..base
        };
        engine.set_config(deep).unwrap();
        // The re-keyed engine now answers for `deep`...
        let (_, event) = service.engine("g", &deep).unwrap();
        assert_eq!(event, PoolEvent::Hit);
        // ...and a request for `base` builds fresh instead of hitting the
        // wrong-keyed caches.
        let (_, event) = service.engine("g", &base).unwrap();
        assert_eq!(event, PoolEvent::ColdMiss);
        assert_eq!(service.pool().len(), 2);
    }

    #[test]
    fn fixed_and_fraction_budgets_resolve() {
        assert_eq!(Budget::Fixed(5).resolve(100).unwrap(), vec![5]);
        assert_eq!(Budget::Fixed(500).resolve(100).unwrap(), vec![100]);
        assert_eq!(Budget::Fraction(0.1).resolve(100).unwrap(), vec![10]);
        assert_eq!(Budget::Fraction(1e-9).resolve(100).unwrap(), vec![1]);
        assert_eq!(Budget::Fraction(0.5).resolve(0).unwrap(), vec![0]);
        assert!(matches!(
            Budget::Fraction(0.0).resolve(100),
            Err(GrainError::InvalidBudget { .. })
        ));
        assert!(matches!(
            Budget::Fraction(1.5).resolve(100),
            Err(GrainError::InvalidBudget { .. })
        ));
    }

    #[test]
    fn sweep_budgets_resolve_in_order() {
        assert_eq!(
            Budget::Sweep(vec![4, 8, 200]).resolve(100).unwrap(),
            vec![4, 8, 100]
        );
        assert!(matches!(
            Budget::Sweep(vec![]).resolve(100),
            Err(GrainError::InvalidBudget { .. })
        ));
    }

    #[test]
    fn unknown_graph_and_bad_candidates_are_typed() {
        let mut service = service_with(&[("a", 1)]);
        let missing = SelectionRequest::new("nope", GrainConfig::ball_d(), Budget::Fixed(3));
        assert_eq!(
            service.select(&missing).unwrap_err(),
            GrainError::UnknownGraph {
                graph: "nope".into()
            }
        );
        let out_of_range = SelectionRequest::new("a", GrainConfig::ball_d(), Budget::Fixed(3))
            .with_candidates(vec![0, 5, 9000]);
        assert_eq!(
            service.select(&out_of_range).unwrap_err(),
            GrainError::CandidateOutOfRange {
                candidate: 9000,
                num_nodes: 120
            }
        );
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut service = service_with(&[("a", 1)]);
        let (g, x) = corpus(50, 9);
        assert_eq!(
            service.register_graph("a", g, x),
            Err(GrainError::GraphAlreadyRegistered { graph: "a".into() })
        );
        let (g, x) = corpus(50, 9);
        let short = DenseMatrix::zeros(3, 2);
        assert!(matches!(
            service.register_graph("b", g, short),
            Err(GrainError::FeatureShape { .. })
        ));
        drop(x);
    }

    #[test]
    fn repeat_requests_hit_the_pool_and_match() {
        let mut service = service_with(&[("a", 1)]);
        let request = SelectionRequest::new("a", GrainConfig::ball_d(), Budget::Fixed(8));
        let cold = service.select(&request).unwrap();
        assert_eq!(cold.pool_event, PoolEvent::ColdMiss);
        assert!(cold.artifact_builds.total_builds() > 0);
        let warm = service.select(&request).unwrap();
        assert!(warm.fully_warm());
        assert_eq!(warm.outcome().selected, cold.outcome().selected);
        assert_eq!(warm.outcome().sigma, cold.outcome().sigma);
        assert_eq!(service.pool_stats().hits, 1);
        assert_eq!(service.pool_stats().cold_misses, 1);
    }

    #[test]
    fn greedy_only_config_changes_share_one_engine() {
        let mut service = service_with(&[("a", 2)]);
        let base = SelectionRequest::new("a", GrainConfig::ball_d(), Budget::Fixed(6));
        let _ = service.select(&base).unwrap();
        let mut gamma = GrainConfig::ball_d();
        gamma.gamma = 0.25;
        let tweaked = SelectionRequest::new("a", gamma, Budget::Fixed(6))
            .with_variant(GrainVariant::NoDiversity);
        let report = service.select(&tweaked).unwrap();
        assert!(report.fully_warm(), "greedy-only change must not rebuild");
        assert_eq!(service.pool().len(), 1);
    }

    #[test]
    fn variant_override_applies() {
        let mut service = service_with(&[("a", 3)]);
        let full = SelectionRequest::new("a", GrainConfig::ball_d(), Budget::Fixed(6));
        let ablated = full.clone().with_variant(GrainVariant::NoDiversity);
        let a = service.select(&full).unwrap();
        let b = service.select(&ablated).unwrap();
        // NoDiversity ignores the diversity term; traces must differ.
        assert_ne!(a.outcome().objective_trace, b.outcome().objective_trace);
    }

    #[test]
    fn sweep_reports_one_outcome_per_budget() {
        let mut service = service_with(&[("a", 4)]);
        let request =
            SelectionRequest::new("a", GrainConfig::ball_d(), Budget::Sweep(vec![3, 6, 9]));
        let report = service.select(&request).unwrap();
        assert_eq!(report.budgets, vec![3, 6, 9]);
        assert_eq!(report.outcomes.len(), 3);
        for (outcome, budget) in report.outcomes.iter().zip(&report.budgets) {
            assert_eq!(outcome.selected.len(), *budget);
        }
        // Artifacts were built once for the whole sweep.
        assert_eq!(report.artifact_builds.propagation_builds, 1);
        assert_eq!(report.artifact_builds.selections, 3);
    }

    #[test]
    fn cross_graph_requests_use_distinct_engines() {
        let mut service = service_with(&[("a", 5), ("b", 6)]);
        let cfg = GrainConfig::ball_d();
        let ra = service
            .select(&SelectionRequest::new("a", cfg, Budget::Fixed(5)))
            .unwrap();
        let rb = service
            .select(&SelectionRequest::new("b", cfg, Budget::Fixed(5)))
            .unwrap();
        assert_eq!(ra.pool_event, PoolEvent::ColdMiss);
        assert_eq!(rb.pool_event, PoolEvent::ColdMiss);
        assert_eq!(service.pool().len(), 2);
        let keys = service.pool().keys();
        assert_eq!(keys[0].0, "b", "MRU first");
        assert_eq!(keys[1].0, "a");
    }

    #[test]
    fn lru_evicts_and_counts_rebuilds() {
        let mut service = GrainService::with_capacity(1);
        for (id, seed) in [("a", 7), ("b", 8)] {
            let (g, x) = corpus(80, seed);
            service.register_graph(id, g, x).unwrap();
        }
        let cfg = GrainConfig::ball_d();
        let ra = service
            .select(&SelectionRequest::new("a", cfg, Budget::Fixed(4)))
            .unwrap();
        let _ = service
            .select(&SelectionRequest::new("b", cfg, Budget::Fixed(4)))
            .unwrap();
        let ra2 = service
            .select(&SelectionRequest::new("a", cfg, Budget::Fixed(4)))
            .unwrap();
        assert_eq!(ra2.pool_event, PoolEvent::RebuildAfterEviction);
        assert_eq!(service.pool_stats().evictions, 2);
        assert_eq!(service.pool_stats().evicted_rebuilds, 1);
        // Thrash or not, the answers stay bit-identical.
        assert_eq!(ra.outcome().selected, ra2.outcome().selected);
        assert_eq!(ra.outcome().objective_trace, ra2.outcome().objective_trace);
    }

    #[test]
    fn outcome_accessor_guards_sweeps() {
        let mut service = service_with(&[("a", 10)]);
        let report = service
            .select(&SelectionRequest::new(
                "a",
                GrainConfig::ball_d(),
                Budget::Sweep(vec![2, 4]),
            ))
            .unwrap();
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| report.outcome().clone()));
        assert!(caught.is_err(), "outcome() must panic on sweeps");
    }
}
